//! The BSP training-cluster engine.
//!
//! One event queue drives everything: per-worker backward passes release
//! gradients (the stepwise schedule from `prophet-dnn` with per-iteration
//! jitter), the worker's `CommScheduler` turns releases into wire messages,
//! the fluid network carries them, the PS aggregates per-gradient BSP
//! barriers, updated parameters flow back, and the forward pass consumes
//! them strictly in priority order (the paper's Eq. 3 gating).
//!
//! Everything stochastic derives from the config seed; two runs of the same
//! config produce identical results (asserted by the integration tests).

use super::config::{ClusterConfig, SyncMode};
use super::metrics::{ElasticStats, FaultStats, GradTransferLog, RunResult};
use prophet_core::{CommScheduler, Dir, TransferTask, Transport};
use prophet_net::{
    BandwidthMonitor, FlowEnd, KilledFlow, NetEvent, Network, NodeId, NodeSpec, Topology,
};
use prophet_sim::{
    rehome_modular, Duration, EventQueue, FaultKind, FaultSpec, InvariantChecker, RateSeries,
    SimTime, SpanCollector, TimeWeighted, TraceEvent, TraceRecorder, TraceSink, Xoshiro256StarStar,
};
use std::collections::{HashMap, HashSet, VecDeque};

#[derive(Debug)]
enum Ev {
    /// Worker `w` begins an iteration (backward pass starts).
    IterBegin { w: usize },
    /// Worker `w` releases gradient `grad` in iteration `iter`.
    GradReady { w: usize, iter: u64, grad: usize },
    /// Worker `w` finishes the forward compute of tensor `grad`.
    FwdDone { w: usize, iter: u64, grad: usize },
    /// The network predicted a state change at this instant. The handler
    /// is empty because every event dispatch drains the network first;
    /// this event only guarantees the loop wakes up in time.
    NetWake,
    /// Bandwidth-monitor publication.
    MonitorTick,
    /// Metrics sampling window boundary.
    SampleTick,
    /// Scheduled capacity change (dynamic-network experiments).
    BandwidthChange { bps: f64 },
    /// Fault `idx` of the plan becomes active.
    FaultBegin { idx: usize },
    /// Fault `idx` of the plan clears (link restored, shard restarted).
    FaultFinish { idx: usize },
    /// A lane's retry backoff expired; try to start its next message.
    LaneKick { key: (usize, usize, Dir) },
    /// Ack timeout for the message last sent as flow `tag`.
    MsgTimeout { tag: u64 },
}

/// A scheduler-issued message in flight, possibly split across PS shards.
struct InFlightTask {
    worker: usize,
    iter: u64,
    task: TransferTask,
    started: SimTime,
    subflows_remaining: usize,
    /// A shard-crash replay: re-pushes aggregation bytes the crash wiped,
    /// bypassing the scheduler (which already saw `task_done` for them).
    replay: bool,
}

/// One message queued on a transmission lane.
struct QueuedMsg {
    tag: u64,
    bytes: u64,
    src: NodeId,
    dst: NodeId,
    /// Owning scheduler task.
    task_id: u64,
    /// The `(gradient, bytes)` pieces this message carries on its shard.
    pieces: Vec<(usize, u64)>,
    /// Failed sends so far; drives the backoff (0 = original send).
    attempt: u32,
    /// Marked lost by `MsgLoss`: completes on the wire, delivery discarded.
    doomed: bool,
    /// Marked corrupted by `PayloadCorrupt`: completes on the wire, fails
    /// the receiver's integrity check, and is retransmitted via the NACK
    /// path (modelled as the same fail-and-requeue machinery as a loss,
    /// but detected — and counted — at delivery).
    corrupted: bool,
}

/// One retained snapshot generation of a shard's durable state, in the
/// simulator's byte-cost model. The live (newest) generation's `seg_bytes`
/// grows one owned-tensor ledger entry per closed barrier until the next
/// checkpoint opens a fresh generation.
#[derive(Debug, Clone, Copy)]
struct SimGen {
    /// Snapshot bytes (the shard's owned parameters at write time).
    snap_bytes: u64,
    /// Ledger-segment bytes appended after this snapshot and before the
    /// next one.
    seg_bytes: u64,
    /// Written corrupt under a `CheckpointCorrupt` spec; detected only
    /// when a restore verifies the generation.
    corrupt: bool,
}

/// A transmission lane: one persistent connection per `(worker, shard,
/// direction)`. Messages serialise — once on the wire, a message cannot be
/// preempted, which is the physical fact the paper's whole scheduling
/// problem rests on ("low-priority gradients cannot preempt high-priority
/// gradients in the network transfer"). Back-to-back messages on a
/// recently-active lane are *warm* (no setup, no slow-start: the
/// connection's window is already open) unless the worker's strategy uses
/// a blocking transport (P3), which pays the full cost every message.
struct Lane {
    active: bool,
    queue: VecDeque<QueuedMsg>,
    last_end: SimTime,
    ever_used: bool,
    /// The message currently on the wire (`Some` iff `active`).
    current: Option<QueuedMsg>,
    /// Retry backoff: no new message may start before this instant.
    blocked_until: SimTime,
}

impl Lane {
    fn new() -> Self {
        Lane {
            active: false,
            queue: VecDeque::new(),
            last_end: SimTime::ZERO,
            ever_used: false,
            current: None,
            blocked_until: SimTime::ZERO,
        }
    }
}

struct WorkerRt {
    node: NodeId,
    sched: Box<dyn CommScheduler>,
    rng: Xoshiro256StarStar,
    iter: u64,
    iters_done: u64,
    backward_done: bool,
    fwd_next: usize,
    fwd_busy: bool,
    pulled: Vec<bool>,
    pull_bytes: Vec<u64>,
    gpu: TimeWeighted,
    monitor: BandwidthMonitor,
    // Aggregate uplink goodput accounting: bytes delivered and wire-busy
    // time since the last monitor tick. `bytes / busy` is the achieved
    // wire rate regardless of how many messages shared it — the estimate
    // the schedulers need for sizing (per-message goodput under self-
    // pipelining would understate it by the concurrency factor).
    push_active: usize,
    busy_start: SimTime,
    busy_accum: Duration,
    bytes_accum: f64,
    /// Transfer failures since the last monitor tick (fault plans only):
    /// with failures and no measured goodput the monitor publishes
    /// nothing, so schedulers can see the estimate go stale.
    failures_since_tick: u32,
    iter_start: SimTime,
    // Per-gradient timing logs for the current iteration.
    ready_at: Vec<SimTime>,
    push_start: Vec<SimTime>,
    push_end: Vec<SimTime>,
    pull_start: Vec<SimTime>,
    pull_end: Vec<SimTime>,
}

struct AggState {
    per_worker_bytes: Vec<u64>,
    workers_done: usize,
}

struct Cluster {
    cfg: ClusterConfig,
    total_iters: u64,
    queue: EventQueue<Ev>,
    net: Network,
    workers: Vec<WorkerRt>,
    /// `(iteration, gradient)` → aggregation progress.
    agg: HashMap<(u64, usize), AggState>,
    /// Flow tag → task id.
    flow_task: HashMap<u64, u64>,
    tasks: HashMap<u64, InFlightTask>,
    /// Serialising transmission lanes, keyed by `(worker, shard, dir)`.
    lanes: HashMap<(usize, usize, Dir), Lane>,
    next_task_id: u64,
    next_flow_tag: u64,
    sizes: Vec<u64>,
    fwd_times: Vec<Duration>,
    /// Instants with an outstanding `Ev::NetWake`, ascending. `arm_net`
    /// schedules a wake only when the network's next event moves *earlier*
    /// than every outstanding wake; without this, every handled event
    /// spawns a fresh no-op wake chain and the queue drowns in duplicates
    /// (tens of millions of `NetWake`s for a few thousand flows at scale).
    net_wakes: VecDeque<SimTime>,

    // Fault-injection state. All of it is inert when the plan is empty:
    // no fault event is enqueued, no RNG drawn, no timeout scheduled —
    // the run is bit-identical to a build without this layer.
    node_down: Vec<bool>,
    node_degrade: Vec<f64>,
    node_base_bps: Vec<f64>,
    stall_until: Vec<SimTime>,
    loss_rate: f64,
    loss_until: SimTime,
    /// Effective `PayloadCorrupt` rate / window end, mirroring the
    /// `loss_rate`/`loss_until` pair.
    corrupt_rate: f64,
    corrupt_until: SimTime,
    /// Active windows per `(kind, trace node)`. Chaos plans overlap windows
    /// of the same kind on the same node (bursts, repeated crashes); the
    /// trace contract is one `FaultStart`/`FaultEnd` pair per episode, so
    /// starts are emitted on 0→1 and ends on 1→0 of this count.
    fault_active: HashMap<(FaultKind, usize), u32>,
    fault_rng: Xoshiro256StarStar,
    /// Retries so far per `(worker, iter, grad)` episode; an entry is
    /// closed (removed) when the gradient finally delivers (`Recovered`).
    retry_counts: HashMap<(usize, u64, usize), u32>,
    /// `(worker, grad, dir)` whose PushStart/PullStart was voided by a
    /// retry and must be re-stamped when the re-send hits the wire.
    needs_stamp: HashSet<(usize, usize, Dir)>,
    fault_stats: FaultStats,

    // Elastic-membership state (permanent faults). Inert when the plan has
    // no permanent events: `permanent` is false, every membership check is
    // skipped, and the owner table is the classic `g % ps_shards` mapping.
    /// Any `WorkerFail`/`ShardFail`/`WorkerJoin` in the plan.
    permanent: bool,
    /// Gradient → owning shard. Starts as `g % ps_shards`; `ShardFail`
    /// re-homes the dead shard's tensors onto survivors.
    owner: Vec<usize>,
    /// Iteration each worker permanently fails at (it completes iterations
    /// `active_from..fail_at`), `None` for workers that never fail.
    fail_at: Vec<Option<u64>>,
    /// First iteration each worker participates in: 0 for the initial
    /// membership, the join iteration for `WorkerJoin` slots.
    active_from: Vec<u64>,
    /// Joiner slots whose admission has fired.
    joined: Vec<bool>,
    /// Workers whose eviction has fired.
    evicted: Vec<bool>,
    /// Shards that failed permanently.
    shard_dead: Vec<bool>,
    /// Adopting shards replaying a dead shard's checkpoint + ledger may
    /// not start new transfers before this instant.
    shard_blocked_until: Vec<SimTime>,
    /// Cluster-wide membership epoch (bumped once per permanent event).
    membership_epoch: u64,
    /// Checkpointing armed (plan contains a `ShardFail`). Unarmed runs do
    /// zero checkpoint work, keeping them bit-identical to pre-elastic
    /// builds.
    ckpt_armed: bool,
    /// Per-shard retained snapshot generations, oldest → newest. The first
    /// entry starts as the implicit iteration-0 checkpoint (the shard's
    /// owned parameters); `take_checkpoint` pushes new generations and
    /// garbage-collects beyond `cfg.checkpoint_retention`, never dropping
    /// the only intact one.
    ckpt_gens: Vec<Vec<SimGen>>,
    /// Shards whose scheduled `CheckpointCorrupt` has already damaged a
    /// generation (the spec corrupts exactly one snapshot write).
    ckpt_corrupt_done: Vec<bool>,
    /// Barriers closed per iteration, to detect iteration completion for
    /// the checkpoint cadence.
    barrier_counts: HashMap<u64, usize>,
    elastic: ElasticStats,

    // Typed event stream sinks (the cross-stack trace/invariant layer).
    checker: Option<InvariantChecker>,
    span_sink: Option<SpanCollector>,
    /// Net-ledger entries drained but not yet forwarded to the sinks
    /// (kept so flow events interleave with cluster events in time order).
    pending_net: VecDeque<(SimTime, NetEvent)>,

    // Metrics.
    trace: TraceRecorder,
    gpu_series: Vec<(SimTime, f64)>,
    net_series: RateSeries,
    last_net_bytes: f64,
    iter_times: Vec<Duration>,
    iter_starts: Vec<SimTime>,
    transfer_logs: Vec<Vec<GradTransferLog>>,
    credit_trace: Vec<(u64, u64)>,
    bandwidth_estimates: Vec<(SimTime, f64)>,
    /// Worker 0's scheduler degraded-mode flips, sampled each monitor tick
    /// (`(when, entered)`); empty for strategies without a degraded mode.
    degraded_transitions: Vec<(SimTime, bool)>,
    warmup_end_time: Option<SimTime>,
    post_warmup_gpu: TimeWeighted,
}

const UNSET: SimTime = SimTime::MAX;

/// Is a fault window active at `now`? Half-open `[at, until)`: a window is
/// live at its begin event and already over at its finish event.
fn window_active(f: &FaultSpec, now: SimTime) -> bool {
    f.at() <= now && now < f.until()
}

impl Cluster {
    fn new(mut cfg: ClusterConfig, total_iters: u64) -> Self {
        cfg.validate();
        // Bake the link-adapted ack timeout in once so every consultation
        // of `cfg.retry` below sees the same deadline (no-op when the plan
        // is empty or adaptation is off).
        cfg.retry = cfg.effective_retry();
        let shards = cfg.ps_shards;
        // `WorkerJoin` slots are provisioned up front (dense ids above the
        // initial membership) but stay silent until their admission fires.
        let joiners = cfg.fault_plan.joined_workers();
        let total_workers = cfg.workers + joiners;
        let mut topo = Topology::new();
        for _ in 0..shards {
            topo.add_node(NodeSpec::symmetric(cfg.ps_bps));
        }
        for w in 0..total_workers {
            topo.add_node(NodeSpec::symmetric(cfg.worker_bandwidth(w)));
        }
        let mut net = Network::new(topo, cfg.tcp);
        net.set_full_resolve(cfg.net_full_resolve);
        let checker = cfg.check_invariants.then(|| {
            InvariantChecker::new(cfg.workers, cfg.sync == SyncMode::Bsp)
                .with_shards(shards)
                .with_joiners(joiners)
        });
        let span_sink = cfg
            .typed_trace
            .then(|| SpanCollector::new().with_shards(shards));
        if checker.is_some() || span_sink.is_some() {
            net.record_events(true);
        }
        let master = Xoshiro256StarStar::new(cfg.seed);
        let n = cfg.job.num_gradients();
        let workers: Vec<WorkerRt> = (0..total_workers)
            .map(|w| WorkerRt {
                node: NodeId(shards + w),
                sched: cfg.scheduler.build(&cfg.job),
                rng: master.substream(w as u64 + 1),
                iter: 0,
                iters_done: 0,
                backward_done: false,
                fwd_next: 0,
                fwd_busy: false,
                pulled: vec![false; n],
                pull_bytes: vec![0; n],
                gpu: TimeWeighted::new(SimTime::ZERO, 0.0),
                monitor: BandwidthMonitor::new(0.3, cfg.monitor_period),
                push_active: 0,
                busy_start: SimTime::ZERO,
                busy_accum: Duration::ZERO,
                bytes_accum: 0.0,
                failures_since_tick: 0,
                iter_start: SimTime::ZERO,
                ready_at: vec![UNSET; n],
                push_start: vec![UNSET; n],
                push_end: vec![UNSET; n],
                pull_start: vec![UNSET; n],
                pull_end: vec![UNSET; n],
            })
            .collect();
        let sizes = cfg.job.sizes();
        let fwd_times = cfg.job.fwd_times().to_vec();
        let trace = if cfg.trace {
            TraceRecorder::enabled()
        } else {
            TraceRecorder::disabled()
        };
        let sample_window = cfg.sample_window;
        let nodes = shards + total_workers;
        let node_base_bps: Vec<f64> = (0..nodes)
            .map(|n| {
                if n < shards {
                    cfg.ps_bps
                } else {
                    cfg.worker_bandwidth(n - shards)
                }
            })
            .collect();
        // Fault-local randomness (MsgLoss Bernoulli draws) comes from its
        // own substream so adding faults never perturbs compute jitter.
        let fault_rng = master.substream(u64::MAX ^ cfg.fault_plan.seed);
        let stall_until = vec![SimTime::ZERO; total_workers];
        let permanent = cfg.fault_plan.has_permanent();
        let owner: Vec<usize> = (0..n).map(|g| g % shards).collect();
        let fail_at: Vec<Option<u64>> = (0..total_workers)
            .map(|w| cfg.fault_plan.worker_fail_at(w))
            .collect();
        let active_from: Vec<u64> = (0..total_workers)
            .map(|w| cfg.fault_plan.worker_join_at(w).unwrap_or(0))
            .collect();
        let ckpt_armed = cfg.fault_plan.has_shard_fail();
        // The initial parameters are an implicit iteration-0 checkpoint:
        // a shard failing before the first periodic snapshot restores the
        // full owned state plus the ledger accrued since time zero.
        let mut ckpt_gens: Vec<Vec<SimGen>> = vec![Vec::new(); shards];
        if ckpt_armed {
            let mut owned = vec![0u64; shards];
            for (g, &o) in owner.iter().enumerate() {
                owned[o] += sizes[g];
            }
            for (s, gens) in ckpt_gens.iter_mut().enumerate() {
                gens.push(SimGen {
                    snap_bytes: owned[s],
                    seg_bytes: 0,
                    corrupt: false,
                });
            }
        }
        Cluster {
            permanent,
            owner,
            fail_at,
            active_from,
            joined: vec![false; total_workers],
            evicted: vec![false; total_workers],
            shard_dead: vec![false; shards],
            shard_blocked_until: vec![SimTime::ZERO; shards],
            membership_epoch: 0,
            ckpt_armed,
            ckpt_gens,
            ckpt_corrupt_done: vec![false; shards],
            barrier_counts: HashMap::new(),
            elastic: ElasticStats::default(),
            node_down: vec![false; nodes],
            node_degrade: vec![1.0; nodes],
            node_base_bps,
            stall_until,
            loss_rate: 0.0,
            loss_until: SimTime::ZERO,
            corrupt_rate: 0.0,
            corrupt_until: SimTime::ZERO,
            fault_active: HashMap::new(),
            fault_rng,
            retry_counts: HashMap::new(),
            needs_stamp: HashSet::new(),
            fault_stats: FaultStats::default(),
            cfg,
            total_iters,
            queue: EventQueue::new(),
            net,
            workers,
            agg: HashMap::new(),
            flow_task: HashMap::new(),
            tasks: HashMap::new(),
            lanes: HashMap::new(),
            next_task_id: 0,
            next_flow_tag: 0,
            sizes,
            fwd_times,
            net_wakes: VecDeque::new(),
            checker,
            span_sink,
            pending_net: VecDeque::new(),
            trace,
            gpu_series: Vec::new(),
            net_series: RateSeries::new(SimTime::ZERO, sample_window),
            last_net_bytes: 0.0,
            iter_times: Vec::new(),
            iter_starts: Vec::new(),
            transfer_logs: Vec::new(),
            credit_trace: Vec::new(),
            bandwidth_estimates: Vec::new(),
            degraded_transitions: Vec::new(),
            warmup_end_time: None,
            post_warmup_gpu: TimeWeighted::new(SimTime::ZERO, 0.0),
        }
    }

    fn shard_of(&self, grad: usize) -> NodeId {
        NodeId(self.owner[grad])
    }

    fn num_grads(&self) -> usize {
        self.sizes.len()
    }

    // ---- elastic membership ---------------------------------------------

    /// Does worker `w` participate in the barrier of `iter`? A worker is a
    /// member of exactly the iterations `active_from..fail_at`.
    fn member_at(&self, w: usize, iter: u64) -> bool {
        self.active_from[w] <= iter && self.fail_at[w].is_none_or(|k| iter < k)
    }

    /// BSP barrier size for `iter` under the plan's membership schedule.
    fn expected_workers(&self, iter: u64) -> usize {
        (0..self.workers.len())
            .filter(|&w| self.member_at(w, iter))
            .count()
    }

    /// Is worker `w` currently a live participant (admitted, not evicted)?
    fn participating(&self, w: usize) -> bool {
        !self.evicted[w] && (self.active_from[w] == 0 || self.joined[w])
    }

    /// Has worker `w` nothing left to contribute? Evicted workers are done
    /// at their fail iteration; a joiner whose admission has not fired yet
    /// blocks nobody (if the run ends before its join iteration is ever
    /// begun, it simply never existed).
    fn worker_done(&self, w: usize) -> bool {
        if self.evicted[w] {
            return true;
        }
        if self.active_from[w] > 0 && !self.joined[w] {
            return true;
        }
        self.workers[w].iters_done >= self.total_iters
    }

    // ---- typed event stream ---------------------------------------------

    fn sinks_active(&self) -> bool {
        self.checker.is_some() || self.span_sink.is_some()
    }

    /// Feed one typed event to every attached sink.
    fn emit(&mut self, at: SimTime, ev: TraceEvent) {
        if let Some(c) = self.checker.as_mut() {
            c.on_event(at, &ev);
        }
        if let Some(s) = self.span_sink.as_mut() {
            s.on_event(at, &ev);
        }
    }

    /// Forward net-ledger entries with timestamps `<= t` to the sinks. The
    /// ledger is chronological, so holding back later entries keeps flow
    /// events interleaved with cluster events in global time order (a
    /// completion handled at `t1` must see its PushEnd emitted before a
    /// FlowEnd that happened at `t2 > t1` is forwarded).
    fn forward_net_events_up_to(&mut self, t: SimTime) {
        if !self.sinks_active() {
            return;
        }
        for e in self.net.drain_events() {
            self.pending_net.push_back(e);
        }
        while let Some(&(at, _)) = self.pending_net.front() {
            if at > t {
                break;
            }
            let (at, ev) = self.pending_net.pop_front().expect("non-empty");
            let typed = match ev {
                NetEvent::FlowStart {
                    tag,
                    src,
                    dst,
                    bytes,
                } => TraceEvent::FlowStart {
                    tag,
                    src: src.0,
                    dst: dst.0,
                    bytes,
                },
                NetEvent::FlowEnd {
                    tag,
                    src,
                    dst,
                    delivered,
                } => TraceEvent::FlowEnd {
                    tag,
                    src: src.0,
                    dst: dst.0,
                    delivered,
                },
                NetEvent::FlowKilled {
                    tag,
                    src,
                    dst,
                    delivered,
                } => TraceEvent::FlowKilled {
                    tag,
                    src: src.0,
                    dst: dst.0,
                    delivered,
                },
            };
            self.emit(at, typed);
        }
    }

    fn run(mut self) -> RunResult {
        for w in 0..self.workers.len() {
            // Joiner slots have no iteration zero: their first IterBegin is
            // scheduled by their admission.
            if self.active_from[w] > 0 {
                continue;
            }
            self.queue.schedule(SimTime::ZERO, Ev::IterBegin { w });
        }
        self.queue
            .schedule(SimTime::ZERO + self.cfg.monitor_period, Ev::MonitorTick);
        self.queue
            .schedule(SimTime::ZERO + self.cfg.sample_window, Ev::SampleTick);
        for &(at, bps) in &self.cfg.bandwidth_schedule.clone() {
            self.queue
                .schedule(SimTime::ZERO + at, Ev::BandwidthChange { bps });
        }
        if self.has_faults() {
            for (idx, f) in self.cfg.fault_plan.faults.clone().iter().enumerate() {
                // Iteration-indexed specs (the permanent membership trio
                // plus `CheckpointCorrupt`) fire at the BSP boundary they
                // name, never as timer windows: their `at()`/`until()` are
                // both time zero by construction.
                if !f.is_windowed() {
                    continue;
                }
                self.queue.schedule(f.at(), Ev::FaultBegin { idx });
                self.queue.schedule(f.until(), Ev::FaultFinish { idx });
            }
        }

        while let Some((now, ev)) = self.queue.pop() {
            // Bring the network to `now` first so every handler sees a
            // fully-settled wire (completions are handled before anything
            // else that happens at this instant).
            self.drain_net(now);
            match ev {
                // A stalled worker's compute events are deferred to the end
                // of the stall window (fault plans only).
                Ev::IterBegin { w } if self.stalled(now, w) => {
                    let t = self.stall_until[w];
                    self.queue.schedule(t, Ev::IterBegin { w });
                }
                Ev::GradReady { w, iter, grad } if self.stalled(now, w) => {
                    let t = self.stall_until[w];
                    self.queue.schedule(t, Ev::GradReady { w, iter, grad });
                }
                Ev::FwdDone { w, iter, grad } if self.stalled(now, w) => {
                    let t = self.stall_until[w];
                    self.queue.schedule(t, Ev::FwdDone { w, iter, grad });
                }
                Ev::IterBegin { w } => self.on_iter_begin(now, w),
                Ev::GradReady { w, iter, grad } => self.on_grad_ready(now, w, iter, grad),
                Ev::FwdDone { w, iter, grad } => self.on_fwd_done(now, w, iter, grad),
                // drain_net already did the work; retire the wake so
                // arm_net knows this instant is no longer covered.
                Ev::NetWake => {
                    debug_assert_eq!(self.net_wakes.front(), Some(&now), "wake ledger drifted");
                    self.net_wakes.pop_front();
                }
                Ev::MonitorTick => self.on_monitor_tick(now),
                Ev::SampleTick => self.on_sample_tick(now),
                Ev::BandwidthChange { bps } => self.on_bandwidth_change(now, bps),
                Ev::FaultBegin { idx } => self.on_fault_begin(now, idx),
                Ev::FaultFinish { idx } => self.on_fault_finish(now, idx),
                Ev::LaneKick { key } => {
                    self.kick_lane(now, key);
                    self.forward_net_events_up_to(now);
                }
                Ev::MsgTimeout { tag } => self.on_msg_timeout(now, tag),
            }
            // Re-arm only once this instant's event burst is exhausted.
            // While more events sit at `now`, the network's next-event time
            // is still in flux (each handler may start or finish flows), and
            // asking for it would force the engine to resolve its deferred
            // re-fills once per event instead of once per instant. The last
            // event at `now` always falls through to `arm_net`, so the wake
            // for the true next network event is never missed.
            if self.queue.peek_time().is_none_or(|t| t > now) {
                self.arm_net();
            }
            if self.finished() && self.net.active_flows() == 0 {
                // Drop the periodic ticks (and any leftover fault-layer
                // timers — they would only spin the clock) so the loop
                // terminates. Pending NetWakes go too: with no flow in
                // flight they are by definition stale (armed for
                // predictions that kills or rate changes superseded), and
                // popping them would inflate the run's reported duration
                // past the last real event.
                self.queue.retain(|e| {
                    !matches!(
                        e,
                        Ev::MonitorTick
                            | Ev::SampleTick
                            | Ev::MsgTimeout { .. }
                            | Ev::LaneKick { .. }
                            | Ev::FaultBegin { .. }
                            | Ev::FaultFinish { .. }
                            | Ev::NetWake
                    )
                });
                self.net_wakes.clear();
            }
        }
        // Flush any net-ledger stragglers, then run the end-of-run audit
        // (dangling flows) before the results are assembled.
        let end = self.queue.now();
        self.forward_net_events_up_to(end);
        if let Some(c) = self.checker.as_ref() {
            c.finish();
        }
        self.finish()
    }

    fn finished(&self) -> bool {
        (0..self.workers.len()).all(|w| self.worker_done(w))
    }

    // ---- event handlers -------------------------------------------------

    fn on_iter_begin(&mut self, now: SimTime, w: usize) {
        let iter = self.workers[w].iters_done;
        // Permanent shard failures and admissions fire when the *first*
        // worker begins their iteration — an instant at which every
        // barrier of the previous iteration has closed, so no aggregation
        // state is in flight on the failing shard.
        if self.permanent {
            self.fire_boundary_events(now, iter);
        }
        {
            let wk = &mut self.workers[w];
            wk.iter = iter;
            wk.backward_done = false;
            wk.fwd_next = 0;
            wk.fwd_busy = false;
            wk.pulled.iter_mut().for_each(|p| *p = false);
            wk.pull_bytes.iter_mut().for_each(|b| *b = 0);
            wk.ready_at.iter_mut().for_each(|t| *t = UNSET);
            wk.push_start.iter_mut().for_each(|t| *t = UNSET);
            wk.push_end.iter_mut().for_each(|t| *t = UNSET);
            wk.pull_start.iter_mut().for_each(|t| *t = UNSET);
            wk.pull_end.iter_mut().for_each(|t| *t = UNSET);
            wk.iter_start = now;
            wk.gpu.set(now, 1.0); // backward compute starts immediately
            wk.sched.iteration_begin(now, iter);
        }
        if self.has_faults() {
            // Episode hygiene: drop retry state from completed iterations.
            self.retry_counts
                .retain(|&(w2, i, _), _| w2 != w || i >= iter);
        }
        self.emit(now, TraceEvent::IterBegin { worker: w, iter });
        if w == 0 {
            self.iter_starts.push(now);
            if self.iter_starts.len() as u64 == self.cfg.warmup_iters + 1 {
                self.warmup_end_time = Some(now);
                self.post_warmup_gpu = TimeWeighted::new(now, 1.0);
            }
        }
        // Schedule this iteration's gradient releases with a per-iteration
        // multiplicative jitter (order-preserving), scaled by the worker's
        // compute speed (straggler modelling).
        let factor =
            self.workers[w].rng.jitter(self.cfg.compute_jitter, 0.7) / self.cfg.compute_scale(w);
        let events: Vec<(usize, Duration)> = self
            .cfg
            .job
            .generation_events()
            .iter()
            .map(|e| (e.id, e.ready_at))
            .collect();
        for (grad, offset) in events {
            let jittered = Duration::from_secs_f64(offset.as_secs_f64() * factor);
            self.queue
                .schedule(now + jittered, Ev::GradReady { w, iter, grad });
        }
        if w == 0 {
            self.post_warmup_gpu_set(now, 1.0);
        }
    }

    fn on_grad_ready(&mut self, now: SimTime, w: usize, iter: u64, grad: usize) {
        debug_assert_eq!(self.workers[w].iter, iter, "stale GradReady");
        self.workers[w].ready_at[grad] = now;
        self.emit(
            now,
            TraceEvent::GradReady {
                worker: w,
                iter,
                grad,
            },
        );
        self.workers[w].sched.gradient_ready(now, grad);
        if grad == 0 {
            // Backward compute over; GPU idles until forward can start.
            let iter_start = self.workers[w].iter_start;
            self.workers[w].backward_done = true;
            self.workers[w].gpu.set(now, 0.0);
            if w == 0 {
                self.post_warmup_gpu_set(now, 0.0);
                self.trace
                    .record("w0.gpu", "b", iter as i64, iter_start, now);
            }
        }
        self.try_start_forward(now, w);
        self.pump(now, w);
    }

    fn on_fwd_done(&mut self, now: SimTime, w: usize, iter: u64, grad: usize) {
        debug_assert_eq!(self.workers[w].iter, iter, "stale FwdDone");
        let n = self.num_grads();
        let iteration_over = {
            let wk = &mut self.workers[w];
            wk.fwd_busy = false;
            wk.fwd_next = grad + 1;
            wk.gpu.set(now, 0.0);
            wk.fwd_next >= n
        };
        self.emit(
            now,
            TraceEvent::FwdEnd {
                worker: w,
                iter,
                grad,
            },
        );
        if w == 0 {
            self.post_warmup_gpu_set(now, 0.0);
        }
        if iteration_over {
            let (iter_time, credit) = {
                let wk = &mut self.workers[w];
                let t = now.saturating_since(wk.iter_start);
                wk.sched.iteration_end(now, iter, t);
                wk.iters_done += 1;
                (t, wk.sched.credit())
            };
            self.emit(now, TraceEvent::IterEnd { worker: w, iter });
            if w == 0 {
                self.iter_times.push(iter_time);
                if let Some(c) = credit {
                    self.credit_trace.push((iter, c));
                }
                // Snapshot this iteration's transfer log. The forward pass
                // only ran because every gradient was pulled, so a surviving
                // UNSET sentinel here means a bookkeeping path was skipped —
                // fail at collection time rather than poisoning the logs.
                let wk = &self.workers[0];
                let logs: Vec<GradTransferLog> = (0..n)
                    .map(|g| {
                        for (field, t) in [
                            ("ready", wk.ready_at[g]),
                            ("push_start", wk.push_start[g]),
                            ("push_end", wk.push_end[g]),
                            ("pull_start", wk.pull_start[g]),
                            ("pull_end", wk.pull_end[g]),
                        ] {
                            assert_ne!(
                                t, UNSET,
                                "iteration {iter}: gradient {g} has UNSET `{field}` \
                                 at transfer-log collection"
                            );
                        }
                        GradTransferLog {
                            grad: g,
                            ready: wk.ready_at[g],
                            push_start: wk.push_start[g],
                            push_end: wk.push_end[g],
                            pull_start: wk.pull_start[g],
                            pull_end: wk.pull_end[g],
                        }
                    })
                    .collect();
                self.transfer_logs.push(logs);
            }
            let done_now = self.workers[w].iters_done;
            if self.permanent && self.fail_at[w] == Some(done_now) {
                // This was the worker's last iteration: it leaves at the
                // boundary (no in-flight state — its transfers all
                // completed for the forward pass to have run).
                self.evict_worker(now, w);
            } else if done_now < self.total_iters {
                let next = now + self.cfg.job.gpu.iter_overhead;
                self.queue.schedule(next, Ev::IterBegin { w });
            }
        } else {
            self.try_start_forward(now, w);
        }
    }

    fn try_start_forward(&mut self, now: SimTime, w: usize) {
        let n = self.num_grads();
        let (can_start, next) = {
            let wk = &self.workers[w];
            let next = wk.fwd_next;
            (
                wk.backward_done && !wk.fwd_busy && next < n && wk.pulled[next],
                next,
            )
        };
        if !can_start {
            return;
        }
        let jitter =
            self.workers[w].rng.jitter(self.cfg.compute_jitter, 0.7) / self.cfg.compute_scale(w);
        let dur = Duration::from_secs_f64(self.fwd_times[next].as_secs_f64() * jitter);
        let iter = self.workers[w].iter;
        {
            let wk = &mut self.workers[w];
            wk.fwd_busy = true;
            wk.gpu.set(now, 1.0);
        }
        self.emit(
            now,
            TraceEvent::FwdStart {
                worker: w,
                iter,
                grad: next,
            },
        );
        if w == 0 {
            self.post_warmup_gpu_set(now, 1.0);
            self.trace
                .record("w0.gpu", "f", next as i64, now, now + dur);
        }
        self.queue.schedule(
            now + dur,
            Ev::FwdDone {
                w,
                iter,
                grad: next,
            },
        );
    }

    /// Reconfigure every NIC to `bps` (the PS shards included, so the
    /// whole fabric shifts together, like an EC2 bandwidth-tier change).
    fn on_bandwidth_change(&mut self, now: SimTime, bps: f64) {
        let nodes = self.cfg.ps_shards + self.workers.len();
        for n in 0..nodes {
            // Any active degradation multiplies the new base capacity
            // (×1.0 fault-free, which is bit-identical to the plain value).
            self.node_base_bps[n] = bps;
            let spec = NodeSpec::symmetric(bps * self.node_degrade[n]);
            // drain_net ran at the top of the event loop, so no completion
            // can be pending at `now`.
            let done = self.net.set_node_spec(now, NodeId(n), spec);
            debug_assert!(done.is_empty());
        }
    }

    fn on_monitor_tick(&mut self, now: SimTime) {
        for w in 0..self.workers.len() {
            // Evicted workers and not-yet-admitted joiners have no
            // scheduler to feed (and nothing to measure).
            if self.permanent && !self.participating(w) {
                continue;
            }
            // Aggregate achieved uplink rate since the last tick: bytes
            // delivered over wire-busy time. Prophet sizes its blocks so
            // transfers *complete* within generation windows, which needs
            // the contended wire rate — neither the uncontended ceiling
            // nor per-message goodput (depressed by self-pipelining).
            let est = {
                let wk = &mut self.workers[w];
                let mut busy = wk.busy_accum;
                if wk.push_active > 0 {
                    busy += now.saturating_since(wk.busy_start);
                    wk.busy_start = now;
                }
                let est = if busy > Duration::from_millis(5) && wk.bytes_accum > 0.0 {
                    Some(wk.bytes_accum / busy.as_secs_f64())
                } else {
                    None
                };
                wk.busy_accum = Duration::ZERO;
                wk.bytes_accum = 0.0;
                est
            };
            let fails = std::mem::take(&mut self.workers[w].failures_since_tick);
            // With transfer failures this period and no measured goodput
            // there is nothing honest to publish: stay silent so Prophet's
            // staleness detector sees the gap. Fault-free, `fails` is
            // always 0 and this branch never taken.
            if est.is_none() && fails > 0 {
                self.pump(now, w);
                continue;
            }
            let est = est.unwrap_or_else(|| self.cfg.worker_bandwidth(w));
            self.workers[w].sched.bandwidth_update(now, est);
            if w == 0 {
                self.bandwidth_estimates.push((now, est));
            }
            self.pump(now, w);
        }
        // Sample worker 0's degraded flag after the updates above so the
        // transition log reflects what this tick's estimate caused. Only
        // flips are recorded; strategies without a degraded mode (the
        // default `is_degraded` is `false`) log nothing.
        let degraded = self.workers[0].sched.is_degraded();
        if degraded
            != self
                .degraded_transitions
                .last()
                .map(|&(_, d)| d)
                .unwrap_or(false)
        {
            self.degraded_transitions.push((now, degraded));
        }
        self.queue
            .schedule(now + self.cfg.monitor_period, Ev::MonitorTick);
    }

    fn on_sample_tick(&mut self, now: SimTime) {
        let (window_start, util) = self.workers[0].gpu.sample_window(now);
        self.gpu_series.push((window_start, util));
        // Worker-0 NIC volume (both directions) this window.
        let node = self.workers[0].node;
        let total = self.net.tx_bytes(node) + self.net.rx_bytes(node);
        let delta = total - self.last_net_bytes;
        self.last_net_bytes = total;
        self.net_series.record(now, delta);
        self.queue
            .schedule(now + self.cfg.sample_window, Ev::SampleTick);
    }

    fn post_warmup_gpu_set(&mut self, now: SimTime, v: f64) {
        if self.warmup_end_time.is_some() {
            self.post_warmup_gpu.set(now, v);
        }
    }

    // ---- scheduler ↔ network glue ---------------------------------------

    /// Poll worker `w`'s scheduler until it stops issuing tasks.
    fn pump(&mut self, now: SimTime, w: usize) {
        while let Some(task) = self.workers[w].sched.next_task(now) {
            self.launch(now, w, task);
        }
    }

    /// Put a scheduler task on the wire, splitting it per PS shard.
    fn launch(&mut self, now: SimTime, w: usize, task: TransferTask) {
        let iter = self.workers[w].iter;
        let node = self.workers[w].node;
        // First-byte bookkeeping for the push logs, plus wire-busy
        // accounting for the bandwidth estimator.
        let mut first_touch: Vec<usize> = Vec::new();
        if task.dir == Dir::Push {
            {
                let wk = &mut self.workers[w];
                if wk.push_active == 0 {
                    wk.busy_start = now;
                }
                wk.push_active += 1;
            }
            for &(g, _) in &task.pieces {
                let wk = &mut self.workers[w];
                if wk.push_start[g] == UNSET {
                    wk.push_start[g] = now;
                    first_touch.push(g);
                }
            }
            for g in first_touch {
                self.needs_stamp.remove(&(w, g, Dir::Push));
                self.emit(
                    now,
                    TraceEvent::PushStart {
                        worker: w,
                        iter,
                        grad: g,
                    },
                );
            }
        } else {
            for &(g, _) in &task.pieces {
                let wk = &mut self.workers[w];
                if wk.pull_start[g] == UNSET {
                    wk.pull_start[g] = now;
                    first_touch.push(g);
                }
            }
            for g in first_touch {
                self.needs_stamp.remove(&(w, g, Dir::Pull));
                self.emit(
                    now,
                    TraceEvent::PullStart {
                        worker: w,
                        iter,
                        grad: g,
                    },
                );
            }
        }
        // Group pieces by destination shard: (shard, total bytes, pieces).
        type ShardGroup = (NodeId, u64, Vec<(usize, u64)>);
        let mut by_shard: Vec<ShardGroup> = Vec::new();
        for &(g, b) in &task.pieces {
            let shard = self.shard_of(g);
            match by_shard.iter_mut().find(|(s, _, _)| *s == shard) {
                Some((_, bytes, pieces)) => {
                    *bytes += b;
                    pieces.push((g, b));
                }
                None => by_shard.push((shard, b, vec![(g, b)])),
            }
        }
        if by_shard.is_empty() {
            // A zero-piece task is a scheduler bug; fail loudly in debug.
            debug_assert!(false, "scheduler issued an empty task");
            return;
        }
        let task_id = self.next_task_id;
        self.next_task_id += 1;
        let nflows = by_shard.len();
        let dir = task.dir;
        self.tasks.insert(
            task_id,
            InFlightTask {
                worker: w,
                iter,
                task,
                started: now,
                subflows_remaining: nflows,
                replay: false,
            },
        );
        for (shard, bytes, pieces) in by_shard {
            let (src, dst) = match dir {
                Dir::Push => (node, shard),
                Dir::Pull => (shard, node),
            };
            let tag = self.next_flow_tag;
            self.next_flow_tag += 1;
            self.flow_task.insert(tag, task_id);
            let key = (w, shard.0, dir);
            self.lanes
                .entry(key)
                .or_insert_with(Lane::new)
                .queue
                .push_back(QueuedMsg {
                    tag,
                    bytes,
                    src,
                    dst,
                    task_id,
                    pieces,
                    attempt: 0,
                    doomed: false,
                    corrupted: false,
                });
            self.kick_lane(now, key);
        }
        // Flows started on idle lanes appended to the net ledger at `now`;
        // hand them to the sinks while the instant is still current.
        self.forward_net_events_up_to(now);
    }

    /// Start the next queued message on a lane if it is idle, past any
    /// retry backoff, and both endpoints are up.
    fn kick_lane(&mut self, now: SimTime, key: (usize, usize, Dir)) {
        let transport = self.workers[key.0].sched.transport();
        let warm_timeout = self.cfg.warm_timeout;
        let faults = self.has_faults();
        let (mut msg, warm) = {
            let lane = self.lanes.get_mut(&key).expect("lane exists");
            if lane.active {
                return;
            }
            if faults {
                if now < lane.blocked_until {
                    return; // backing off; a LaneKick is already scheduled
                }
                let wnode = self.cfg.ps_shards + key.0;
                if self.node_down[wnode] || self.node_down[key.1] {
                    return; // endpoint down; kicked again on restore
                }
                // An adopting shard replaying a dead shard's checkpoint +
                // ledger serves nothing until the restore completes. The
                // kick is self-rescheduling (idempotent: a duplicate kick
                // finds the lane active or empty and does nothing).
                let sb = self.shard_blocked_until[key.1];
                if now < sb {
                    self.queue.schedule(sb, Ev::LaneKick { key });
                    return;
                }
            }
            let Some(msg) = lane.queue.pop_front() else {
                return;
            };
            let warm = transport == Transport::Pipelined
                && lane.ever_used
                && now.saturating_since(lane.last_end) <= warm_timeout;
            lane.active = true;
            lane.ever_used = true;
            (msg, warm)
        };
        if faults {
            // During a loss window every (re)send is lost with the plan's
            // probability: the bytes cross the wire but the receiver never
            // acknowledges them.
            if now < self.loss_until
                && self.loss_rate > 0.0
                && self.fault_rng.next_f64() < self.loss_rate
            {
                msg.doomed = true;
                self.fault_stats.messages_lost += 1;
            }
            // During a corruption window every surviving (re)send is
            // bit-flipped/truncated in flight with the plan's probability:
            // the bytes cross the wire, the receiver's CRC check rejects
            // the frame, and the NACK forces a full retransmit. Drawn
            // *after* (and only for messages that escaped) the loss draw so
            // plans without `PayloadCorrupt` leave the fault RNG stream —
            // and therefore every existing exact-ns golden — untouched.
            if !msg.doomed
                && now < self.corrupt_until
                && self.corrupt_rate > 0.0
                && self.fault_rng.next_f64() < self.corrupt_rate
            {
                msg.corrupted = true;
            }
            // Re-stamp pieces whose start a failed attempt voided.
            if msg.attempt > 0 {
                let iter = self.tasks.get(&msg.task_id).expect("unknown task").iter;
                for &(g, _) in &msg.pieces.clone() {
                    if self.needs_stamp.remove(&(key.0, g, key.2)) {
                        let wk = &mut self.workers[key.0];
                        let ev = match key.2 {
                            Dir::Push => {
                                if wk.push_start[g] == UNSET {
                                    wk.push_start[g] = now;
                                }
                                TraceEvent::PushStart {
                                    worker: key.0,
                                    iter,
                                    grad: g,
                                }
                            }
                            Dir::Pull => {
                                if wk.pull_start[g] == UNSET {
                                    wk.pull_start[g] = now;
                                }
                                TraceEvent::PullStart {
                                    worker: key.0,
                                    iter,
                                    grad: g,
                                }
                            }
                        };
                        self.emit(now, ev);
                    }
                }
            }
            // Every send is covered by an ack timeout; a stale timeout
            // (the message delivered or was re-tagged) is a no-op.
            self.queue.schedule(
                now + self.cfg.retry.timeout,
                Ev::MsgTimeout { tag: msg.tag },
            );
        }
        self.net
            .start_flow_with_warmth(now, msg.src, msg.dst, msg.bytes, msg.tag, warm);
        self.lanes.get_mut(&key).expect("lane exists").current = Some(msg);
    }

    /// Advance the network to `now` and process completions.
    fn drain_net(&mut self, now: SimTime) {
        let ends = self.net.advance_to(now);
        for end in ends {
            // Forward flow events up to this completion's instant first, so
            // the sinks see FlowEnd before the PushEnd/PullEnd it causes.
            self.forward_net_events_up_to(end.finished);
            self.handle_flow_end(end);
            // Lanes kicked while handling may have started new flows at
            // exactly this instant; flush those before moving on.
            self.forward_net_events_up_to(end.finished);
        }
        self.forward_net_events_up_to(now);
    }

    fn handle_flow_end(&mut self, end: FlowEnd) {
        let task_id = *self
            .flow_task
            .get(&end.tag)
            .expect("completion for unknown flow");
        let (worker, dir) = {
            let t = self.tasks.get(&task_id).expect("unknown task");
            (t.worker, t.task.dir)
        };
        // Release the lane this message occupied and start the next.
        let shard = match dir {
            Dir::Push => end.dst.0,
            Dir::Pull => end.src.0,
        };
        let key = (worker, shard, dir);
        let msg = {
            let lane = self.lanes.get_mut(&key).expect("lane exists");
            lane.active = false;
            lane.last_end = end.finished;
            lane.current.take()
        };
        if let Some(m) = msg {
            if m.doomed {
                // The bytes crossed the wire but the loss window ate the
                // message: deliver nothing and retry the send.
                self.fault_stats.wasted_bytes += m.bytes as f64;
                self.fail_message(end.finished, key, m);
                return;
            }
            if m.corrupted {
                // The bytes crossed the wire but arrived damaged: the
                // receiver's CRC verify rejects the frame at delivery time,
                // NACKs, and the sender retransmits from its still-clean
                // buffer — cost-wise identical to a lost message plus an
                // attributable detection event.
                self.fault_stats.wasted_bytes += m.bytes as f64;
                self.fault_stats.frames_corrupted += 1;
                self.emit(
                    end.finished,
                    TraceEvent::FrameCorrupt {
                        node: m.dst.0,
                        bytes: m.bytes,
                        data: true,
                    },
                );
                self.fail_message(end.finished, key, m);
                return;
            }
        }
        self.flow_task.remove(&end.tag);
        self.kick_lane(end.finished, key);
        let done = {
            let inflight = self.tasks.get_mut(&task_id).expect("unknown task");
            inflight.subflows_remaining -= 1;
            inflight.subflows_remaining == 0
        };
        if done {
            let inflight = self.tasks.remove(&task_id).unwrap();
            self.on_task_complete(end.finished, inflight);
        }
    }

    fn on_task_complete(&mut self, now: SimTime, inflight: InFlightTask) {
        let w = inflight.worker;
        let iter = inflight.iter;
        if inflight.replay {
            // A crash replay bypasses the scheduler: the strategy already
            // got `task_done` when the original delivery completed — only
            // the PS-side aggregation state is being reconstructed.
            for (g, b) in inflight.task.pieces.clone() {
                self.on_push_bytes(now, w, iter, g, b);
            }
            self.pump(now, w);
            return;
        }
        self.workers[w].sched.task_done(now, &inflight.task);
        match inflight.task.dir {
            Dir::Push => {
                // Observe pure wire time: the fixed per-message setup is
                // modelled separately by TcpModel, so leaving it in the
                // sample would double-count it when the scheduler turns
                // the estimate back into transfer times.
                let elapsed = now.saturating_since(inflight.started);
                let setup = Duration::from_secs_f64(self.cfg.tcp.setup_s);
                let wire = elapsed.saturating_sub(setup);
                {
                    let wk = &mut self.workers[w];
                    wk.monitor
                        .observe(now, inflight.task.bytes, wire.max(Duration::from_nanos(1)));
                    wk.bytes_accum += inflight.task.bytes as f64;
                    wk.push_active = wk.push_active.saturating_sub(1);
                    if wk.push_active == 0 {
                        wk.busy_accum += now.saturating_since(wk.busy_start);
                    }
                }
                if w == 0 && self.trace.is_enabled() {
                    let label = format!("p{}", inflight.task.top_priority());
                    self.trace.record(
                        "w0.up",
                        &label,
                        inflight.task.top_priority() as i64,
                        inflight.started,
                        now,
                    );
                }
                let pieces = inflight.task.pieces.clone();
                for (g, b) in pieces {
                    self.on_push_bytes(now, w, iter, g, b);
                }
            }
            Dir::Pull => {
                if w == 0 && self.trace.is_enabled() {
                    let label = format!("q{}", inflight.task.top_priority());
                    self.trace.record(
                        "w0.down",
                        &label,
                        inflight.task.top_priority() as i64,
                        inflight.started,
                        now,
                    );
                }
                let pieces = inflight.task.pieces.clone();
                for (g, b) in pieces {
                    self.on_pull_bytes(now, w, g, b);
                }
            }
        }
        self.pump(now, w);
    }

    fn on_push_bytes(&mut self, now: SimTime, w: usize, iter: u64, g: usize, b: u64) {
        let nworkers = self.workers.len();
        let expected = if self.permanent {
            self.expected_workers(iter)
        } else {
            nworkers
        };
        let entry = self.agg.entry((iter, g)).or_insert_with(|| AggState {
            per_worker_bytes: vec![0; nworkers],
            workers_done: 0,
        });
        entry.per_worker_bytes[w] += b;
        debug_assert!(
            entry.per_worker_bytes[w] <= self.sizes[g],
            "worker {w} over-pushed gradient {g}"
        );
        if entry.per_worker_bytes[w] == self.sizes[g] {
            entry.workers_done += 1;
            let all_arrived = entry.workers_done == expected;
            if w == 0 {
                self.workers[0].push_end[g] = now;
            }
            if let Some(c) = self.retry_counts.remove(&(w, iter, g)) {
                self.fault_stats.recoveries += 1;
                self.emit(
                    now,
                    TraceEvent::Recovered {
                        worker: w,
                        iter,
                        grad: g,
                        attempts: c,
                    },
                );
            }
            self.emit(
                now,
                TraceEvent::PushEnd {
                    worker: w,
                    iter,
                    grad: g,
                },
            );
            match self.cfg.sync {
                SyncMode::Asp => {
                    // Asynchronous: this worker's gradient is applied on
                    // arrival; it pulls the fresh parameters immediately,
                    // waiting for nobody.
                    if all_arrived {
                        self.agg.remove(&(iter, g));
                    }
                    self.workers[w].sched.param_ready(now, g);
                    self.pump(now, w);
                }
                SyncMode::Bsp => {
                    // A barrier the survivors satisfied may still be waiting
                    // on an eviction: worker j with `fail_at[j] <= iter` is
                    // excluded from `expected_workers(iter)`, but its
                    // MembershipChange only fires once j *finishes* iteration
                    // `fail_at[j] - 1` — and a stall on j can push that past
                    // the survivors' sprint ahead. Completing now would emit
                    // Barrier before the eviction epoch, which the checker
                    // (rightly) rejects. Defer; `evict_worker`'s sweep closes
                    // it the instant the epoch opens.
                    if all_arrived && !(self.permanent && self.pending_worker_fail(iter)) {
                        self.complete_barrier(now, iter, g);
                    }
                }
            }
        }
    }

    /// BSP barrier for `(iter, g)` reached: parameters updated, every
    /// member of the iteration may pull.
    fn complete_barrier(&mut self, now: SimTime, iter: u64, g: usize) {
        self.agg.remove(&(iter, g));
        self.emit(now, TraceEvent::Barrier { iter, grad: g });
        if self.ckpt_armed {
            self.note_barrier_closed(now, iter, g);
        }
        for w2 in 0..self.workers.len() {
            if self.permanent && !self.member_at(w2, iter) {
                continue;
            }
            debug_assert_eq!(
                self.workers[w2].iter, iter,
                "update completed while worker {w2} is in another iteration"
            );
            self.workers[w2].sched.param_ready(now, g);
            self.pump(now, w2);
        }
    }

    fn on_pull_bytes(&mut self, now: SimTime, w: usize, g: usize, b: u64) {
        let complete = {
            let wk = &mut self.workers[w];
            wk.pull_bytes[g] += b;
            debug_assert!(wk.pull_bytes[g] <= self.sizes[g], "over-pulled {g}");
            wk.pull_bytes[g] == self.sizes[g]
        };
        if complete {
            let iter = {
                let wk = &mut self.workers[w];
                wk.pulled[g] = true;
                wk.pull_end[g] = now;
                wk.iter
            };
            if let Some(c) = self.retry_counts.remove(&(w, iter, g)) {
                self.fault_stats.recoveries += 1;
                self.emit(
                    now,
                    TraceEvent::Recovered {
                        worker: w,
                        iter,
                        grad: g,
                        attempts: c,
                    },
                );
            }
            self.emit(
                now,
                TraceEvent::PullEnd {
                    worker: w,
                    iter,
                    grad: g,
                },
            );
            self.try_start_forward(now, w);
        }
    }

    /// Make sure a wake-up is queued for the network's next event.
    ///
    /// A wake is scheduled only when that instant moves *earlier* than
    /// every outstanding wake (`net_wakes` is ascending, so the front is
    /// the earliest). Any later outstanding wake still fires, drains
    /// nothing, and re-arms — wakes are pure no-ops for simulation state,
    /// so deduplication cannot change a run, it only stops every handled
    /// event from spawning one more wake chain (which used to bury the
    /// queue in tens of millions of duplicates at high worker counts).
    fn arm_net(&mut self) {
        if let Some(t) = self.net.next_event_time() {
            if self.net_wakes.front().is_none_or(|&f| t < f) {
                debug_assert!(t >= self.queue.now(), "armed a wake in the past");
                self.queue.schedule(t, Ev::NetWake);
                self.net_wakes.push_front(t);
            }
        }
    }

    // ---- fault injection -------------------------------------------------

    fn has_faults(&self) -> bool {
        !self.cfg.fault_plan.is_empty()
    }

    /// Is worker `w`'s compute inside an active `WorkerStall` window?
    fn stalled(&self, now: SimTime, w: usize) -> bool {
        self.has_faults() && now < self.stall_until[w]
    }

    /// The node a spec's trace events are attributed to (`usize::MAX` for
    /// the global `MsgLoss`/`PayloadCorrupt`; stalls use the worker's
    /// topology node).
    fn fault_trace_node(&self, spec: &FaultSpec) -> usize {
        match *spec {
            FaultSpec::LinkDown { node, .. } | FaultSpec::LinkDegrade { node, .. } => node,
            FaultSpec::MsgLoss { .. } | FaultSpec::PayloadCorrupt { .. } => usize::MAX,
            FaultSpec::ShardCrash { shard, .. }
            | FaultSpec::ShardFail { shard, .. }
            | FaultSpec::CheckpointCorrupt { shard, .. } => shard,
            FaultSpec::WorkerStall { worker, .. }
            | FaultSpec::WorkerFail { worker, .. }
            | FaultSpec::WorkerJoin { worker, .. } => self.cfg.ps_shards + worker,
        }
    }

    /// Is any `LinkDown`/`ShardCrash` window covering `node` active at
    /// `now`? Windows are half-open `[at, until)`, so a finish event at
    /// `until` sees its own window as inactive.
    fn any_down_window(&self, now: SimTime, node: usize) -> bool {
        self.cfg.fault_plan.faults.iter().any(|f| {
            window_active(f, now)
                && match *f {
                    FaultSpec::LinkDown { node: n, .. } => n == node,
                    FaultSpec::ShardCrash { shard, .. } => shard == node,
                    _ => false,
                }
        })
    }

    /// Effective degrade factor on `node`: the minimum over active
    /// `LinkDegrade` windows (overlaps stack as "worst wins"), 1.0 if none.
    fn active_degrade(&self, now: SimTime, node: usize) -> f64 {
        self.cfg
            .fault_plan
            .faults
            .iter()
            .fold(1.0f64, |acc, f| match *f {
                FaultSpec::LinkDegrade {
                    node: n, factor, ..
                } if n == node && window_active(f, now) => acc.min(factor),
                _ => acc,
            })
    }

    /// Effective loss `(rate, until)` over active `MsgLoss` windows: the
    /// worst rate, covering until the last window closes.
    fn active_loss(&self, now: SimTime) -> (f64, SimTime) {
        self.cfg
            .fault_plan
            .faults
            .iter()
            .fold((0.0f64, SimTime::ZERO), |(rate, until), f| match *f {
                FaultSpec::MsgLoss { rate: r, .. } if window_active(f, now) => {
                    (rate.max(r), until.max(f.until()))
                }
                _ => (rate, until),
            })
    }

    /// Effective corruption `(rate, until)` over active `PayloadCorrupt`
    /// windows, mirroring [`Cluster::active_loss`].
    fn active_corrupt(&self, now: SimTime) -> (f64, SimTime) {
        self.cfg
            .fault_plan
            .faults
            .iter()
            .fold((0.0f64, SimTime::ZERO), |(rate, until), f| match *f {
                FaultSpec::PayloadCorrupt { rate: r, .. } if window_active(f, now) => {
                    (rate.max(r), until.max(f.until()))
                }
                _ => (rate, until),
            })
    }

    fn on_fault_begin(&mut self, now: SimTime, idx: usize) {
        let spec = self.cfg.fault_plan.faults[idx];
        let key = (spec.kind(), self.fault_trace_node(&spec));
        let count = self.fault_active.entry(key).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.emit(
                now,
                TraceEvent::FaultStart {
                    kind: key.0,
                    node: key.1,
                },
            );
        }
        match spec {
            FaultSpec::LinkDown { node, .. } => {
                self.node_down[node] = true;
                let kills = self.net.kill_flows_touching(now, NodeId(node));
                self.fail_flows(now, kills);
            }
            FaultSpec::LinkDegrade { node, factor, .. } => {
                // Overlapping degrades stack as "worst wins".
                self.node_degrade[node] = self.node_degrade[node].min(factor);
                self.apply_node_cap(now, node);
            }
            FaultSpec::MsgLoss { rate, .. } => {
                self.loss_rate = self.loss_rate.max(rate);
                self.loss_until = self.loss_until.max(spec.until());
            }
            FaultSpec::ShardCrash { shard, .. } => {
                self.node_down[shard] = true;
                let kills = self.net.kill_flows_touching(now, NodeId(shard));
                self.fail_flows(now, kills);
                self.wipe_shard_state(now, shard);
            }
            FaultSpec::WorkerStall { worker, .. } => {
                // A shorter overlapping stall must not cut a longer one off.
                self.stall_until[worker] = self.stall_until[worker].max(spec.until());
            }
            FaultSpec::PayloadCorrupt { rate, .. } => {
                self.corrupt_rate = self.corrupt_rate.max(rate);
                self.corrupt_until = self.corrupt_until.max(spec.until());
            }
            FaultSpec::WorkerFail { .. }
            | FaultSpec::ShardFail { .. }
            | FaultSpec::WorkerJoin { .. }
            | FaultSpec::CheckpointCorrupt { .. } => {
                unreachable!("iteration-indexed faults are never window-scheduled")
            }
        }
    }

    fn on_fault_finish(&mut self, now: SimTime, idx: usize) {
        let spec = self.cfg.fault_plan.faults[idx];
        let key = (spec.kind(), self.fault_trace_node(&spec));
        let count = self
            .fault_active
            .get_mut(&key)
            .expect("fault finished without starting");
        *count -= 1;
        // The trace pair closes when the last same-(kind, node) window does;
        // node state restores only once *no* window (of any kind) still
        // holds it down — both recomputed from the plan, not toggled, so
        // overlapping windows cannot un-fault a still-faulted node.
        let last = *count == 0;
        match spec {
            FaultSpec::LinkDown { node, .. } | FaultSpec::ShardCrash { shard: node, .. } => {
                // A transient window closing must never resurrect a node a
                // permanent `ShardFail` already killed for good.
                let perma_dead = node < self.cfg.ps_shards && self.shard_dead[node];
                let up = !self.any_down_window(now, node) && !perma_dead;
                if up {
                    self.node_down[node] = false;
                    self.cold_restart_lanes(node);
                }
                if last {
                    self.emit(
                        now,
                        TraceEvent::FaultEnd {
                            kind: key.0,
                            node: key.1,
                        },
                    );
                }
                if up {
                    self.kick_lanes_touching(now, node);
                }
            }
            FaultSpec::LinkDegrade { node, .. } => {
                self.node_degrade[node] = self.active_degrade(now, node);
                self.apply_node_cap(now, node);
                if last {
                    self.emit(
                        now,
                        TraceEvent::FaultEnd {
                            kind: key.0,
                            node: key.1,
                        },
                    );
                }
            }
            FaultSpec::MsgLoss { .. } => {
                let (rate, until) = self.active_loss(now);
                self.loss_rate = rate;
                self.loss_until = until;
                if last {
                    self.emit(
                        now,
                        TraceEvent::FaultEnd {
                            kind: key.0,
                            node: key.1,
                        },
                    );
                }
            }
            FaultSpec::WorkerStall { .. } => {
                // `stall_until` is the max over windows already; nothing to
                // restore.
                if last {
                    self.emit(
                        now,
                        TraceEvent::FaultEnd {
                            kind: key.0,
                            node: key.1,
                        },
                    );
                }
            }
            FaultSpec::PayloadCorrupt { .. } => {
                let (rate, until) = self.active_corrupt(now);
                self.corrupt_rate = rate;
                self.corrupt_until = until;
                if last {
                    self.emit(
                        now,
                        TraceEvent::FaultEnd {
                            kind: key.0,
                            node: key.1,
                        },
                    );
                }
            }
            FaultSpec::WorkerFail { .. }
            | FaultSpec::ShardFail { .. }
            | FaultSpec::WorkerJoin { .. }
            | FaultSpec::CheckpointCorrupt { .. } => {
                unreachable!("iteration-indexed faults are never window-scheduled")
            }
        }
    }

    /// Re-apply a node's capacity (base × degradation factor).
    fn apply_node_cap(&mut self, now: SimTime, node: usize) {
        let spec = NodeSpec::symmetric(self.node_base_bps[node] * self.node_degrade[node]);
        let done = self.net.set_node_spec(now, NodeId(node), spec);
        debug_assert!(done.is_empty());
    }

    /// Connections do not survive an outage: every lane touching `node`
    /// comes back *cold* (full setup + slow-start on the next message).
    fn cold_restart_lanes(&mut self, node: usize) {
        let shards = self.cfg.ps_shards;
        for (&(w, shard, _), lane) in self.lanes.iter_mut() {
            if shard == node || shards + w == node {
                lane.ever_used = false;
            }
        }
    }

    /// Kick every lane touching `node`, in deterministic key order.
    fn kick_lanes_touching(&mut self, now: SimTime, node: usize) {
        let shards = self.cfg.ps_shards;
        let mut keys: Vec<(usize, usize, Dir)> = self
            .lanes
            .keys()
            .filter(|&&(w, shard, _)| shard == node || shards + w == node)
            .copied()
            .collect();
        keys.sort_by_key(|&(w, s, d)| (w, s, matches!(d, Dir::Pull) as u8));
        for key in keys {
            self.kick_lane(now, key);
        }
        self.forward_net_events_up_to(now);
    }

    fn on_msg_timeout(&mut self, now: SimTime, tag: u64) {
        if !self.flow_task.contains_key(&tag) {
            return; // delivered, or already retried under a fresh tag
        }
        if let Some(kf) = self.net.kill_flow(now, tag) {
            self.fail_flows(now, vec![kf]);
        }
    }

    /// Handle flows the network just killed: close their lanes, void the
    /// affected gradients' stamps, and queue the messages for re-send.
    fn fail_flows(&mut self, now: SimTime, kills: Vec<KilledFlow>) {
        // Ledger first: sinks must see each FlowKilled before the
        // RetryAttempt it causes.
        self.forward_net_events_up_to(now);
        for kf in kills {
            self.fault_stats.flows_killed += 1;
            self.fault_stats.wasted_bytes += kf.delivered;
            let key = self.flow_key(&kf);
            let msg = {
                let lane = self.lanes.get_mut(&key).expect("lane exists");
                lane.active = false;
                lane.last_end = now;
                lane.current
                    .take()
                    .expect("killed flow had no current message")
            };
            debug_assert_eq!(msg.tag, kf.tag);
            self.fail_message(now, key, msg);
        }
    }

    /// Derive the lane key of a killed flow from its endpoints (shards
    /// occupy the low node indices, workers follow).
    fn flow_key(&self, kf: &KilledFlow) -> (usize, usize, Dir) {
        let shards = self.cfg.ps_shards;
        if kf.src.0 < shards {
            (kf.dst.0 - shards, kf.src.0, Dir::Pull)
        } else {
            (kf.src.0 - shards, kf.dst.0, Dir::Push)
        }
    }

    /// Re-queue a failed message under a fresh tag with one more attempt,
    /// back its lane off, and void the stamps of the gradients it carried.
    fn fail_message(&mut self, now: SimTime, key: (usize, usize, Dir), mut msg: QueuedMsg) {
        let (w, _, dir) = key;
        self.flow_task.remove(&msg.tag);
        let tag = self.next_flow_tag;
        self.next_flow_tag += 1;
        self.flow_task.insert(tag, msg.task_id);
        msg.tag = tag;
        msg.attempt += 1;
        msg.doomed = false;
        msg.corrupted = false;
        self.fault_stats.retried_bytes += msg.bytes;
        self.workers[w].failures_since_tick += 1;
        let (iter, task) = {
            let t = self.tasks.get(&msg.task_id).expect("unknown task");
            (t.iter, t.task.clone())
        };
        self.workers[w].sched.transfer_failed(now, &task);
        for &(g, _) in &msg.pieces.clone() {
            self.note_retry(now, w, iter, g, dir);
        }
        let delay = self.cfg.retry.delay(msg.attempt);
        let until = now + delay;
        let lane = self.lanes.get_mut(&key).expect("lane exists");
        lane.queue.push_front(msg);
        if until > lane.blocked_until {
            lane.blocked_until = until;
        }
        self.queue.schedule(until, Ev::LaneKick { key });
    }

    /// Record one retry step for `(w, iter, g)` and void its stamps so the
    /// re-send re-stamps them. Coalesced: while the gradient is already
    /// awaiting a re-stamp, further failures join the episode silently.
    fn note_retry(&mut self, now: SimTime, w: usize, iter: u64, g: usize, dir: Dir) {
        if !self.needs_stamp.insert((w, g, dir)) {
            return;
        }
        {
            let wk = &mut self.workers[w];
            match dir {
                Dir::Push => {
                    wk.push_start[g] = UNSET;
                    wk.push_end[g] = UNSET;
                }
                Dir::Pull => wk.pull_start[g] = UNSET,
            }
        }
        let c = self.retry_counts.entry((w, iter, g)).or_insert(0);
        *c += 1;
        let attempt = *c;
        self.fault_stats.retries += 1;
        self.emit(
            now,
            TraceEvent::RetryAttempt {
                worker: w,
                iter,
                grad: g,
                attempt,
            },
        );
    }

    /// A crashed shard loses its in-memory aggregation state: every
    /// worker's already-delivered bytes for gradients on that shard must
    /// be pushed again. Completed pushes are voided (the checker un-counts
    /// their barrier arrivals) and replay messages are synthesised outside
    /// the schedulers, which already saw `task_done` for those bytes.
    fn wipe_shard_state(&mut self, now: SimTime, shard: usize) {
        let mut wiped: Vec<((u64, usize), Vec<u64>)> = self
            .agg
            .iter()
            .filter(|((_, g), _)| self.shard_of(*g).0 == shard)
            .map(|(&k, st)| (k, st.per_worker_bytes.clone()))
            .collect();
        wiped.sort_by_key(|&(k, _)| k);
        for ((iter, g), per_worker) in wiped {
            self.agg.remove(&(iter, g));
            for (w, &b) in per_worker.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                self.fault_stats.replays += 1;
                self.fault_stats.retried_bytes += b;
                self.workers[w].failures_since_tick += 1;
                let task = TransferTask::slice(Dir::Push, g, b);
                self.workers[w].sched.transfer_failed(now, &task);
                self.note_retry(now, w, iter, g, Dir::Push);
                let task_id = self.next_task_id;
                self.next_task_id += 1;
                self.tasks.insert(
                    task_id,
                    InFlightTask {
                        worker: w,
                        iter,
                        task,
                        started: now,
                        subflows_remaining: 1,
                        replay: true,
                    },
                );
                let tag = self.next_flow_tag;
                self.next_flow_tag += 1;
                self.flow_task.insert(tag, task_id);
                let key = (w, shard, Dir::Push);
                let node = self.workers[w].node;
                self.lanes
                    .entry(key)
                    .or_insert_with(Lane::new)
                    .queue
                    .push_back(QueuedMsg {
                        tag,
                        bytes: b,
                        src: node,
                        dst: NodeId(shard),
                        task_id,
                        pieces: vec![(g, b)],
                        attempt: 1,
                        doomed: false,
                        corrupted: false,
                    });
                // No kick — the shard is down; restart kicks the lanes.
            }
        }
    }

    // ---- elastic membership machinery ------------------------------------

    /// Fire every not-yet-fired permanent boundary event with
    /// `at_iter <= iter`: shard failures first, then admissions, each in
    /// node-id order — a fixed order, so runs are deterministic.
    fn fire_boundary_events(&mut self, now: SimTime, iter: u64) {
        for s in 0..self.cfg.ps_shards {
            if self.shard_dead[s] {
                continue;
            }
            if let Some(k) = self.cfg.fault_plan.shard_fail_at(s) {
                if k <= iter {
                    self.fail_shard(now, s, k);
                }
            }
        }
        for w in 0..self.workers.len() {
            if self.joined[w] || self.active_from[w] == 0 {
                continue;
            }
            if self.active_from[w] <= iter {
                self.admit_worker(now, w);
            }
        }
    }

    /// Open a membership epoch: emit the change and force every surviving
    /// scheduler to re-plan against the new membership. The taint makes
    /// the next failure-free monitor period the first with an honest
    /// estimate, so Prophet's staleness detector routes the gap through
    /// its degraded mode (the paper's §4.2 stale-profile story).
    fn open_epoch(&mut self, now: SimTime, kind: FaultKind, node: usize, iter: u64) {
        self.membership_epoch += 1;
        self.elastic.epochs += 1;
        self.emit(
            now,
            TraceEvent::MembershipChange {
                epoch: self.membership_epoch,
                kind,
                node,
                iter,
            },
        );
        for w2 in 0..self.workers.len() {
            if !self.participating(w2) {
                continue;
            }
            self.workers[w2].failures_since_tick += 1;
            self.elastic.replans += 1;
        }
    }

    /// Worker `w` leaves for good at the boundary of its fail iteration.
    /// Boundary semantics mean no in-flight state: its final iteration's
    /// transfers all completed for the forward pass to have finished.
    fn evict_worker(&mut self, now: SimTime, w: usize) {
        let at_iter = self.fail_at[w].expect("eviction without a fail spec");
        self.evicted[w] = true;
        self.elastic.evicted_workers += 1;
        self.open_epoch(now, FaultKind::WorkerFail, w, at_iter);
        // Barriers the departed worker was the last missing member of
        // close right now — everyone surviving already pushed.
        self.sweep_barriers(now);
    }

    /// Is some worker with `fail_at <= iter` still awaiting eviction? While
    /// one is, no iteration-`iter` barrier may close: the Barrier event must
    /// trail that worker's WorkerFail epoch in the trace.
    fn pending_worker_fail(&self, iter: u64) -> bool {
        (0..self.workers.len())
            .any(|w| self.fail_at[w].is_some_and(|k| k <= iter) && !self.evicted[w])
    }

    /// Close every open barrier the shrunken membership already satisfies,
    /// in deterministic key order — skipping iterations still gated on a
    /// not-yet-fired eviction.
    fn sweep_barriers(&mut self, now: SimTime) {
        let mut ready: Vec<(u64, usize)> = self
            .agg
            .iter()
            .filter(|(&(iter, _), st)| {
                st.workers_done == self.expected_workers(iter) && !self.pending_worker_fail(iter)
            })
            .map(|(&k, _)| k)
            .collect();
        ready.sort_unstable();
        for (iter, g) in ready {
            self.complete_barrier(now, iter, g);
        }
    }

    /// Worker `j` joins at the boundary of iteration `k`: it bootstraps by
    /// pulling the full model (modelled as a provisioning delay at the
    /// joiner's NIC rate, off the training fabric), then runs iterations
    /// `k..` as a full barrier member.
    fn admit_worker(&mut self, now: SimTime, j: usize) {
        let k = self.active_from[j];
        self.joined[j] = true;
        {
            let wk = &mut self.workers[j];
            wk.iters_done = k;
            wk.iter = k;
        }
        self.elastic.joined_workers += 1;
        self.open_epoch(now, FaultKind::WorkerJoin, j, k);
        let model: u64 = self.sizes.iter().sum();
        self.elastic.bootstrap_bytes += model;
        let delay = Duration::from_secs_f64(model as f64 / self.cfg.worker_bandwidth(j));
        self.queue.schedule(now + delay, Ev::IterBegin { w: j });
    }

    /// Shard `s` dies for good at the boundary of iteration `at_iter`: its
    /// tensors re-home to survivors, which rebuild the adopted state from
    /// the last checkpoint plus the post-checkpoint byte ledger before
    /// serving anything new.
    fn fail_shard(&mut self, now: SimTime, s: usize, at_iter: u64) {
        self.shard_dead[s] = true;
        self.node_down[s] = true;
        self.elastic.failed_shards += 1;
        self.open_epoch(now, FaultKind::ShardFail, s, at_iter);
        // The boundary trigger guarantees no open aggregation state on the
        // dead shard: every barrier of the previous iteration closed before
        // any worker could begin this one. Anything else is a bug worth
        // dying loudly over (the alternative is a silent hang).
        assert!(
            !self.agg.keys().any(|&(_, g)| self.owner[g] == s),
            "open aggregation state on permanently failed shard {s}"
        );
        // Kill whatever is still on the wire touching the dead shard
        // (stragglers' previous-iteration pulls, pending replays). The
        // partial deliveries are work lost to the failure.
        let kills = self.net.kill_flows_touching(now, NodeId(s));
        self.forward_net_events_up_to(now);
        for kf in &kills {
            self.fault_stats.flows_killed += 1;
            self.fault_stats.wasted_bytes += kf.delivered;
            self.elastic.lost_work_bytes += kf.delivered as u64;
            let key = self.flow_key(kf);
            let lane = self.lanes.get_mut(&key).expect("lane exists");
            lane.active = false;
            lane.last_end = now;
        }
        // Re-home the dead shard's tensors (the modular rule over
        // survivors — a pure function of permanent membership, so the
        // threaded runtime derives the identical placement).
        let dead: Vec<usize> = (0..self.cfg.ps_shards)
            .filter(|&x| self.shard_dead[x])
            .collect();
        let from = self.owner.clone();
        rehome_modular(&mut self.owner, self.cfg.ps_shards, &dead, s);
        let mut adopters: Vec<usize> = Vec::new();
        for (g, &prev) in from.iter().enumerate() {
            if prev == self.owner[g] {
                continue;
            }
            self.emit(
                now,
                TraceEvent::Rehome {
                    grad: g,
                    from: prev,
                    to: self.owner[g],
                },
            );
            if !adopters.contains(&self.owner[g]) {
                adopters.push(self.owner[g]);
            }
        }
        // Restore cost: walk the dead shard's generations newest-first,
        // paying for every snapshot read until the checksum verifies, then
        // replay every ledger segment from the intact generation forward —
        // all read back at the PS NIC rate; the adopters serve nothing new
        // until it completes. With no corruption the walk stops at the
        // newest generation and the cost collapses to the classic
        // `snapshot + ledger`, which is what keeps the exact-ns fault
        // goldens byte-for-byte unchanged.
        let gens = std::mem::take(&mut self.ckpt_gens[s]);
        let mut restore = 0u64;
        let mut depth = 0u64;
        let mut intact = None;
        for (i, g) in gens.iter().enumerate().rev() {
            restore += g.snap_bytes;
            if g.corrupt {
                depth += 1;
            } else {
                intact = Some(i);
                break;
            }
        }
        let intact = intact.expect("no intact checkpoint generation for failed shard");
        for g in &gens[intact..] {
            restore += g.seg_bytes;
        }
        if depth > 0 {
            self.elastic.restore_fallbacks += 1;
            self.elastic.fallback_depth += depth;
            self.emit(now, TraceEvent::RestoreFallback { shard: s, depth });
        }
        self.elastic.restore_bytes += restore;
        let delay = Duration::from_secs_f64(restore as f64 / self.cfg.ps_bps);
        self.elastic.recovery_ns += delay.as_nanos();
        let until = now + delay;
        for &a in &adopters {
            if until > self.shard_blocked_until[a] {
                self.shard_blocked_until[a] = until;
            }
        }
        // Re-route every message parked on a lane to the dead shard onto
        // its gradient's new owner — fail-fast, zero backoff: there is no
        // outage to outwait.
        let mut keys: Vec<(usize, usize, Dir)> = self
            .lanes
            .keys()
            .filter(|&&(_, sh, _)| sh == s)
            .copied()
            .collect();
        keys.sort_by_key(|&(w2, _, d)| (w2, matches!(d, Dir::Pull) as u8));
        for key in keys {
            let lane = self.lanes.get_mut(&key).expect("lane exists");
            let mut msgs: Vec<QueuedMsg> = lane.current.take().into_iter().collect();
            msgs.extend(lane.queue.drain(..));
            for msg in msgs {
                self.reroute_message(now, key, msg);
            }
        }
        self.forward_net_events_up_to(now);
    }

    /// Re-queue a message bound for a dead shard onto its pieces' new
    /// owners under fresh tags. The episode counts as a retry (stamps
    /// voided, scheduler told) but the backoff is the fail-fast zero of
    /// [`prophet_net::RetryPolicy::delay_to`]: backing off against a peer
    /// that is never coming back would burn the whole capped-exponential
    /// schedule per message for nothing.
    fn reroute_message(&mut self, now: SimTime, key: (usize, usize, Dir), mut msg: QueuedMsg) {
        let (w, _, dir) = key;
        self.flow_task.remove(&msg.tag);
        self.fault_stats.retried_bytes += msg.bytes;
        self.workers[w].failures_since_tick += 1;
        let (iter, task) = {
            let t = self.tasks.get(&msg.task_id).expect("unknown task");
            (t.iter, t.task.clone())
        };
        self.workers[w].sched.transfer_failed(now, &task);
        for &(g, _) in &msg.pieces.clone() {
            self.note_retry(now, w, iter, g, dir);
        }
        msg.attempt += 1;
        msg.doomed = false;
        msg.corrupted = false;
        debug_assert_eq!(
            self.cfg.retry.delay_to(msg.attempt, true),
            Duration::ZERO,
            "fail-fast re-route must not back off"
        );
        // Split the payload by the pieces' adopters (the modular re-home
        // maps one dead shard onto one survivor, but stay general). One
        // message becomes `groups.len()`, so the owning task's outstanding
        // subflow count grows by the difference.
        type Group = (usize, u64, Vec<(usize, u64)>);
        let mut groups: Vec<Group> = Vec::new();
        for &(g, b) in &msg.pieces {
            let a = self.owner[g];
            match groups.iter_mut().find(|(s2, _, _)| *s2 == a) {
                Some((_, bytes, pieces)) => {
                    *bytes += b;
                    pieces.push((g, b));
                }
                None => groups.push((a, b, vec![(g, b)])),
            }
        }
        self.tasks
            .get_mut(&msg.task_id)
            .expect("unknown task")
            .subflows_remaining += groups.len() - 1;
        let wnode = self.workers[w].node;
        let attempt = msg.attempt;
        let task_id = msg.task_id;
        for (a, bytes, pieces) in groups {
            let tag = self.next_flow_tag;
            self.next_flow_tag += 1;
            self.flow_task.insert(tag, task_id);
            let (src, dst) = match dir {
                Dir::Push => (wnode, NodeId(a)),
                Dir::Pull => (NodeId(a), wnode),
            };
            let newkey = (w, a, dir);
            self.lanes
                .entry(newkey)
                .or_insert_with(Lane::new)
                .queue
                .push_back(QueuedMsg {
                    tag,
                    bytes,
                    src,
                    dst,
                    task_id,
                    pieces,
                    attempt,
                    doomed: false,
                    corrupted: false,
                });
            self.kick_lane(now, newkey);
        }
    }

    /// Checkpoint bookkeeping for one closed barrier: the tensor's bytes
    /// append to its owning shard's post-checkpoint ledger, and the last
    /// barrier of a period-aligned iteration triggers a snapshot.
    fn note_barrier_closed(&mut self, now: SimTime, iter: u64, g: usize) {
        let s = self.owner[g];
        if let Some(gen) = self.ckpt_gens[s].last_mut() {
            gen.seg_bytes += self.sizes[g];
        }
        let done = self.barrier_counts.entry(iter).or_insert(0);
        *done += 1;
        if *done == self.num_grads() {
            self.barrier_counts.remove(&iter);
            if (iter + 1) % self.cfg.checkpoint_period == 0 {
                self.take_checkpoint(now, iter);
            }
        }
    }

    /// Snapshot every surviving shard's parameter state as of `iter` and
    /// reset its ledger.
    fn take_checkpoint(&mut self, now: SimTime, iter: u64) {
        let mut owned = vec![0u64; self.cfg.ps_shards];
        for (g, &o) in self.owner.iter().enumerate() {
            owned[o] += self.sizes[g];
        }
        for (s, &bytes) in owned.iter().enumerate() {
            if self.shard_dead[s] {
                continue;
            }
            // `CheckpointCorrupt { shard, at_iter }` poisons the first
            // snapshot written at or after that iteration boundary — the
            // snapshot covering through `iter` is written at boundary
            // `iter + 1` — and only that one (one-shot), so the newest
            // *older* generation stays intact for the fallback walk.
            let corrupt = !self.ckpt_corrupt_done[s]
                && self
                    .cfg
                    .fault_plan
                    .checkpoint_corrupt_at(s)
                    .is_some_and(|k| iter + 1 >= k);
            if corrupt {
                self.ckpt_corrupt_done[s] = true;
                self.elastic.corrupt_snapshots += 1;
            }
            self.ckpt_gens[s].push(SimGen {
                snap_bytes: bytes,
                seg_bytes: 0,
                corrupt,
            });
            // Retention GC, mirroring `DurableStore`'s scrub rule: collect
            // oldest-first while more than one intact generation remains,
            // then corrupted generations (a removed corrupt generation's
            // ledger segment merges into its older neighbour, which still
            // needs those entries for replay), and never collect the only
            // intact one — a corrupted newest snapshot must always leave a
            // verified fallback target behind.
            let keep = self.cfg.checkpoint_retention.max(1);
            let gens = &mut self.ckpt_gens[s];
            while gens.len() > keep {
                let intact = gens.iter().filter(|g| !g.corrupt).count();
                if intact > 1 {
                    gens.remove(0);
                } else if let Some(i) = gens.iter().position(|g| g.corrupt) {
                    let seg = gens[i].seg_bytes;
                    gens.remove(i);
                    if i > 0 {
                        gens[i - 1].seg_bytes += seg;
                    }
                } else {
                    break;
                }
            }
            self.elastic.checkpoints += 1;
            self.emit(now, TraceEvent::Checkpoint { shard: s, iter });
        }
    }

    // ---- results ---------------------------------------------------------

    fn finish(mut self) -> RunResult {
        let end = self.queue.now();
        let batch = self.cfg.job.batch as f64;
        let warmup = self.cfg.warmup_iters as usize;
        let n_iters = self.iter_times.len();
        let rate = if n_iters > warmup {
            let steady: Duration = self.iter_times[warmup..]
                .iter()
                .fold(Duration::ZERO, |a, &b| a + b);
            (n_iters - warmup) as f64 * batch / steady.as_secs_f64()
        } else {
            0.0
        };
        let total: Duration = self.iter_times.iter().fold(Duration::ZERO, |a, &b| a + b);
        let rate_with_warmup = if total.is_zero() {
            0.0
        } else {
            n_iters as f64 * batch / total.as_secs_f64()
        };
        let avg_gpu_util = if self.warmup_end_time.is_some() {
            self.post_warmup_gpu.average(end)
        } else {
            0.0
        };
        let net_throughput = self.net_series.samples().to_vec();
        let post_warmup_net: Vec<f64> = net_throughput
            .iter()
            .filter(|(t, _)| Some(*t) >= self.warmup_end_time)
            .map(|&(_, v)| v)
            .collect();
        let avg_net_throughput = if post_warmup_net.is_empty() {
            0.0
        } else {
            post_warmup_net.iter().sum::<f64>() / post_warmup_net.len() as f64
        };
        let (grad_spans, shard_spans) = self
            .span_sink
            .take()
            .map(SpanCollector::into_parts)
            .unwrap_or_default();
        // Every retry episode must have closed with a delivery; a leftover
        // entry means a gradient was dropped on the floor.
        debug_assert!(
            self.retry_counts.is_empty(),
            "unrecovered retry episodes at end of run: {:?}",
            self.retry_counts
        );
        let mut fault_stats = self.fault_stats.clone();
        fault_stats.wire_bytes = (0..self.cfg.ps_shards + self.workers.len())
            .map(|n| self.net.tx_bytes(NodeId(n)))
            .sum();
        // Close the degraded-mode log with the end-of-run state so short
        // runs (fewer than one monitor period) still report it and the
        // oracle's stuck-degraded check sees the final word.
        let final_degraded = self.workers[0].sched.is_degraded();
        let last_logged = self
            .degraded_transitions
            .last()
            .map(|&(_, d)| d)
            .unwrap_or(false);
        if final_degraded != last_logged {
            self.degraded_transitions.push((end, final_degraded));
        }
        RunResult {
            scheduler: self.cfg.scheduler.label().to_string(),
            iterations: self.total_iters,
            duration: end,
            rate,
            rate_with_warmup,
            iter_times: self.iter_times,
            gpu_util: self.gpu_series,
            avg_gpu_util,
            net_throughput,
            avg_net_throughput,
            transfer_logs: self.transfer_logs,
            iter_starts: self.iter_starts,
            trace: self.trace,
            credit_trace: self.credit_trace,
            bandwidth_estimates: self.bandwidth_estimates,
            degraded_transitions: self.degraded_transitions,
            grad_spans,
            fault_stats,
            shard_spans,
            elastic: self.elastic,
        }
    }
}

/// Simulate `iters` BSP iterations of `cfg` and report the metrics.
pub fn run_cluster(cfg: &ClusterConfig, iters: u64) -> RunResult {
    assert!(iters > 0, "zero iterations");
    Cluster::new(cfg.clone(), iters).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_core::{ProphetConfig, SchedulerKind};
    use prophet_dnn::TrainingJob;

    fn base(scheduler: SchedulerKind) -> ClusterConfig {
        ClusterConfig::paper_cell(2, 10.0, TrainingJob::paper_setup("resnet18", 16), scheduler)
    }

    #[test]
    fn fifo_cluster_completes_iterations() {
        let r = run_cluster(&base(SchedulerKind::Fifo), 6);
        assert_eq!(r.iterations, 6);
        assert_eq!(r.iter_times.len(), 6);
        assert!(r.rate > 0.0, "rate {}", r.rate);
        assert!(r.duration > SimTime::ZERO);
    }

    #[test]
    fn rate_below_compute_ceiling() {
        let cfg = base(SchedulerKind::Fifo);
        let ceiling = cfg.job.compute_rate_ceiling();
        let r = run_cluster(&cfg, 6);
        // (small tolerance: compute jitter can make short windows beat
        // the nominal ceiling)
        assert!(
            r.rate <= ceiling * 1.08,
            "rate {} exceeds compute ceiling {}",
            r.rate,
            ceiling
        );
    }

    #[test]
    fn all_schedulers_complete() {
        for kind in SchedulerKind::paper_lineup(1.25e9) {
            let label = kind.label();
            let r = run_cluster(&base(kind), 4);
            assert_eq!(r.iter_times.len(), 4, "{label}");
            assert!(r.rate > 0.0, "{label}: zero rate");
        }
    }

    #[test]
    fn prophet_oracle_completes() {
        let kind = SchedulerKind::ProphetOracle(ProphetConfig::paper_default(1.25e9));
        let r = run_cluster(&base(kind), 4);
        assert_eq!(r.iter_times.len(), 4);
        assert!(r.rate > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = base(SchedulerKind::Fifo);
        let a = run_cluster(&cfg, 4);
        let b = run_cluster(&cfg, 4);
        assert_eq!(a.iter_times, b.iter_times);
        assert_eq!(a.duration, b.duration);
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let c = run_cluster(&cfg2, 4);
        assert_ne!(a.iter_times, c.iter_times, "seed had no effect");
    }

    #[test]
    fn transfer_logs_are_complete_and_ordered() {
        let r = run_cluster(&base(SchedulerKind::Fifo), 3);
        for logs in &r.transfer_logs {
            for log in logs {
                assert_ne!(log.ready, SimTime::MAX, "gradient {} never ready", log.grad);
                assert_ne!(log.push_start, SimTime::MAX);
                assert_ne!(log.push_end, SimTime::MAX);
                assert_ne!(log.pull_end, SimTime::MAX);
                assert!(log.ready <= log.push_start);
                assert!(log.push_start < log.push_end);
                assert!(log.push_end <= log.pull_end);
            }
        }
    }

    #[test]
    fn gpu_utilisation_is_sampled_and_bounded() {
        let r = run_cluster(&base(SchedulerKind::Fifo), 5);
        assert!(!r.gpu_util.is_empty());
        for &(_, u) in &r.gpu_util {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "util {u}");
        }
        assert!(r.avg_gpu_util > 0.2, "avg util {}", r.avg_gpu_util);
    }

    #[test]
    fn net_series_sees_traffic() {
        let r = run_cluster(&base(SchedulerKind::Fifo), 4);
        let peak = r
            .net_throughput
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        assert!(peak > 1e6, "peak throughput {peak}");
    }

    #[test]
    fn slower_network_slower_training() {
        let job = || TrainingJob::paper_setup("resnet50", 32);
        let fast = ClusterConfig::paper_cell(2, 10.0, job(), SchedulerKind::Fifo);
        let slow = ClusterConfig::paper_cell(2, 1.0, job(), SchedulerKind::Fifo);
        let rf = run_cluster(&fast, 5);
        let rs = run_cluster(&slow, 5);
        assert!(rf.rate > rs.rate * 1.3, "10G {} vs 1G {}", rf.rate, rs.rate);
    }

    #[test]
    fn heterogeneous_worker_slows_everyone() {
        let job = || TrainingJob::paper_setup("resnet50", 32);
        let uniform = ClusterConfig::paper_cell(3, 10.0, job(), SchedulerKind::Fifo);
        let mut hetero = uniform.clone();
        hetero.worker_bps_overrides.push((1, 62.5e6)); // 500 Mbps
        let ru = run_cluster(&uniform, 4);
        let rh = run_cluster(&hetero, 4);
        assert!(
            rh.rate < ru.rate * 0.8,
            "hetero {} vs uniform {}",
            rh.rate,
            ru.rate
        );
    }

    #[test]
    fn sharded_ps_speeds_up_large_clusters() {
        // Workers pushing ResNet50-sized gradients through one under-
        // provisioned PS NIC (3 Gb/s vs the workers' 10 Gb/s) saturate it;
        // sharding the PS (BytePS-style co-location) relieves the
        // bottleneck because each shard brings its own NIC. A credit-based
        // scheduler is used so several tensors are in flight concurrently —
        // serialized whole-tensor pushes hit one shard at a time and cannot
        // benefit.
        let job = || TrainingJob::paper_setup("resnet50", 64);
        let mut single = ClusterConfig::paper_cell(
            4,
            10.0,
            job(),
            SchedulerKind::ByteScheduler(Default::default()),
        );
        single.ps_bps = 3e9 / 8.0;
        single.compute_jitter = 0.0;
        single.warmup_iters = 1;
        let mut sharded = single.clone();
        sharded.ps_shards = 4;
        let r1 = run_cluster(&single, 3);
        let r6 = run_cluster(&sharded, 3);
        assert!(
            r6.rate > r1.rate,
            "sharded {} vs single {}",
            r6.rate,
            r1.rate
        );
    }

    #[test]
    fn credit_trace_only_for_autotuner() {
        use prophet_core::{AutoTuneConfig, ByteSchedulerConfig};
        let fixed = run_cluster(
            &base(SchedulerKind::ByteScheduler(ByteSchedulerConfig::default())),
            3,
        );
        assert!(!fixed.credit_trace.is_empty()); // fixed credit still reported
        assert!(fixed.credit_trace.iter().all(|&(_, c)| c == 12 << 20));
        let tuned_cfg = ByteSchedulerConfig {
            autotune: Some(AutoTuneConfig {
                interval_iters: 1,
                ..AutoTuneConfig::default()
            }),
            ..ByteSchedulerConfig::default()
        };
        let tuned = run_cluster(&base(SchedulerKind::ByteScheduler(tuned_cfg)), 8);
        let credits: Vec<u64> = tuned.credit_trace.iter().map(|&(_, c)| c).collect();
        let distinct: std::collections::BTreeSet<u64> = credits.iter().copied().collect();
        assert!(distinct.len() > 1, "tuner never moved: {credits:?}");
    }

    #[test]
    fn trace_records_gpu_and_network_lanes() {
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.trace = true;
        let r = run_cluster(&cfg, 2);
        assert!(r.trace.lane("w0.gpu").count() > 0);
        assert!(r.trace.lane("w0.up").count() > 0);
        assert!(r.trace.lane("w0.down").count() > 0);
    }

    // ---- fault injection -------------------------------------------------

    use prophet_sim::{FaultPlan, FaultSpec};

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(v)
    }

    #[test]
    fn fault_free_run_has_zero_fault_stats() {
        let r = run_cluster(&base(SchedulerKind::Fifo), 3);
        assert_eq!(r.fault_stats.retries, 0);
        assert_eq!(r.fault_stats.flows_killed, 0);
        assert_eq!(r.fault_stats.messages_lost, 0);
        assert_eq!(r.fault_stats.replays, 0);
        assert_eq!(r.fault_stats.recoveries, 0);
        assert!(r.fault_stats.wire_bytes > 0.0);
    }

    #[test]
    fn link_down_kills_retries_and_recovers() {
        let mut cfg = base(SchedulerKind::Fifo);
        // Worker 1's node (shards=1, so node index 2) loses its links in
        // the middle of iteration 0's push phase.
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::LinkDown {
            node: 2,
            at: ms(30),
            dur: Duration::from_millis(60),
        }]);
        let r = run_cluster(&cfg, 3);
        assert_eq!(r.iter_times.len(), 3, "run did not complete");
        assert!(r.fault_stats.flows_killed > 0, "{:?}", r.fault_stats);
        assert!(r.fault_stats.retries > 0, "{:?}", r.fault_stats);
        assert!(
            r.fault_stats.recoveries > 0 && r.fault_stats.recoveries <= r.fault_stats.retries,
            "every retried gradient must eventually deliver: {:?}",
            r.fault_stats
        );
        // Same plan, same seed: bit-identical outcome.
        let r2 = run_cluster(&cfg, 3);
        assert_eq!(r.iter_times, r2.iter_times);
        assert_eq!(r.duration, r2.duration);
        assert_eq!(r.fault_stats, r2.fault_stats);
    }

    #[test]
    fn link_degrade_slows_training_but_completes() {
        let mut healthy = base(SchedulerKind::Fifo);
        healthy.compute_jitter = 0.0;
        let mut degraded = healthy.clone();
        degraded.fault_plan = FaultPlan::new(vec![FaultSpec::LinkDegrade {
            node: 0, // the PS NIC: every transfer shares the pain
            at: ms(10),
            factor: 0.15,
            dur: Duration::from_millis(400),
        }]);
        let rh = run_cluster(&healthy, 3);
        let rd = run_cluster(&degraded, 3);
        assert_eq!(rd.iter_times.len(), 3);
        assert!(
            rd.duration > rh.duration,
            "degraded {:?} should be slower than healthy {:?}",
            rd.duration,
            rh.duration
        );
    }

    #[test]
    fn overlapping_same_kind_windows_pair_their_trace_events() {
        // Chaos-search reproducer (seed 42, shrunk): a burst piles a second
        // WorkerStall onto an active one, and a shard crashes again inside
        // its own restart window. Each used to emit a second `FaultStart`
        // for an already-open (kind, node) pair — an instant checker panic —
        // and the first window's end un-faulted the node while the second
        // window still held it.
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.check_invariants = true;
        cfg.fault_plan = FaultPlan::new(vec![
            FaultSpec::WorkerStall {
                worker: 1,
                at: SimTime::from_nanos(119_362_926),
                dur: Duration::from_nanos(13_154_060),
            },
            FaultSpec::WorkerStall {
                worker: 1,
                at: SimTime::from_nanos(130_681_165),
                dur: Duration::from_nanos(1_693_936),
            },
            FaultSpec::ShardCrash {
                shard: 0,
                at: ms(150),
                restart_after: Duration::from_millis(60),
            },
            FaultSpec::ShardCrash {
                shard: 0,
                at: ms(170),
                restart_after: Duration::from_millis(10),
            },
        ]);
        let r = run_cluster(&cfg, 3);
        assert_eq!(r.iter_times.len(), 3, "run did not complete");
    }

    #[test]
    fn overlapping_degrades_stack_worst_wins_and_unwind() {
        // Two overlapping degrade windows on the PS: while both are active
        // the deeper factor applies; when the deep one ends first, the link
        // must restore to the shallow factor, not to full bandwidth.
        let mut shallow = base(SchedulerKind::Fifo);
        shallow.compute_jitter = 0.0;
        let mut both = shallow.clone();
        shallow.fault_plan = FaultPlan::new(vec![FaultSpec::LinkDegrade {
            node: 0,
            at: ms(10),
            factor: 0.5,
            dur: Duration::from_millis(400),
        }]);
        both.fault_plan = FaultPlan::new(vec![
            FaultSpec::LinkDegrade {
                node: 0,
                at: ms(10),
                factor: 0.5,
                dur: Duration::from_millis(400),
            },
            FaultSpec::LinkDegrade {
                node: 0,
                at: ms(20),
                factor: 0.1,
                dur: Duration::from_millis(100),
            },
        ]);
        let rs = run_cluster(&shallow, 3);
        let rb = run_cluster(&both, 3);
        assert_eq!(rb.iter_times.len(), 3);
        assert!(
            rb.duration > rs.duration,
            "the nested deep window must cost extra time: {:?} vs {:?}",
            rb.duration,
            rs.duration
        );
    }

    #[test]
    fn msg_loss_dooms_messages_deterministically() {
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::MsgLoss {
            rate: 0.25,
            at: ms(0),
            dur: Duration::from_millis(250),
        }]);
        let r = run_cluster(&cfg, 3);
        assert_eq!(r.iter_times.len(), 3);
        assert!(r.fault_stats.messages_lost > 0, "{:?}", r.fault_stats);
        assert!(
            r.fault_stats.recoveries > 0 && r.fault_stats.recoveries <= r.fault_stats.retries,
            "{:?}",
            r.fault_stats
        );
        let r2 = run_cluster(&cfg, 3);
        assert_eq!(r.fault_stats, r2.fault_stats);
        assert_eq!(r.duration, r2.duration);
        // A different plan seed redraws the losses.
        let mut cfg3 = cfg.clone();
        cfg3.fault_plan.seed ^= 0xDEAD;
        let r3 = run_cluster(&cfg3, 3);
        assert_ne!(
            (r.duration, r.fault_stats.messages_lost),
            (r3.duration, r3.fault_stats.messages_lost),
            "plan seed had no effect"
        );
    }

    #[test]
    fn shard_crash_replays_wiped_aggregation_state() {
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::ShardCrash {
            shard: 0,
            at: ms(40),
            restart_after: Duration::from_millis(50),
        }]);
        let r = run_cluster(&cfg, 3);
        assert_eq!(r.iter_times.len(), 3, "run did not complete");
        assert!(
            r.fault_stats.replays > 0 || r.fault_stats.flows_killed > 0,
            "crash mid-push neither killed nor wiped anything: {:?}",
            r.fault_stats
        );
        assert!(
            r.fault_stats.recoveries > 0 && r.fault_stats.recoveries <= r.fault_stats.retries,
            "{:?}",
            r.fault_stats
        );
        let r2 = run_cluster(&cfg, 3);
        assert_eq!(r.iter_times, r2.iter_times);
        assert_eq!(r.fault_stats, r2.fault_stats);
    }

    #[test]
    fn worker_stall_delays_the_bsp_barrier() {
        let mut healthy = base(SchedulerKind::Fifo);
        healthy.compute_jitter = 0.0;
        let mut stalled = healthy.clone();
        stalled.fault_plan = FaultPlan::new(vec![FaultSpec::WorkerStall {
            worker: 1,
            at: ms(20),
            dur: Duration::from_millis(150),
        }]);
        let rh = run_cluster(&healthy, 3);
        let rs = run_cluster(&stalled, 3);
        assert_eq!(rs.iter_times.len(), 3);
        assert!(
            rs.duration > rh.duration,
            "stall {:?} vs healthy {:?}",
            rs.duration,
            rh.duration
        );
    }

    #[test]
    fn faults_hold_across_the_scheduler_lineup() {
        // Every strategy must survive a kill-retry cycle plus a shard
        // crash with the invariant checker attached (debug builds).
        for kind in SchedulerKind::paper_lineup(1.25e9) {
            let label = kind.label();
            let mut cfg = base(kind);
            cfg.fault_plan = FaultPlan::new(vec![
                FaultSpec::LinkDown {
                    node: 2,
                    at: ms(25),
                    dur: Duration::from_millis(40),
                },
                FaultSpec::ShardCrash {
                    shard: 0,
                    at: ms(160),
                    restart_after: Duration::from_millis(40),
                },
            ]);
            let r = run_cluster(&cfg, 3);
            assert_eq!(r.iter_times.len(), 3, "{label}: incomplete run");
            assert!(
                r.fault_stats.recoveries <= r.fault_stats.retries,
                "{label}: dropped gradient: {:?}",
                r.fault_stats
            );
            assert!(
                r.fault_stats.retries == 0 || r.fault_stats.recoveries > 0,
                "{label}: retried but never recovered: {:?}",
                r.fault_stats
            );
        }
    }

    #[test]
    fn prophet_degrades_and_recovers_under_faults() {
        let mut cfg = base(SchedulerKind::Prophet(ProphetConfig::paper_default(1.25e9)));
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::LinkDown {
            node: 2,
            at: ms(400),
            dur: Duration::from_millis(80),
        }]);
        // Enough iterations that profiling finishes before the fault and
        // training continues long after it.
        let r = run_cluster(&cfg, 8);
        assert_eq!(r.iter_times.len(), 8);
        assert!(
            r.fault_stats.recoveries > 0 && r.fault_stats.recoveries <= r.fault_stats.retries,
            "{:?}",
            r.fault_stats
        );
    }

    // ---- elastic membership ------------------------------------------------

    #[test]
    fn worker_fail_evicts_at_the_boundary_and_survivors_finish() {
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.workers = 3;
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::WorkerFail {
            worker: 2,
            at_iter: 3,
        }]);
        let r = run_cluster(&cfg, 6);
        assert_eq!(r.iter_times.len(), 6, "worker 0 must finish all iterations");
        assert_eq!(r.elastic.evicted_workers, 1);
        assert_eq!(r.elastic.epochs, 1);
        assert!(r.elastic.replans >= 2, "{:?}", r.elastic);
        // Checkpoints stay unarmed without a ShardFail in the plan.
        assert_eq!(r.elastic.checkpoints, 0);
    }

    #[test]
    fn barrier_defers_until_a_stalled_workers_eviction_fires() {
        // The race the `pending_worker_fail` gate closes: worker 2 leaves at
        // iteration 3, but a compute stall delays its *final* forward pass —
        // the event that fires the eviction — while the survivors sprint
        // ahead and satisfy the shrunken iteration-3 barriers first. Closing
        // those barriers before the WorkerFail epoch opens would put Barrier
        // ahead of MembershipChange in the trace, which the invariant
        // checker rejects (arrived != live). With the gate, the barriers
        // defer to `evict_worker`'s sweep and the run completes clean.
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.workers = 3;
        cfg.check_invariants = true;
        cfg.fault_plan = FaultPlan::new(vec![
            FaultSpec::WorkerFail {
                worker: 2,
                at_iter: 3,
            },
            // The window sits over worker 2's final iteration (iterations
            // are ~192 ms apart in this cell): its iteration-2 pushes are
            // already on the wire, so the survivors' iteration-3 barriers
            // fill while the eviction trigger is still stalled. Without
            // the gate this panics the checker ("barrier for iter 3 after
            // 2/3 pushes").
            FaultSpec::WorkerStall {
                worker: 2,
                at: SimTime::ZERO + Duration::from_millis(480),
                dur: Duration::from_secs(1),
            },
        ]);
        let r = run_cluster(&cfg, 6);
        assert_eq!(r.iter_times.len(), 6);
        assert_eq!(r.elastic.evicted_workers, 1);
    }

    #[test]
    fn worker_join_admits_at_its_iteration_and_finishes() {
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::WorkerJoin {
            worker: 2,
            at_iter: 2,
        }]);
        let r = run_cluster(&cfg, 5);
        assert_eq!(r.iter_times.len(), 5);
        assert_eq!(r.elastic.joined_workers, 1);
        let model: u64 = cfg.job.sizes().iter().sum();
        assert_eq!(r.elastic.bootstrap_bytes, model);
    }

    #[test]
    fn shard_fail_rehomes_restores_and_finishes() {
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.ps_shards = 2;
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::ShardFail {
            shard: 1,
            at_iter: 2,
        }]);
        let r = run_cluster(&cfg, 6);
        assert_eq!(r.iter_times.len(), 6);
        assert_eq!(r.elastic.failed_shards, 1);
        assert!(
            r.elastic.restore_bytes > 0 && r.elastic.recovery_ns > 0,
            "{:?}",
            r.elastic
        );
        // Period 4 with the failure at iter 2: the surviving shard still
        // snapshots at iterations 3 (now owning everything).
        assert!(r.elastic.checkpoints >= 1, "{:?}", r.elastic);
    }

    #[test]
    fn shard_fail_reroutes_fail_fast_without_burning_the_backoff_schedule() {
        // The hazard delay_to() closes: re-routed messages backing off
        // against the dead shard would stall seconds per message. With
        // fail-fast the churn run must stay within a modest factor of the
        // fault-free run — far under a single 5 s ack timeout.
        let clean = run_cluster(
            &{
                let mut c = base(SchedulerKind::Fifo);
                c.ps_shards = 2;
                c
            },
            6,
        );
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.ps_shards = 2;
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::ShardFail {
            shard: 1,
            at_iter: 2,
        }]);
        let r = run_cluster(&cfg, 6);
        let slowdown = r.duration.saturating_since(clean.duration);
        assert!(
            slowdown < cfg.retry.timeout,
            "recovery cost {:?} at least one full ack timeout — fail-fast broken",
            slowdown
        );
    }

    #[test]
    fn churn_combo_holds_across_the_scheduler_lineup() {
        for kind in SchedulerKind::paper_lineup(1.25e9) {
            let label = kind.label();
            let mut cfg =
                ClusterConfig::paper_cell(3, 10.0, TrainingJob::paper_setup("resnet18", 16), kind);
            cfg.ps_shards = 2;
            cfg.fault_plan = FaultPlan::new(vec![
                FaultSpec::WorkerFail {
                    worker: 1,
                    at_iter: 4,
                },
                FaultSpec::ShardFail {
                    shard: 0,
                    at_iter: 2,
                },
                FaultSpec::WorkerJoin {
                    worker: 3,
                    at_iter: 3,
                },
            ]);
            let r = run_cluster(&cfg, 6);
            assert_eq!(r.iter_times.len(), 6, "{label}");
            assert_eq!(r.elastic.epochs, 3, "{label}: {:?}", r.elastic);
            assert_eq!(
                (
                    r.elastic.evicted_workers,
                    r.elastic.failed_shards,
                    r.elastic.joined_workers
                ),
                (1, 1, 1),
                "{label}"
            );
        }
    }

    #[test]
    fn permanent_plans_are_deterministic() {
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.workers = 3;
        cfg.ps_shards = 2;
        cfg.fault_plan = FaultPlan::new(vec![
            FaultSpec::ShardFail {
                shard: 1,
                at_iter: 2,
            },
            FaultSpec::WorkerFail {
                worker: 2,
                at_iter: 3,
            },
        ]);
        let a = run_cluster(&cfg, 5);
        let b = run_cluster(&cfg, 5);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.iter_times, b.iter_times);
        assert_eq!(a.elastic, b.elastic);
    }

    #[test]
    fn elastic_runs_emit_shard_spans_and_membership_trace() {
        let mut cfg = base(SchedulerKind::Fifo);
        cfg.ps_shards = 2;
        cfg.typed_trace = true;
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::ShardFail {
            shard: 0,
            at_iter: 2,
        }]);
        let r = run_cluster(&cfg, 4);
        assert!(!r.shard_spans.is_empty());
        // After the failure every span must sit on the surviving shard.
        let fail_iter_spans: Vec<_> = r.shard_spans.iter().filter(|s| s.iter >= 2).collect();
        assert!(!fail_iter_spans.is_empty());
        assert!(
            fail_iter_spans.iter().all(|s| s.shard == 1),
            "spans on the dead shard after its failure"
        );
    }
}
