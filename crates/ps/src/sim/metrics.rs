//! What a cluster run reports — the raw material of every figure.

use prophet_sim::{Duration, GradSpan, ShardSpan, SimTime, TraceRecorder};

/// Per-gradient transfer timing for one worker/iteration (Fig. 11's rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradTransferLog {
    /// Gradient id.
    pub grad: usize,
    /// When the aggregation layer released it (absolute sim time).
    pub ready: SimTime,
    /// When its first byte was scheduled onto the wire.
    pub push_start: SimTime,
    /// When its push fully arrived at the PS.
    pub push_end: SimTime,
    /// When this worker began pulling the updated parameters.
    pub pull_start: SimTime,
    /// When the updated parameters finished arriving back (pull end).
    pub pull_end: SimTime,
}

impl GradTransferLog {
    /// Wait between release and first transmission — the paper's
    /// per-gradient "wait time" metric (§5.2: Prophet 26 ms avg vs 67 ms).
    pub fn wait(&self) -> Duration {
        self.push_start.saturating_since(self.ready)
    }

    /// Push wire time — the paper's "transmission time" metric.
    pub fn transfer(&self) -> Duration {
        self.push_end.saturating_since(self.push_start)
    }
}

/// Counters the fault-injection layer accumulates during a run. All zero
/// when the [`crate::sim::ClusterConfig::fault_plan`] is empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// `RetryAttempt` trace events emitted (one per retried gradient
    /// episode step, coalesced across the slices of one message).
    pub retries: u64,
    /// In-flight flows killed by link failures, shard crashes, or ack
    /// timeouts.
    pub flows_killed: u64,
    /// Messages that completed on the wire but were discarded undelivered
    /// (the `MsgLoss` doomed-tag model).
    pub messages_lost: u64,
    /// Payload bytes re-queued for re-transmission (retries + replays).
    pub retried_bytes: u64,
    /// Bytes that crossed the wire but were thrown away: partial bytes of
    /// killed flows plus full payloads of lost messages.
    pub wasted_bytes: f64,
    /// Replay messages synthesised after a shard crash to re-push
    /// aggregation state the crash wiped.
    pub replays: u64,
    /// `Recovered` trace events emitted (retried gradients that eventually
    /// delivered).
    pub recoveries: u64,
    /// Total bytes transmitted across all nodes, including waste — compare
    /// with a fault-free run to see the retransmission overhead.
    pub wire_bytes: f64,
    /// Frames delivered corrupted and rejected by the receiver's CRC
    /// verify (`PayloadCorrupt`); each one also shows up as a retry and as
    /// wasted bytes.
    pub frames_corrupted: u64,
}

/// Counters the elastic-membership layer accumulates during a run. All
/// zero when the fault plan has no permanent events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ElasticStats {
    /// Membership epochs opened (evictions + shard failures + joins).
    pub epochs: u64,
    /// Workers permanently evicted.
    pub evicted_workers: u64,
    /// Workers admitted mid-run.
    pub joined_workers: u64,
    /// PS shards permanently failed (state re-homed to survivors).
    pub failed_shards: u64,
    /// Checkpoint snapshots taken across all shards.
    pub checkpoints: u64,
    /// Bytes read back from checkpoint + ledger to restore failed shards.
    pub restore_bytes: u64,
    /// Simulated time from each shard failure to its state being served
    /// again by the adopting shards, summed over failures.
    pub recovery_ns: u64,
    /// Scheduler re-plans forced by membership epochs (one per live
    /// worker per epoch).
    pub replans: u64,
    /// Bytes spent bootstrapping joiners (full model pull on admission).
    pub bootstrap_bytes: u64,
    /// Work thrown away at shard failures: partial delivered bytes of
    /// in-flight transfers killed when their shard died for good.
    pub lost_work_bytes: u64,
    /// Checkpoint snapshots written corrupted (`CheckpointCorrupt`).
    pub corrupt_snapshots: u64,
    /// Restores that had to fall back past a corrupted newest snapshot to
    /// an older intact generation.
    pub restore_fallbacks: u64,
    /// Total generations skipped across all fallback restores (a depth-2
    /// fallback read two corrupted snapshots before the intact one).
    pub fallback_depth: u64,
}

/// The outcome of [`crate::sim::run_cluster`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Strategy label (from [`prophet_core::SchedulerKind::label`]).
    pub scheduler: String,
    /// Iterations completed by every worker.
    pub iterations: u64,
    /// Wall-clock (simulated) duration of the whole run.
    pub duration: SimTime,
    /// Steady-state training rate in **samples/sec per worker**, measured
    /// after the configured warm-up (the paper reports per-worker rates).
    pub rate: f64,
    /// Training rate including warm-up/profiling (Fig. 13's early phase).
    pub rate_with_warmup: f64,
    /// Worker-0 iteration durations, in order.
    pub iter_times: Vec<Duration>,
    /// Worker-0 GPU utilisation per sample window `(window_start, 0..1)`.
    pub gpu_util: Vec<(SimTime, f64)>,
    /// Time-weighted average GPU utilisation across the post-warmup run.
    pub avg_gpu_util: f64,
    /// Worker-0 uplink+downlink throughput per window, bytes/sec.
    pub net_throughput: Vec<(SimTime, f64)>,
    /// Average of `net_throughput` over the post-warmup run.
    pub avg_net_throughput: f64,
    /// Worker-0 per-gradient transfer logs, one vec per iteration.
    pub transfer_logs: Vec<Vec<GradTransferLog>>,
    /// Absolute start time of each worker-0 iteration (§5.2's
    /// forward-propagation start-time analysis).
    pub iter_starts: Vec<SimTime>,
    /// Span trace, when the config asked for one.
    pub trace: TraceRecorder,
    /// ByteScheduler credit trace `(iteration, credit_bytes)` when the
    /// strategy auto-tunes (Fig. 3(b)).
    pub credit_trace: Vec<(u64, u64)>,
    /// Worker-0 bandwidth-monitor estimates `(time, bytes/sec)`, one per
    /// monitor tick (what Prophet's planner consumed).
    pub bandwidth_estimates: Vec<(SimTime, f64)>,
    /// Worker-0 scheduler degraded-mode flips `(when, entered)`, sampled at
    /// each monitor tick plus once at end of run. Empty for strategies with
    /// no degraded mode; for Prophet the chaos oracle asserts the log ends
    /// `false` (no stuck-degraded) once faults have cleared.
    pub degraded_transitions: Vec<(SimTime, bool)>,
    /// Typed per-`(worker, gradient, iteration)` spans from the event-stream
    /// collector, when [`crate::sim::ClusterConfig::typed_trace`] asked for
    /// them (the `repro trace` exporter's data). Empty otherwise.
    pub grad_spans: Vec<GradSpan>,
    /// Fault-injection counters; all zero for a fault-free run.
    pub fault_stats: FaultStats,
    /// Per-shard PS queueing spans (first push arrival → barrier), when
    /// [`crate::sim::ClusterConfig::typed_trace`] asked for them.
    pub shard_spans: Vec<ShardSpan>,
    /// Elastic-membership counters; all zero when the plan has no
    /// permanent events.
    pub elastic: ElasticStats,
}

impl RunResult {
    /// Mean per-gradient wait over the logs of iteration `iter`.
    pub fn mean_wait_ms(&self, iter: usize) -> f64 {
        let logs = &self.transfer_logs[iter];
        if logs.is_empty() {
            return 0.0;
        }
        logs.iter().map(|l| l.wait().as_millis_f64()).sum::<f64>() / logs.len() as f64
    }

    /// Mean push wire time over the logs of iteration `iter`.
    pub fn mean_transfer_ms(&self, iter: usize) -> f64 {
        let logs = &self.transfer_logs[iter];
        if logs.is_empty() {
            return 0.0;
        }
        logs.iter()
            .map(|l| l.transfer().as_millis_f64())
            .sum::<f64>()
            / logs.len() as f64
    }

    /// Iterations completed within `span` of the start of iteration
    /// `from` (§5.2: "in the first 15 seconds Prophet completes 60–74").
    pub fn iterations_within(&self, from: usize, span: Duration) -> usize {
        let t0 = self.iter_starts[from];
        self.iter_starts[from..]
            .iter()
            .take_while(|&&t| t.saturating_since(t0) <= span)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn log_derives_wait_and_transfer() {
        let log = GradTransferLog {
            grad: 30,
            ready: at(10),
            push_start: at(13),
            push_end: at(36),
            pull_start: at(40),
            pull_end: at(60),
        };
        assert_eq!(log.wait(), Duration::from_millis(3));
        assert_eq!(log.transfer(), Duration::from_millis(23));
    }

    fn result_with(iter_starts: Vec<SimTime>) -> RunResult {
        RunResult {
            scheduler: "test".into(),
            iterations: iter_starts.len() as u64,
            duration: *iter_starts.last().unwrap(),
            rate: 0.0,
            rate_with_warmup: 0.0,
            iter_times: vec![],
            gpu_util: vec![],
            avg_gpu_util: 0.0,
            net_throughput: vec![],
            avg_net_throughput: 0.0,
            transfer_logs: vec![vec![]],
            iter_starts,
            trace: TraceRecorder::disabled(),
            credit_trace: vec![],
            bandwidth_estimates: vec![],
            degraded_transitions: vec![],
            grad_spans: vec![],
            fault_stats: FaultStats::default(),
            shard_spans: vec![],
            elastic: ElasticStats::default(),
        }
    }

    #[test]
    fn iterations_within_counts_window() {
        let r = result_with(vec![at(0), at(900), at(1800), at(16_000)]);
        assert_eq!(r.iterations_within(0, Duration::from_secs(15)), 3);
        assert_eq!(r.iterations_within(0, Duration::from_secs(20)), 4);
        assert_eq!(r.iterations_within(2, Duration::from_secs(1)), 1);
    }

    #[test]
    fn empty_logs_mean_zero() {
        let r = result_with(vec![at(0)]);
        assert_eq!(r.mean_wait_ms(0), 0.0);
        assert_eq!(r.mean_transfer_ms(0), 0.0);
    }
}
