//! The discrete-event cluster simulation.
//!
//! [`ClusterConfig`] describes the testbed the paper uses (§5.1): 1 PS +
//! `workers` g3.8xlarge-class nodes, per-node NIC limits, a training job,
//! and a communication scheduling strategy. [`run_cluster`] plays `iters`
//! BSP iterations and returns [`RunResult`]: training rate, GPU-utilisation
//! and network-throughput time series, per-gradient transfer logs, and an
//! optional span trace — everything the paper's figures are drawn from.

mod cluster;
mod config;
mod metrics;

pub use cluster::run_cluster;
pub use config::{ClusterConfig, SyncMode};
pub use metrics::{ElasticStats, FaultStats, GradTransferLog, RunResult};
