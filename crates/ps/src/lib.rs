#![warn(missing_docs)]

//! # prophet-ps — the parameter-server architecture
//!
//! The substrate the paper's system runs inside: data-parallel BSP training
//! over a PS, with push (gradients) and pull (updated parameters) flowing
//! through a per-worker communication scheduler. Two runtimes drive the
//! *same* `prophet_core::CommScheduler` objects:
//!
//! * [`sim`] — the discrete-event cluster: architecture-accurate workloads
//!   from `prophet-dnn` on the fluid network of `prophet-net`. Regenerates
//!   every timing figure/table of the paper. Deterministic per seed.
//! * [`threaded`] — a real multi-threaded PS: worker threads training
//!   `prophet-minidnn` models, crossbeam channels as the wire, a token-
//!   bucket emulating link bandwidth, and the PS thread running SGD. Proves
//!   the schedulers order real bytes without changing what is computed.
//!
//! Both enforce the same BSP contract: the parameter server aggregates a
//! gradient once every worker's push for the iteration has arrived, and a
//! worker's forward pass consumes parameters strictly in priority order.

pub mod chaos;
pub mod sim;
pub mod threaded;

pub use chaos::{
    check_churn_plan, check_corruption_plan, check_plan, check_threaded_bit_identity,
    run_sim_checked, OracleBudget, PlanVerdict,
};
pub use sim::{run_cluster, ClusterConfig, ElasticStats, GradTransferLog, RunResult, SyncMode};
pub use threaded::{run_threaded_training, PsOptimizer, ThreadedConfig, ThreadedResult};
