#![warn(missing_docs)]

//! # prophet — predictable communication scheduling for distributed DNN training
//!
//! A from-scratch Rust reproduction of *"Prophet: Speeding up Distributed
//! DNN Training with Predictable Communication Scheduling"* (Zhang, Qi,
//! Shang, Chen, Xu — ICPP 2021), including every substrate the paper's
//! system depends on:
//!
//! * [`sim`] — deterministic discrete-event simulation primitives,
//! * [`net`] — a flow-level network with max-min fair sharing, per-message
//!   TCP costs, serialising per-connection lanes, and bandwidth monitoring,
//! * [`dnn`] — architecture-accurate workload models (ResNet18/50/152,
//!   Inception-v3, VGG19, AlexNet) with a calibrated GPU timing model and
//!   the KVStore-style aggregation that produces the paper's stepwise
//!   gradient-release pattern,
//! * [`minidnn`] — a real (numeric) mini training framework used to prove
//!   the schedulers on actual gradient bytes,
//! * [`ps`] — the parameter-server architecture, as both a simulated BSP
//!   cluster and a real multi-threaded runtime,
//! * [`core`] — the scheduling strategies themselves: Prophet (Algorithm 1,
//!   the stepwise profiler, the dynamic credit) and the baselines the paper
//!   compares against (MXNet FIFO, P3, ByteScheduler).
//!
//! ## Quickstart
//!
//! ```
//! use prophet::core::{ProphetConfig, SchedulerKind};
//! use prophet::dnn::TrainingJob;
//! use prophet::ps::sim::{run_cluster, ClusterConfig};
//!
//! // 1 PS + 3 workers at 10 Gb/s training ResNet-18, scheduled by Prophet.
//! let job = TrainingJob::paper_setup("resnet18", 32);
//! let kind = SchedulerKind::ProphetOracle(ProphetConfig::paper_default(1.25e9));
//! let cfg = ClusterConfig::paper_cell(3, 10.0, job, kind);
//! let result = run_cluster(&cfg, 5);
//! assert!(result.rate > 0.0);
//! println!("{:.1} samples/sec/worker", result.rate);
//! ```

pub use prophet_core as core;
pub use prophet_dnn as dnn;
pub use prophet_minidnn as minidnn;
pub use prophet_net as net;
pub use prophet_ps as ps;
pub use prophet_sim as sim;
