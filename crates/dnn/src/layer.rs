//! Layers, parameter tensors, and gradient identity.
//!
//! A *layer* is a unit of compute (one convolution, one batch-norm, one
//! fully-connected transform). A layer owns zero or more *parameter
//! tensors* (weights, biases, BN scale/shift); each parameter tensor is one
//! *gradient* in the communication sense — MXNet's KVStore keys gradients
//! per parameter tensor, which is why the paper's Fig. 4 for VGG19 shows
//! exactly 38 gradients (16 conv + 3 FC layers, weight + bias each).
//!
//! [`GradientId`] doubles as the **priority index**: gradient 0 belongs to
//! the layer closest to the input, i.e. the tensor the *next iteration's
//! forward pass needs first*. Backward propagation produces gradients in
//! roughly descending id order; forward consumes them in ascending order.

/// Index of a gradient/parameter tensor. Also its transfer priority:
/// smaller = needed earlier by forward propagation = higher priority.
pub type GradientId = usize;

/// What kind of compute a layer performs — drives its FLOP accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Batch normalisation.
    BatchNorm,
    /// Fully connected (dense) layer.
    FullyConnected,
    /// Parameter-free compute that still takes time (pooling, activation,
    /// elementwise residual add).
    Activation,
}

/// One unit of compute in the model, in forward-execution order.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Human-readable name, e.g. `"stage3.block2.conv1"`.
    pub name: String,
    /// What the layer computes.
    pub kind: LayerKind,
    /// Forward FLOPs for a *single* sample.
    pub fwd_flops: f64,
    /// Parameter tensors this layer owns, in declaration order
    /// (weight before bias/scale before shift).
    pub params: Vec<TensorShape>,
}

/// Shape of one parameter tensor, reduced to its element count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorShape {
    /// Number of scalar parameters.
    pub elements: u64,
}

impl TensorShape {
    /// A tensor of `elements` FP32 scalars.
    pub fn new(elements: u64) -> Self {
        TensorShape { elements }
    }

    /// Wire size in bytes (FP32).
    pub fn bytes(&self) -> u64 {
        self.elements * 4
    }
}

/// A materialised gradient/parameter tensor: what the communication layer
/// schedules. Produced by flattening a model's layers; see
/// [`crate::ModelArch::tensors`].
#[derive(Debug, Clone)]
pub struct TensorSpec {
    /// Priority index (0 = needed first by forward propagation).
    pub id: GradientId,
    /// Index of the owning layer in the model's forward order.
    pub layer: usize,
    /// Qualified name, e.g. `"conv1.weight"`.
    pub name: String,
    /// Number of scalar parameters.
    pub elements: u64,
    /// Wire size in bytes (FP32 payload).
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_shape_bytes_is_fp32() {
        assert_eq!(TensorShape::new(1000).bytes(), 4000);
    }

    #[test]
    fn layer_spec_holds_params_in_order() {
        let l = LayerSpec {
            name: "fc".into(),
            kind: LayerKind::FullyConnected,
            fwd_flops: 2.0 * 512.0 * 1000.0,
            params: vec![TensorShape::new(512 * 1000), TensorShape::new(1000)],
        };
        assert_eq!(l.params.len(), 2);
        assert!(l.params[0].elements > l.params[1].elements);
    }
}
