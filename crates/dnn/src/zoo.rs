//! The model zoo: the architectures the paper evaluates, built layer by
//! layer so parameter counts, tensor counts, and FLOPs match the published
//! models.
//!
//! Accuracy anchors (unit-tested below, MACs = our `fwd_flops / 2`):
//!
//! | model        | params     | MACs/sample | tensors |
//! |--------------|-----------:|------------:|--------:|
//! | ResNet18     |  11.69 M   |   1.82 G    |  62     |
//! | ResNet50     |  25.56 M   |   4.1  G    | 161     |
//! | ResNet152    |  60.19 M   |  11.5  G    | 467     |
//! | Inception-v3 |  23.8  M   |   5.7  G    | ~290    |
//! | VGG19        | 143.67 M   |  19.6  G    |  38     |
//! | AlexNet      |  61.1  M   |   0.71 G    |  16     |
//!
//! VGG19's 38 tensors are the strongest structural check: the paper's
//! Fig. 4 observes gradients 0–37 grouped into four blocks for exactly this
//! model.

use crate::arch::build::*;
use crate::arch::ModelArch;
use crate::layer::{LayerKind, LayerSpec, TensorShape};

/// A conv with a non-square kernel (Inception's 1×7 / 7×1 factorisation).
fn conv_hw(name: &str, kh: u64, kw: u64, cin: u64, cout: u64, h: u64, w: u64) -> LayerSpec {
    let params = kh * kw * cin * cout;
    LayerSpec {
        name: name.into(),
        kind: LayerKind::Conv,
        fwd_flops: (2 * params * h * w) as f64,
        params: vec![TensorShape::new(params)],
    }
}

/// Conv (no bias) + BN pair — the standard modern arrangement.
fn cb(layers: &mut Vec<LayerSpec>, name: &str, k: u64, cin: u64, cout: u64, h: u64, w: u64) {
    layers.push(conv(&format!("{name}.conv"), k, cin, cout, h, w));
    layers.push(batchnorm(&format!("{name}.bn"), cout, h, w));
}

#[allow(clippy::too_many_arguments)] // mirrors the conv dimensions 1:1
fn cb_hw(
    layers: &mut Vec<LayerSpec>,
    name: &str,
    kh: u64,
    kw: u64,
    cin: u64,
    cout: u64,
    h: u64,
    w: u64,
) {
    layers.push(conv_hw(&format!("{name}.conv"), kh, kw, cin, cout, h, w));
    layers.push(batchnorm(&format!("{name}.bn"), cout, h, w));
}

/// ResNet-18 (basic blocks, [2, 2, 2, 2]).
pub fn resnet18() -> ModelArch {
    resnet_basic("resnet18", &[2, 2, 2, 2])
}

/// ResNet-34 (basic blocks, [3, 4, 6, 3]) — not in the paper's evaluation
/// but cheap to provide and useful for scaling studies.
pub fn resnet34() -> ModelArch {
    resnet_basic("resnet34", &[3, 4, 6, 3])
}

/// ResNet-50 (bottleneck blocks, [3, 4, 6, 3]).
pub fn resnet50() -> ModelArch {
    resnet_bottleneck("resnet50", &[3, 4, 6, 3])
}

/// ResNet-101 (bottleneck blocks, [3, 4, 23, 3]).
pub fn resnet101() -> ModelArch {
    resnet_bottleneck("resnet101", &[3, 4, 23, 3])
}

/// ResNet-152 (bottleneck blocks, [3, 8, 36, 3]).
pub fn resnet152() -> ModelArch {
    resnet_bottleneck("resnet152", &[3, 8, 36, 3])
}

fn resnet_stem(layers: &mut Vec<LayerSpec>) {
    // 224×224 input; 7×7/2 conv to 112×112, then 3×3/2 maxpool to 56×56.
    cb(layers, "conv1", 7, 3, 64, 112, 112);
    layers.push(activation("maxpool", 64 * 56 * 56, 2.0));
}

fn resnet_basic(name: &str, blocks: &[usize; 4]) -> ModelArch {
    let widths = [64u64, 128, 256, 512];
    let spatial = [56u64, 28, 14, 7];
    let mut layers = Vec::new();
    resnet_stem(&mut layers);
    let mut cin = 64u64;
    for (s, (&n, (&w, &sp))) in blocks
        .iter()
        .zip(widths.iter().zip(spatial.iter()))
        .enumerate()
    {
        for b in 0..n {
            let prefix = format!("stage{}.block{}", s + 1, b);
            let first = b == 0;
            // First block of stages 2-4 downsamples; stage 1 keeps 56×56.
            let needs_proj = first && (cin != w);
            cb(&mut layers, &format!("{prefix}.conv1"), 3, cin, w, sp, sp);
            cb(&mut layers, &format!("{prefix}.conv2"), 3, w, w, sp, sp);
            if needs_proj {
                cb(&mut layers, &format!("{prefix}.down"), 1, cin, w, sp, sp);
            }
            layers.push(activation(&format!("{prefix}.add_relu"), w * sp * sp, 2.0));
            cin = w;
        }
    }
    layers.push(activation("avgpool", 512 * 7 * 7, 1.0));
    layers.push(fc("fc", 512, 1000));
    ModelArch::new(name, layers)
}

fn resnet_bottleneck(name: &str, blocks: &[usize; 4]) -> ModelArch {
    let widths = [64u64, 128, 256, 512];
    let spatial = [56u64, 28, 14, 7];
    let mut layers = Vec::new();
    resnet_stem(&mut layers);
    let mut cin = 64u64;
    for (s, (&n, (&w, &sp))) in blocks
        .iter()
        .zip(widths.iter().zip(spatial.iter()))
        .enumerate()
    {
        let cout = 4 * w;
        for b in 0..n {
            let prefix = format!("stage{}.block{}", s + 1, b);
            let first = b == 0;
            // In-block spatial: the stride-2 happens on conv2 of the first
            // block of stages 2-4 (torchvision v1.5 arrangement); conv1 of
            // that block still runs at the previous stage's resolution.
            let sp_in = if first && s > 0 { sp * 2 } else { sp };
            cb(
                &mut layers,
                &format!("{prefix}.conv1"),
                1,
                cin,
                w,
                sp_in,
                sp_in,
            );
            cb(&mut layers, &format!("{prefix}.conv2"), 3, w, w, sp, sp);
            cb(&mut layers, &format!("{prefix}.conv3"), 1, w, cout, sp, sp);
            if first {
                cb(&mut layers, &format!("{prefix}.down"), 1, cin, cout, sp, sp);
            }
            layers.push(activation(
                &format!("{prefix}.add_relu"),
                cout * sp * sp,
                2.0,
            ));
            cin = cout;
        }
    }
    layers.push(activation("avgpool", 2048 * 7 * 7, 1.0));
    layers.push(fc("fc", 2048, 1000));
    ModelArch::new(name, layers)
}

/// VGG-19: 16 biased 3×3 convs + 3 FC layers = 38 parameter tensors,
/// exactly the gradient count the paper observes for this model.
pub fn vgg19() -> ModelArch {
    let cfg: &[(u64, u64, u64)] = &[
        // (cin, cout, spatial)
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    let mut layers = Vec::new();
    for (i, &(cin, cout, sp)) in cfg.iter().enumerate() {
        layers.push(conv_bias(&format!("conv{}", i + 1), 3, cin, cout, sp, sp));
        layers.push(activation(&format!("relu{}", i + 1), cout * sp * sp, 1.0));
    }
    layers.push(activation("flatten", 512 * 7 * 7, 1.0));
    layers.push(fc("fc1", 512 * 7 * 7, 4096));
    layers.push(fc("fc2", 4096, 4096));
    layers.push(fc("fc3", 4096, 1000));
    ModelArch::new("vgg19", layers)
}

/// AlexNet (the one-tower variant): 5 biased convs + 3 FC layers.
pub fn alexnet() -> ModelArch {
    let layers = vec![
        conv_bias("conv1", 11, 3, 64, 55, 55),
        activation("pool1", 64 * 27 * 27, 2.0),
        conv_bias("conv2", 5, 64, 192, 27, 27),
        activation("pool2", 192 * 13 * 13, 2.0),
        conv_bias("conv3", 3, 192, 384, 13, 13),
        conv_bias("conv4", 3, 384, 256, 13, 13),
        conv_bias("conv5", 3, 256, 256, 13, 13),
        activation("pool5", 256 * 6 * 6, 2.0),
        fc("fc1", 256 * 6 * 6, 4096),
        fc("fc2", 4096, 4096),
        fc("fc3", 4096, 1000),
    ];
    ModelArch::new("alexnet", layers)
}

/// Inception-v3 (without the auxiliary classifier), 299×299 input.
pub fn inception_v3() -> ModelArch {
    let mut l = Vec::new();
    // Stem.
    cb(&mut l, "stem1", 3, 3, 32, 149, 149);
    cb(&mut l, "stem2", 3, 32, 32, 147, 147);
    cb(&mut l, "stem3", 3, 32, 64, 147, 147);
    l.push(activation("stem.pool1", 64 * 73 * 73, 2.0));
    cb(&mut l, "stem4", 1, 64, 80, 73, 73);
    cb(&mut l, "stem5", 3, 80, 192, 71, 71);
    l.push(activation("stem.pool2", 192 * 35 * 35, 2.0));

    // 3× Inception-A at 35×35. Pool-branch width: 32, 64, 64.
    let a_inputs = [192u64, 256, 288];
    let a_pool = [32u64, 64, 64];
    for (i, (&cin, &pw)) in a_inputs.iter().zip(a_pool.iter()).enumerate() {
        let p = format!("mixedA{i}");
        cb(&mut l, &format!("{p}.b1x1"), 1, cin, 64, 35, 35);
        cb(&mut l, &format!("{p}.b5x5_1"), 1, cin, 48, 35, 35);
        cb(&mut l, &format!("{p}.b5x5_2"), 5, 48, 64, 35, 35);
        cb(&mut l, &format!("{p}.b3x3_1"), 1, cin, 64, 35, 35);
        cb(&mut l, &format!("{p}.b3x3_2"), 3, 64, 96, 35, 35);
        cb(&mut l, &format!("{p}.b3x3_3"), 3, 96, 96, 35, 35);
        cb(&mut l, &format!("{p}.bpool"), 1, cin, pw, 35, 35);
    }

    // Reduction-A: 35 → 17, 288 → 768.
    cb(&mut l, "redA.b3x3", 3, 288, 384, 17, 17);
    cb(&mut l, "redA.b3x3dbl_1", 1, 288, 64, 35, 35);
    cb(&mut l, "redA.b3x3dbl_2", 3, 64, 96, 35, 35);
    cb(&mut l, "redA.b3x3dbl_3", 3, 96, 96, 17, 17);
    l.push(activation("redA.pool", 288 * 17 * 17, 2.0));

    // 4× Inception-B at 17×17 with factorised 7×7; c7 = 128, 160, 160, 192.
    let c7s = [128u64, 160, 160, 192];
    for (i, &c7) in c7s.iter().enumerate() {
        let p = format!("mixedB{i}");
        let cin = 768u64;
        cb(&mut l, &format!("{p}.b1x1"), 1, cin, 192, 17, 17);
        cb(&mut l, &format!("{p}.b7_1"), 1, cin, c7, 17, 17);
        cb_hw(&mut l, &format!("{p}.b7_2"), 1, 7, c7, c7, 17, 17);
        cb_hw(&mut l, &format!("{p}.b7_3"), 7, 1, c7, 192, 17, 17);
        cb(&mut l, &format!("{p}.b7dbl_1"), 1, cin, c7, 17, 17);
        cb_hw(&mut l, &format!("{p}.b7dbl_2"), 7, 1, c7, c7, 17, 17);
        cb_hw(&mut l, &format!("{p}.b7dbl_3"), 1, 7, c7, c7, 17, 17);
        cb_hw(&mut l, &format!("{p}.b7dbl_4"), 7, 1, c7, c7, 17, 17);
        cb_hw(&mut l, &format!("{p}.b7dbl_5"), 1, 7, c7, 192, 17, 17);
        cb(&mut l, &format!("{p}.bpool"), 1, cin, 192, 17, 17);
    }

    // Reduction-B: 17 → 8, 768 → 1280.
    cb(&mut l, "redB.b3x3_1", 1, 768, 192, 17, 17);
    cb(&mut l, "redB.b3x3_2", 3, 192, 320, 8, 8);
    cb(&mut l, "redB.b7x7_1", 1, 768, 192, 17, 17);
    cb_hw(&mut l, "redB.b7x7_2", 1, 7, 192, 192, 17, 17);
    cb_hw(&mut l, "redB.b7x7_3", 7, 1, 192, 192, 17, 17);
    cb(&mut l, "redB.b7x7_4", 3, 192, 192, 8, 8);
    l.push(activation("redB.pool", 768 * 8 * 8, 2.0));

    // 2× Inception-C at 8×8. Inputs 1280 then 2048.
    for (i, &cin) in [1280u64, 2048].iter().enumerate() {
        let p = format!("mixedC{i}");
        cb(&mut l, &format!("{p}.b1x1"), 1, cin, 320, 8, 8);
        cb(&mut l, &format!("{p}.b3_1"), 1, cin, 384, 8, 8);
        cb_hw(&mut l, &format!("{p}.b3_2a"), 1, 3, 384, 384, 8, 8);
        cb_hw(&mut l, &format!("{p}.b3_2b"), 3, 1, 384, 384, 8, 8);
        cb(&mut l, &format!("{p}.b3dbl_1"), 1, cin, 448, 8, 8);
        cb(&mut l, &format!("{p}.b3dbl_2"), 3, 448, 384, 8, 8);
        cb_hw(&mut l, &format!("{p}.b3dbl_3a"), 1, 3, 384, 384, 8, 8);
        cb_hw(&mut l, &format!("{p}.b3dbl_3b"), 3, 1, 384, 384, 8, 8);
        cb(&mut l, &format!("{p}.bpool"), 1, cin, 192, 8, 8);
    }

    l.push(activation("avgpool", 2048, 1.0));
    l.push(fc("fc", 2048, 1000));
    ModelArch::new("inception_v3", l)
}

/// Look a model up by its evaluation-section name.
pub fn by_name(name: &str) -> Option<ModelArch> {
    match name {
        "resnet18" => Some(resnet18()),
        "resnet34" => Some(resnet34()),
        "resnet50" => Some(resnet50()),
        "resnet101" => Some(resnet101()),
        "resnet152" => Some(resnet152()),
        "inception_v3" => Some(inception_v3()),
        "vgg19" => Some(vgg19()),
        "alexnet" => Some(alexnet()),
        _ => None,
    }
}

/// Every model in the zoo, in a stable order.
pub fn all_models() -> Vec<ModelArch> {
    [
        "resnet18",
        "resnet34",
        "resnet50",
        "resnet101",
        "resnet152",
        "inception_v3",
        "vgg19",
        "alexnet",
    ]
    .iter()
    .map(|n| by_name(n).unwrap())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expect: f64, tol: f64, what: &str) {
        let rel = (actual - expect).abs() / expect;
        assert!(
            rel <= tol,
            "{what}: got {actual:.4e}, expected {expect:.4e} (off by {:.1}%)",
            rel * 100.0
        );
    }

    #[test]
    fn resnet18_matches_published() {
        let m = resnet18();
        assert_close(m.total_params() as f64, 11.69e6, 0.03, "resnet18 params");
        assert_close(
            m.fwd_flops_per_sample() / 2.0,
            1.82e9,
            0.10,
            "resnet18 MACs",
        );
    }

    #[test]
    fn resnet34_matches_published() {
        let m = resnet34();
        assert_close(m.total_params() as f64, 21.8e6, 0.03, "resnet34 params");
    }

    #[test]
    fn resnet50_matches_published() {
        let m = resnet50();
        assert_close(m.total_params() as f64, 25.56e6, 0.03, "resnet50 params");
        assert_close(m.fwd_flops_per_sample() / 2.0, 4.1e9, 0.10, "resnet50 MACs");
        // 53 convs + 53 BNs (2 tensors) + fc (2 tensors) = 161.
        assert_eq!(m.num_gradients(), 161);
    }

    #[test]
    fn resnet101_matches_published() {
        let m = resnet101();
        assert_close(m.total_params() as f64, 44.55e6, 0.03, "resnet101 params");
    }

    #[test]
    fn resnet152_matches_published() {
        let m = resnet152();
        assert_close(m.total_params() as f64, 60.19e6, 0.03, "resnet152 params");
        assert_close(
            m.fwd_flops_per_sample() / 2.0,
            11.5e9,
            0.10,
            "resnet152 MACs",
        );
    }

    #[test]
    fn vgg19_matches_published_and_has_38_tensors() {
        let m = vgg19();
        assert_close(m.total_params() as f64, 143.67e6, 0.02, "vgg19 params");
        assert_close(m.fwd_flops_per_sample() / 2.0, 19.6e9, 0.10, "vgg19 MACs");
        // The Fig. 4 anchor: gradients 0..=37.
        assert_eq!(m.num_gradients(), 38);
    }

    #[test]
    fn inception_v3_matches_published() {
        let m = inception_v3();
        assert_close(m.total_params() as f64, 23.8e6, 0.06, "inception_v3 params");
        assert_close(
            m.fwd_flops_per_sample() / 2.0,
            5.7e9,
            0.15,
            "inception_v3 MACs",
        );
    }

    #[test]
    fn alexnet_matches_published() {
        let m = alexnet();
        assert_close(m.total_params() as f64, 61.1e6, 0.03, "alexnet params");
        assert_close(m.fwd_flops_per_sample() / 2.0, 0.71e9, 0.15, "alexnet MACs");
    }

    #[test]
    fn by_name_roundtrip() {
        for m in all_models() {
            let again = by_name(&m.name).unwrap();
            assert_eq!(again.total_params(), m.total_params());
            assert_eq!(again.num_gradients(), m.num_gradients());
        }
        assert!(by_name("resnet9000").is_none());
    }

    #[test]
    fn deeper_resnets_are_strictly_bigger() {
        let p18 = resnet18().total_params();
        let p34 = resnet34().total_params();
        let p50 = resnet50().total_params();
        let p101 = resnet101().total_params();
        let p152 = resnet152().total_params();
        assert!(p18 < p34 && p34 < p50 && p50 < p101 && p101 < p152);
    }

    #[test]
    fn tensor_table_consistent_with_layers() {
        for m in all_models() {
            let from_layers: u64 = m
                .layers()
                .iter()
                .flat_map(|l| l.params.iter())
                .map(|p| p.elements)
                .sum();
            assert_eq!(from_layers, m.total_params(), "{}", m.name);
            // Layer indices are non-decreasing across the tensor table.
            let mut last = 0;
            for t in m.tensors() {
                assert!(t.layer >= last, "{}: tensor table out of order", m.name);
                last = t.layer;
            }
        }
    }
}
