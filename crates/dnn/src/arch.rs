//! A whole model: ordered layers plus the flattened tensor/gradient table.

use crate::layer::{GradientId, LayerKind, LayerSpec, TensorShape, TensorSpec};

/// An architecture: layers in forward-execution order, with the flattened
/// parameter-tensor table used by the communication schedulers.
#[derive(Debug, Clone)]
pub struct ModelArch {
    /// Model name, e.g. `"resnet50"`.
    pub name: String,
    layers: Vec<LayerSpec>,
    tensors: Vec<TensorSpec>,
}

impl ModelArch {
    /// Build from layers in forward order, deriving the tensor table.
    ///
    /// Tensor ids are assigned in forward order (layer 0's weight gets id 0),
    /// making the id simultaneously the transfer priority — the convention
    /// used throughout the paper.
    pub fn new(name: impl Into<String>, layers: Vec<LayerSpec>) -> Self {
        let mut tensors = Vec::new();
        for (li, layer) in layers.iter().enumerate() {
            for (pi, shape) in layer.params.iter().enumerate() {
                let suffix = match (layer.kind, pi) {
                    (LayerKind::BatchNorm, 0) => "gamma",
                    (LayerKind::BatchNorm, 1) => "beta",
                    (_, 0) => "weight",
                    (_, 1) => "bias",
                    _ => "param",
                };
                tensors.push(TensorSpec {
                    id: tensors.len(),
                    layer: li,
                    name: format!("{}.{}", layer.name, suffix),
                    elements: shape.elements,
                    bytes: shape.bytes(),
                });
            }
        }
        ModelArch {
            name: name.into(),
            layers,
            tensors,
        }
    }

    /// Layers in forward-execution order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Parameter tensors in priority order (id order).
    pub fn tensors(&self) -> &[TensorSpec] {
        &self.tensors
    }

    /// Number of gradients the communication layer will schedule.
    pub fn num_gradients(&self) -> usize {
        self.tensors.len()
    }

    /// One tensor by id.
    pub fn tensor(&self, id: GradientId) -> &TensorSpec {
        &self.tensors[id]
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.tensors.iter().map(|t| t.elements).sum()
    }

    /// Total gradient payload per iteration, bytes (FP32).
    pub fn total_bytes(&self) -> u64 {
        self.tensors.iter().map(|t| t.bytes).sum()
    }

    /// Total forward FLOPs for a single sample.
    pub fn fwd_flops_per_sample(&self) -> f64 {
        self.layers.iter().map(|l| l.fwd_flops).sum()
    }

    /// Forward FLOPs attributed to each *tensor* for a single sample.
    ///
    /// The paper's performance model (Eq. 3) treats forward propagation at
    /// per-gradient granularity: gradient `i` has a forward cost
    /// `T_fp^(i)`. We spread each layer's forward FLOPs evenly over its
    /// parameter tensors, and fold parameter-free layers' FLOPs into the
    /// next parameterised layer *after* them in forward order (that compute
    /// is gated on the same parameter arrivals either way).
    pub fn fwd_flops_per_tensor(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.tensors.len()];
        if self.tensors.is_empty() {
            return out;
        }
        // Tensor-range per layer.
        let mut pending_paramfree = 0.0;
        let mut cursor = 0usize; // first tensor of the current layer
        for (li, layer) in self.layers.iter().enumerate() {
            let n = layer.params.len();
            if n == 0 {
                pending_paramfree += layer.fwd_flops;
                continue;
            }
            let share = (layer.fwd_flops + pending_paramfree) / n as f64;
            pending_paramfree = 0.0;
            for t in &mut out[cursor..cursor + n] {
                *t = share;
            }
            cursor += n;
            debug_assert!(self.tensors[cursor - 1].layer == li);
        }
        // Trailing parameter-free compute (global pool, softmax) lands on
        // the last tensor.
        if pending_paramfree > 0.0 {
            *out.last_mut().unwrap() += pending_paramfree;
        }
        out
    }

    /// Backward FLOPs per tensor for a single sample.
    ///
    /// Backward costs ≈ 2× forward for convolution/FC layers (grad wrt
    /// inputs + grad wrt weights), the standard accounting.
    pub fn bwd_flops_per_tensor(&self) -> Vec<f64> {
        self.fwd_flops_per_tensor()
            .into_iter()
            .map(|f| 2.0 * f)
            .collect()
    }
}

/// Convenience builders used by the zoo.
pub mod build {
    use super::*;

    /// A conv layer: `k×k`, `cin→cout` channels, output spatial `h×w`.
    /// Bias-free (the standard arrangement when followed by BN).
    pub fn conv(name: &str, k: u64, cin: u64, cout: u64, h: u64, w: u64) -> LayerSpec {
        let params = k * k * cin * cout;
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv,
            // 2 FLOPs (mul+add) per MAC, one MAC per kernel element per
            // output position.
            fwd_flops: (2 * params * h * w) as f64,
            params: vec![TensorShape::new(params)],
        }
    }

    /// A conv layer with bias (used where the reference nets have one).
    pub fn conv_bias(name: &str, k: u64, cin: u64, cout: u64, h: u64, w: u64) -> LayerSpec {
        let weights = k * k * cin * cout;
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv,
            fwd_flops: (2 * weights * h * w) as f64,
            params: vec![TensorShape::new(weights), TensorShape::new(cout)],
        }
    }

    /// Batch normalisation over `c` channels at spatial `h×w`:
    /// two parameter tensors (gamma, beta).
    pub fn batchnorm(name: &str, c: u64, h: u64, w: u64) -> LayerSpec {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::BatchNorm,
            // ~8 FLOPs per element forward (normalise + scale + shift).
            fwd_flops: (8 * c * h * w) as f64,
            params: vec![TensorShape::new(c), TensorShape::new(c)],
        }
    }

    /// Fully connected `cin→cout` with bias.
    pub fn fc(name: &str, cin: u64, cout: u64) -> LayerSpec {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::FullyConnected,
            fwd_flops: (2 * cin * cout) as f64,
            params: vec![TensorShape::new(cin * cout), TensorShape::new(cout)],
        }
    }

    /// Parameter-free compute (pooling / activation / residual add) over
    /// `elements` output values at `flops_per_element`.
    pub fn activation(name: &str, elements: u64, flops_per_element: f64) -> LayerSpec {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Activation,
            fwd_flops: elements as f64 * flops_per_element,
            params: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    fn toy() -> ModelArch {
        ModelArch::new(
            "toy",
            vec![
                conv("c1", 3, 3, 8, 32, 32),
                batchnorm("bn1", 8, 32, 32),
                activation("relu1", 8 * 32 * 32, 1.0),
                fc("fc", 8 * 32 * 32, 10),
            ],
        )
    }

    #[test]
    fn tensor_ids_are_forward_order() {
        let m = toy();
        // conv weight, bn gamma, bn beta, fc weight, fc bias.
        assert_eq!(m.num_gradients(), 5);
        assert_eq!(m.tensor(0).name, "c1.weight");
        assert_eq!(m.tensor(1).name, "bn1.gamma");
        assert_eq!(m.tensor(2).name, "bn1.beta");
        assert_eq!(m.tensor(3).name, "fc.weight");
        assert_eq!(m.tensor(4).name, "fc.bias");
        for (i, t) in m.tensors().iter().enumerate() {
            assert_eq!(t.id, i);
        }
    }

    #[test]
    fn param_totals_add_up() {
        let m = toy();
        let conv_p = 3 * 3 * 3 * 8;
        let bn_p = 8 + 8;
        let fc_p = 8 * 32 * 32 * 10 + 10;
        assert_eq!(m.total_params(), conv_p + bn_p + fc_p);
        assert_eq!(m.total_bytes(), m.total_params() * 4);
    }

    #[test]
    fn fwd_flops_per_tensor_conserves_total() {
        let m = toy();
        let per = m.fwd_flops_per_tensor();
        let total: f64 = per.iter().sum();
        assert!((total - m.fwd_flops_per_sample()).abs() < 1e-6 * total);
    }

    #[test]
    fn paramfree_flops_attach_to_previous_param_layer() {
        let m = toy();
        let per = m.fwd_flops_per_tensor();
        // relu has no params; its flops fold into the next parameterised
        // layer (fc), split across fc's two tensors.
        let fc_flops = (2 * 8 * 32 * 32 * 10) as f64;
        let relu_flops = (8 * 32 * 32) as f64;
        let fc_share = per[3] + per[4];
        assert!((fc_share - (fc_flops + relu_flops)).abs() < 1e-6);
    }

    #[test]
    fn bwd_is_twice_fwd() {
        let m = toy();
        let f: f64 = m.fwd_flops_per_tensor().iter().sum();
        let b: f64 = m.bwd_flops_per_tensor().iter().sum();
        assert!((b - 2.0 * f).abs() < 1e-9 * b);
    }

    #[test]
    fn conv_flop_formula() {
        // 3x3x16x32 conv at 8x8 output: 2*3*3*16*32*8*8 FLOPs.
        let l = conv("c", 3, 16, 32, 8, 8);
        assert_eq!(l.fwd_flops, (2u64 * 3 * 3 * 16 * 32 * 8 * 8) as f64);
        assert_eq!(l.params[0].elements, 3 * 3 * 16 * 32);
    }

    #[test]
    fn trailing_paramfree_lands_on_last_tensor() {
        let m = ModelArch::new("t", vec![fc("fc", 10, 10), activation("softmax", 10, 5.0)]);
        let per = m.fwd_flops_per_tensor();
        let total: f64 = per.iter().sum();
        assert!((total - m.fwd_flops_per_sample()).abs() < 1e-9);
        assert!(per[1] >= 50.0); // bias tensor got the softmax flops
    }
}
