#![warn(missing_docs)]

//! # prophet-dnn — the DNN workload substrate
//!
//! The paper trains ResNet18/50/152 and Inception-v3 (plus VGG19 in the
//! motivation study) on ImageNet with MXNet. For a *communication
//! scheduling* study the only things that matter about those workloads are:
//!
//! 1. the **per-tensor gradient sizes** and their **priority order**
//!    (gradient 0 = the tensor the next forward pass needs first),
//! 2. **when** each gradient becomes available during backward propagation
//!    (the "stepwise pattern" of §2.2), and
//! 3. how long forward/backward **compute** takes per layer on the GPU.
//!
//! All three are derived here from first principles:
//!
//! * [`zoo`] builds each architecture layer by layer (convolution shapes,
//!   batch-norm pairs, fully-connected heads), so parameter counts and FLOPs
//!   match the published models — unit tests pin the totals against the
//!   literature (e.g. ResNet50 ≈ 25.56 M parameters, VGG19's 38 parameter
//!   tensors that make Fig. 4's four blocks add up).
//! * [`gpu`] converts per-layer FLOPs into time on a calibrated device
//!   model (`M60_PAIR` for the paper's g3.8xlarge workers).
//! * [`generation`] reproduces the KVStore-style aggregation that causes
//!   gradients to be released in bursts — the stepwise pattern is an
//!   *output* of this model, not an input.
//!
//! The result of combining them is a [`TrainingJob`]: everything the
//! schedulers in `prophet-core` and the cluster simulation in `prophet-ps`
//! need to know about a workload.

pub mod arch;
pub mod generation;
pub mod gpu;
pub mod job;
pub mod layer;
pub mod zoo;

pub use arch::ModelArch;
pub use generation::{GenerationModel, GradientEvent};
pub use gpu::GpuSpec;
pub use job::TrainingJob;
pub use layer::{GradientId, LayerKind, LayerSpec, TensorSpec};
