//! The gradient *generation* model — where the stepwise pattern comes from.
//!
//! §2.2 of the paper identifies the root cause of the staircase in Fig. 4:
//! "the gradient data requires aggregation before transmission" — MXNet's
//! KVStore (GroupKVPairsPush), Horovod's RendezvousServer, TensorFlow's
//! communication buffer all batch per-tensor gradients before handing them
//! to the transport, and copyD2H buffering adds to the effect. The result
//! is that gradients become *visible to the communication layer* in bursts,
//! even though the GPU finishes them one by one.
//!
//! [`GenerationModel`] reproduces this: backward propagation walks tensors
//! from the highest id down to 0, accumulating per-tensor compute time; the
//! aggregation buffer flushes when enough compute time or enough gradient
//! payload has accumulated, releasing every buffered gradient at the flush
//! instant (plus a device-to-host copy delay proportional to the flushed
//! bytes). The staircase, its block sizes, and the block time intervals
//! `A(i)` the Prophet planner feeds on are all *outputs* of this process.

use crate::layer::GradientId;
use prophet_sim::Duration;

/// One gradient becoming available to the communication layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientEvent {
    /// Which gradient.
    pub id: GradientId,
    /// When it becomes transferable, as an offset from backward-pass start.
    pub ready_at: Duration,
    /// Wire size in bytes.
    pub bytes: u64,
}

/// Parameters of the KVStore-style aggregation process.
#[derive(Debug, Clone, Copy)]
pub struct GenerationModel {
    /// Flush the aggregation buffer after this much accumulated backward
    /// compute time.
    pub flush_compute: Duration,
    /// ... or once this many gradient bytes are buffered, whichever first.
    pub flush_bytes: u64,
    /// Device-to-host copy bandwidth applied to each flushed batch.
    pub d2h_bps: f64,
}

impl GenerationModel {
    /// Defaults matching the granularity observed in Fig. 4 (≈ 10-14
    /// gradients per block for ResNet50-class models).
    pub fn mxnet_like() -> Self {
        GenerationModel {
            flush_compute: Duration::from_millis(40),
            flush_bytes: 32 << 20,
            d2h_bps: 6.0e9, // PCIe 3.0 x16 achievable
        }
    }

    /// TensorFlow-style coarse bucketing: the paper observes VGG19 under
    /// TensorFlow releasing its 38 gradients in just four blocks (Fig. 4),
    /// i.e. a much larger aggregation buffer than MXNet's — big compute
    /// windows and a byte budget that lets whole convolution stages batch
    /// while the huge FC tensors still flush alone.
    pub fn tensorflow_like() -> Self {
        GenerationModel {
            flush_compute: Duration::from_millis(400),
            flush_bytes: 64 << 20,
            d2h_bps: 6.0e9,
        }
    }

    /// No aggregation: every gradient is released the instant its backward
    /// compute finishes. Isolates scheduling effects in tests.
    pub fn immediate() -> Self {
        GenerationModel {
            flush_compute: Duration::ZERO,
            flush_bytes: 0,
            d2h_bps: f64::INFINITY,
        }
    }

    /// Compute the generation schedule for one backward pass.
    ///
    /// * `bwd_times[i]` — backward compute time of tensor `i` (see
    ///   [`crate::GpuSpec::tensor_times`]);
    /// * `bytes[i]` — wire size of gradient `i`.
    ///
    /// Returns events sorted by `ready_at` (ties: descending id, matching
    /// the order the GPU produced them). The last tensor to be *computed*
    /// is gradient 0 — its release marks the end of backward propagation.
    pub fn schedule(&self, bwd_times: &[Duration], bytes: &[u64]) -> Vec<GradientEvent> {
        assert_eq!(bwd_times.len(), bytes.len());
        let n = bwd_times.len();
        let mut events = Vec::with_capacity(n);
        let mut clock = Duration::ZERO;
        let mut buf: Vec<GradientId> = Vec::new();
        let mut buf_bytes = 0u64;
        let mut buf_compute = Duration::ZERO;

        let flush = |clock: Duration,
                     buf: &mut Vec<GradientId>,
                     buf_bytes: &mut u64,
                     events: &mut Vec<GradientEvent>| {
            if buf.is_empty() {
                return;
            }
            let copy = if self.d2h_bps.is_finite() {
                Duration::from_secs_f64(*buf_bytes as f64 / self.d2h_bps)
            } else {
                Duration::ZERO
            };
            let ready = clock + copy;
            for &id in buf.iter() {
                events.push(GradientEvent {
                    id,
                    ready_at: ready,
                    bytes: bytes[id],
                });
            }
            buf.clear();
            *buf_bytes = 0;
        };

        // Backward: highest id first.
        for id in (0..n).rev() {
            clock += bwd_times[id];
            buf_compute += bwd_times[id];
            buf.push(id);
            buf_bytes += bytes[id];
            let due = buf_compute >= self.flush_compute || buf_bytes >= self.flush_bytes;
            if due {
                flush(clock, &mut buf, &mut buf_bytes, &mut events);
                buf_compute = Duration::ZERO;
            }
        }
        flush(clock, &mut buf, &mut buf_bytes, &mut events);
        events
    }

    /// Group a generation schedule into its observed *blocks*: maximal runs
    /// of gradients sharing a release instant. Returned blocks are in
    /// release order; ids within a block are ascending.
    ///
    /// This is the ground truth the stepwise-pattern profiler in
    /// `prophet-core` tries to recover from noisy observations.
    pub fn blocks(events: &[GradientEvent]) -> Vec<Vec<GradientId>> {
        let mut sorted: Vec<&GradientEvent> = events.iter().collect();
        sorted.sort_by_key(|e| (e.ready_at, e.id));
        let mut out: Vec<Vec<GradientId>> = Vec::new();
        let mut last: Option<Duration> = None;
        for e in sorted {
            if last == Some(e.ready_at) {
                out.last_mut().unwrap().push(e.id);
            } else {
                out.push(vec![e.id]);
                last = Some(e.ready_at);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn immediate_model_releases_one_by_one() {
        let g = GenerationModel::immediate();
        let times = vec![ms(1); 5];
        let bytes = vec![100u64; 5];
        let ev = g.schedule(&times, &bytes);
        assert_eq!(ev.len(), 5);
        // Backward order: id 4 first at 1ms, id 0 last at 5ms.
        let e4 = ev.iter().find(|e| e.id == 4).unwrap();
        let e0 = ev.iter().find(|e| e.id == 0).unwrap();
        assert_eq!(e4.ready_at, ms(1));
        assert_eq!(e0.ready_at, ms(5));
    }

    #[test]
    fn aggregation_creates_bursts() {
        let g = GenerationModel {
            flush_compute: ms(10),
            flush_bytes: u64::MAX,
            d2h_bps: f64::INFINITY,
        };
        // 20 tensors, 3 ms backward each: flush every ceil(10/3)=4 tensors.
        let times = vec![ms(3); 20];
        let bytes = vec![1000u64; 20];
        let ev = g.schedule(&times, &bytes);
        let blocks = GenerationModel::blocks(&ev);
        assert!(
            blocks.len() >= 4 && blocks.len() <= 6,
            "{} blocks",
            blocks.len()
        );
        // Every gradient appears exactly once.
        let mut all: Vec<_> = blocks.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn byte_threshold_flushes_large_tensors_early() {
        let g = GenerationModel {
            flush_compute: Duration::from_secs(100),
            flush_bytes: 1_000_000,
            d2h_bps: f64::INFINITY,
        };
        // Tensor 4 is huge (VGG fc-like); it must flush on its own.
        let times = vec![ms(1); 5];
        let bytes = vec![100, 100, 100, 100, 2_000_000];
        let ev = g.schedule(&times, &bytes);
        let blocks = GenerationModel::blocks(&ev);
        assert_eq!(blocks[0], vec![4]);
        // The rest flush together at backward end.
        assert_eq!(blocks[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn d2h_copy_delays_release() {
        let g = GenerationModel {
            flush_compute: Duration::ZERO, // flush after every tensor
            flush_bytes: 0,
            d2h_bps: 1e6, // 1 MB/s
        };
        let times = [ms(1)];
        let bytes = [1000u64]; // 1 ms copy
        let ev = g.schedule(&times, &bytes);
        assert_eq!(ev[0].ready_at, ms(2));
    }

    #[test]
    fn gradient_zero_is_last_computed() {
        let g = GenerationModel::mxnet_like();
        let times = vec![ms(2); 50];
        let bytes = vec![500_000u64; 50];
        let ev = g.schedule(&times, &bytes);
        let ready0 = ev.iter().find(|e| e.id == 0).unwrap().ready_at;
        for e in &ev {
            assert!(
                e.ready_at <= ready0,
                "gradient {} ready after gradient 0",
                e.id
            );
        }
    }

    #[test]
    fn stepwise_pattern_emerges_for_resnet50_class_input() {
        // Roughly ResNet50 bs64 shaped: 161 tensors, ~3.5 ms average
        // backward, sizes ~600 kB.
        let g = GenerationModel::mxnet_like();
        let times = vec![Duration::from_micros(3500); 161];
        let bytes = vec![600_000u64; 161];
        let ev = g.schedule(&times, &bytes);
        let blocks = GenerationModel::blocks(&ev);
        assert!(
            (8..=20).contains(&blocks.len()),
            "expected a Fig.4-like staircase, got {} blocks",
            blocks.len()
        );
        // Blocks are contiguous descending ranges: block k holds higher ids
        // than block k+1 (later blocks are closer to the input).
        for w in blocks.windows(2) {
            let min_prev = *w[0].iter().min().unwrap();
            let max_next = *w[1].iter().max().unwrap();
            assert!(max_next < min_prev, "blocks overlap or inverted");
        }
    }

    #[test]
    fn schedule_conserves_gradients_and_bytes() {
        let g = GenerationModel::mxnet_like();
        let times: Vec<Duration> = (0..37)
            .map(|i| Duration::from_micros(100 + i * 37))
            .collect();
        let bytes: Vec<u64> = (0..37).map(|i| 1000 + i as u64 * 997).collect();
        let ev = g.schedule(&times, &bytes);
        assert_eq!(ev.len(), 37);
        let mut seen = [false; 37];
        for e in &ev {
            assert!(!seen[e.id], "duplicate gradient {}", e.id);
            seen[e.id] = true;
            assert_eq!(e.bytes, bytes[e.id]);
        }
        assert!(seen.iter().all(|&s| s));
    }
}
