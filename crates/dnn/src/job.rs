//! [`TrainingJob`]: a fully-specified workload, ready for the cluster
//! simulation and the schedulers.
//!
//! A job fixes the model, device, batch size, and aggregation behaviour,
//! and precomputes the per-tensor timing tables everything downstream
//! consumes: gradient sizes `s(i)`, generation offsets `c(i)` (the stepwise
//! schedule), and per-tensor forward compute times `T_fp(i)`.

use crate::arch::ModelArch;
use crate::generation::{GenerationModel, GradientEvent};
use crate::gpu::GpuSpec;
use crate::layer::GradientId;
use prophet_sim::Duration;

/// A workload: model × device × batch size × aggregation model.
#[derive(Debug, Clone)]
pub struct TrainingJob {
    /// The architecture being trained.
    pub arch: ModelArch,
    /// The worker's device model.
    pub gpu: GpuSpec,
    /// Per-worker batch size (the paper's 16/32/64).
    pub batch: u32,
    /// The KVStore-style aggregation behaviour.
    pub generation: GenerationModel,
    fwd_times: Vec<Duration>,
    bwd_times: Vec<Duration>,
    events: Vec<GradientEvent>,
}

impl TrainingJob {
    /// Assemble a job and precompute its timing tables.
    pub fn new(arch: ModelArch, gpu: GpuSpec, batch: u32, generation: GenerationModel) -> Self {
        assert!(batch > 0, "zero batch size");
        let layers_per_tensor = arch.layers().len() as f64 / arch.num_gradients().max(1) as f64;
        let fwd_times = gpu.tensor_times(&arch.fwd_flops_per_tensor(), batch, layers_per_tensor);
        let bwd_times = gpu.tensor_times(&arch.bwd_flops_per_tensor(), batch, layers_per_tensor);
        let bytes: Vec<u64> = arch.tensors().iter().map(|t| t.bytes).collect();
        let events = generation.schedule(&bwd_times, &bytes);
        TrainingJob {
            arch,
            gpu,
            batch,
            generation,
            fwd_times,
            bwd_times,
            events,
        }
    }

    /// The paper's standard setup: a named zoo model on the g3.8xlarge GPU
    /// pair with MXNet-like aggregation.
    pub fn paper_setup(model: &str, batch: u32) -> Self {
        let arch = crate::zoo::by_name(model).unwrap_or_else(|| panic!("unknown model {model}"));
        let gpu = GpuSpec::m60_pair(model);
        TrainingJob::new(arch, gpu, batch, GenerationModel::mxnet_like())
    }

    /// Number of gradients per iteration.
    pub fn num_gradients(&self) -> usize {
        self.arch.num_gradients()
    }

    /// Gradient sizes `s(i)` in bytes, indexed by gradient id.
    pub fn sizes(&self) -> Vec<u64> {
        self.arch.tensors().iter().map(|t| t.bytes).collect()
    }

    /// Wire size of gradient `i`.
    pub fn size(&self, id: GradientId) -> u64 {
        self.arch.tensor(id).bytes
    }

    /// Per-tensor forward compute times `T_fp(i)`.
    pub fn fwd_times(&self) -> &[Duration] {
        &self.fwd_times
    }

    /// Per-tensor backward compute times.
    pub fn bwd_times(&self) -> &[Duration] {
        &self.bwd_times
    }

    /// The generation schedule: when each gradient becomes transferable,
    /// as offsets from backward-pass start (the stepwise pattern).
    pub fn generation_events(&self) -> &[GradientEvent] {
        &self.events
    }

    /// Generation offsets `c(i)` indexed by gradient id.
    pub fn c_offsets(&self) -> Vec<Duration> {
        let mut c = vec![Duration::ZERO; self.num_gradients()];
        for e in &self.events {
            c[e.id] = e.ready_at;
        }
        c
    }

    /// Total backward-pass duration (= when gradient 0 is released,
    /// excluding its d2h copy the moment the staircase ends).
    pub fn backward_duration(&self) -> Duration {
        self.events
            .iter()
            .map(|e| e.ready_at)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Total forward-pass compute (no communication stalls).
    pub fn forward_duration(&self) -> Duration {
        self.fwd_times
            .iter()
            .fold(Duration::ZERO, |acc, &d| acc + d)
    }

    /// Compute-only iteration time: forward + backward + fixed overhead.
    /// The floor any scheduler can reach (Eq. 1 with `T_wait = 0`).
    pub fn compute_iteration(&self) -> Duration {
        self.forward_duration() + self.backward_duration() + self.gpu.iter_overhead
    }

    /// The compute-bound training rate ceiling, samples/sec.
    pub fn compute_rate_ceiling(&self) -> f64 {
        self.batch as f64 / self.compute_iteration().as_secs_f64()
    }

    /// Total gradient payload per iteration, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.arch.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_builds_every_evaluated_model() {
        for model in ["resnet18", "resnet50", "resnet152", "inception_v3"] {
            let job = TrainingJob::paper_setup(model, 32);
            assert!(job.num_gradients() > 10, "{model}");
            assert!(job.backward_duration() > Duration::ZERO);
            assert!(job.forward_duration() > Duration::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        TrainingJob::paper_setup("resnet9000", 32);
    }

    #[test]
    fn c_offsets_indexed_by_id() {
        let job = TrainingJob::paper_setup("resnet50", 64);
        let c = job.c_offsets();
        assert_eq!(c.len(), job.num_gradients());
        // Gradient 0 is released last.
        let max = c.iter().max().unwrap();
        assert_eq!(c[0], *max);
    }

    #[test]
    fn larger_batch_longer_iteration() {
        let j16 = TrainingJob::paper_setup("resnet50", 16);
        let j64 = TrainingJob::paper_setup("resnet50", 64);
        assert!(j64.compute_iteration() > j16.compute_iteration());
        // But higher throughput (fixed overheads amortise).
        assert!(j64.compute_rate_ceiling() > j16.compute_rate_ceiling());
    }

    #[test]
    fn rate_ceiling_matches_paper_anchors() {
        // §5.3: ResNet18 bs64 ≈ 220 samples/s when network is free.
        let r18 = TrainingJob::paper_setup("resnet18", 64).compute_rate_ceiling();
        assert!((200.0..280.0).contains(&r18), "resnet18 ceiling {r18:.1}");
        // Table 2: ResNet50 bs64 ≈ 70.6 at 10 Gbps -> ceiling slightly above.
        let r50 = TrainingJob::paper_setup("resnet50", 64).compute_rate_ceiling();
        assert!((68.0..95.0).contains(&r50), "resnet50 ceiling {r50:.1}");
    }

    #[test]
    fn sizes_sum_to_model_bytes() {
        let job = TrainingJob::paper_setup("resnet50", 32);
        let total: u64 = job.sizes().iter().sum();
        assert_eq!(total, job.total_bytes());
        assert_eq!(total, 4 * job.arch.total_params());
    }

    #[test]
    fn backward_is_roughly_twice_forward() {
        let job = TrainingJob::paper_setup("resnet50", 64);
        let f = job.forward_duration().as_secs_f64();
        let b = job.backward_duration().as_secs_f64();
        let ratio = b / f;
        assert!((1.6..2.6).contains(&ratio), "bwd/fwd ratio {ratio:.2}");
    }

    #[test]
    fn stepwise_blocks_present_for_paper_models() {
        for model in ["resnet18", "resnet50", "resnet152", "inception_v3", "vgg19"] {
            let job = TrainingJob::paper_setup(model, 64);
            let blocks = GenerationModel::blocks(job.generation_events());
            assert!(
                blocks.len() >= 2,
                "{model}: no stepwise pattern ({} blocks)",
                blocks.len()
            );
            assert!(
                blocks.len() < job.num_gradients(),
                "{model}: no aggregation at all"
            );
        }
    }
}
