//! The GPU compute-time model and its calibration.
//!
//! The paper's workers are EC2 g3.8xlarge instances: two NVIDIA Tesla M60
//! GPUs per node (9.6 TFLOPS FP32 peak for the pair). We model the node's
//! GPU complex as a single device with an *effective* FLOP rate — achieved
//! throughput, not peak — because data-parallel training inside the node
//! splits the batch across the two GPUs symmetrically and the scheduler only
//! observes the aggregate timing.
//!
//! ## Calibration
//!
//! Effective rates are set so single-worker iteration times land near the
//! rates §5 reports when communication is not the bottleneck:
//!
//! * ResNet18 bs 64 ≈ 220 samples/s at 10 Gbps (§5.3) → ~290 ms compute
//!   per iteration → ≈ 2.45 TFLOPS effective.
//! * ResNet50 bs 64 ≈ 70.6 samples/s at 10 Gbps (Table 2) → ~850 ms
//!   compute (some residual communication) → ≈ 1.85 TFLOPS effective.
//! * Inception-v3 / ResNet152: no absolute anchor in the paper; set to the
//!   same efficiency class as ResNet50 (irregular kernels).
//!
//! Per-model efficiency differences are real (kernel shapes, memory-bound
//! BN layers) and absorbed here rather than scattered through experiments.
//! We reproduce *relative* behaviour between schedulers; these constants
//! only position the compute/communication balance, and the experiments
//! sweep bandwidth around that balance exactly like the paper does.

use crate::layer::GradientId;
use prophet_sim::Duration;

/// A worker's aggregate compute capability.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// Device name, for reports.
    pub name: String,
    /// Achieved (not peak) FLOPs per second for this workload class.
    pub effective_flops: f64,
    /// Fixed per-layer cost (kernel launches, synchronisation).
    pub layer_overhead: Duration,
    /// Fixed per-iteration cost (data pipeline, optimizer step launch).
    pub iter_overhead: Duration,
}

impl GpuSpec {
    /// The g3.8xlarge GPU pair, with per-model calibrated efficiency.
    ///
    /// Unknown model names get a conservative mid-class rate.
    pub fn m60_pair(model: &str) -> GpuSpec {
        let effective_flops = match model {
            "resnet18" => 2.45e12,
            "resnet34" => 2.2e12,
            "resnet50" => 1.85e12,
            "resnet101" => 1.8e12,
            "resnet152" => 1.75e12,
            "inception_v3" => 1.9e12,
            "vgg19" => 2.6e12,   // large dense convs run near peak
            "alexnet" => 1.6e12, // tiny net, launch-bound
            _ => 1.8e12,
        };
        GpuSpec {
            name: format!("2x Tesla M60 ({model})"),
            effective_flops,
            layer_overhead: Duration::from_micros(18),
            iter_overhead: Duration::from_millis(15),
        }
    }

    /// The p3.16xlarge GPU complex (8× Tesla V100) — the paper's §7 future
    /// work asks how Prophet behaves on newer instances. Effective rates
    /// scale the M60 calibration by the V100 generation's measured training
    /// speedup (~6× on convnets); the faster the compute, the more
    /// communication-bound the same job becomes.
    pub fn v100_octet(model: &str) -> GpuSpec {
        let base = Self::m60_pair(model);
        GpuSpec {
            name: format!("8x Tesla V100 ({model})"),
            effective_flops: base.effective_flops * 6.0,
            layer_overhead: Duration::from_micros(12),
            iter_overhead: Duration::from_millis(10),
        }
    }

    /// The p4d.24xlarge GPU complex (8× A100): another ~2.5× over V100.
    pub fn a100_octet(model: &str) -> GpuSpec {
        let base = Self::m60_pair(model);
        GpuSpec {
            name: format!("8x A100 ({model})"),
            effective_flops: base.effective_flops * 15.0,
            layer_overhead: Duration::from_micros(8),
            iter_overhead: Duration::from_millis(8),
        }
    }

    /// An idealised infinitely-fast device (tests that isolate the network).
    pub fn instant() -> GpuSpec {
        GpuSpec {
            name: "instant".into(),
            effective_flops: f64::INFINITY,
            layer_overhead: Duration::ZERO,
            iter_overhead: Duration::ZERO,
        }
    }

    /// A uniform device with the given effective rate and no fixed costs.
    pub fn uniform(flops: f64) -> GpuSpec {
        GpuSpec {
            name: format!("uniform-{flops:.2e}"),
            effective_flops: flops,
            layer_overhead: Duration::ZERO,
            iter_overhead: Duration::ZERO,
        }
    }

    /// Time to execute `flops` floating-point operations.
    pub fn time_for_flops(&self, flops: f64) -> Duration {
        debug_assert!(flops >= 0.0);
        if self.effective_flops.is_infinite() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(flops / self.effective_flops)
        }
    }

    /// Per-tensor compute time for a whole pass: FLOPs scaled by batch size
    /// plus this tensor's share of per-layer overhead.
    ///
    /// `flops_per_tensor` comes from
    /// [`crate::ModelArch::fwd_flops_per_tensor`] /
    /// [`crate::ModelArch::bwd_flops_per_tensor`]; `layers_per_tensor` is
    /// the model's layer/tensor ratio so total launch overhead is
    /// conserved.
    pub fn tensor_times(
        &self,
        flops_per_tensor: &[f64],
        batch: u32,
        layers_per_tensor: f64,
    ) -> Vec<Duration> {
        flops_per_tensor
            .iter()
            .map(|&f| {
                let compute = self.time_for_flops(f * batch as f64);
                let overhead =
                    Duration::from_secs_f64(self.layer_overhead.as_secs_f64() * layers_per_tensor);
                compute + overhead
            })
            .collect()
    }

    /// Convenience: total time across tensors `lo..hi`.
    pub fn span_time(times: &[Duration], lo: GradientId, hi: GradientId) -> Duration {
        times[lo..hi].iter().fold(Duration::ZERO, |acc, &d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn time_scales_linearly_with_flops() {
        let g = GpuSpec::uniform(1e12);
        assert_eq!(g.time_for_flops(1e12), Duration::from_secs(1));
        assert_eq!(g.time_for_flops(5e11), Duration::from_millis(500));
    }

    #[test]
    fn instant_device_takes_no_time() {
        let g = GpuSpec::instant();
        assert_eq!(g.time_for_flops(1e18), Duration::ZERO);
    }

    #[test]
    fn resnet50_bs64_iteration_near_published_rate() {
        // Compute-only iteration time should put the compute-bound rate in
        // the 70-90 samples/s window (the paper's 10 Gbps rate is ~70.6
        // including residual communication).
        let m = zoo::resnet50();
        let g = GpuSpec::m60_pair("resnet50");
        let fwd: f64 = m.fwd_flops_per_tensor().iter().sum::<f64>() * 64.0;
        let bwd = 2.0 * fwd;
        let t = g.time_for_flops(fwd + bwd).as_secs_f64()
            + g.iter_overhead.as_secs_f64()
            + m.layers().len() as f64 * g.layer_overhead.as_secs_f64() * 3.0;
        let rate = 64.0 / t;
        assert!(
            (70.0..95.0).contains(&rate),
            "compute-bound ResNet50 bs64 rate {rate:.1} samples/s"
        );
    }

    #[test]
    fn resnet18_bs64_iteration_near_published_rate() {
        let m = zoo::resnet18();
        let g = GpuSpec::m60_pair("resnet18");
        let fwd: f64 = m.fwd_flops_per_tensor().iter().sum::<f64>() * 64.0;
        let t = g.time_for_flops(3.0 * fwd).as_secs_f64()
            + g.iter_overhead.as_secs_f64()
            + m.layers().len() as f64 * g.layer_overhead.as_secs_f64() * 3.0;
        let rate = 64.0 / t;
        assert!(
            (210.0..270.0).contains(&rate),
            "compute-bound ResNet18 bs64 rate {rate:.1} samples/s"
        );
    }

    #[test]
    fn tensor_times_conserve_overhead() {
        let g = GpuSpec {
            name: "t".into(),
            effective_flops: 1e12,
            layer_overhead: Duration::from_micros(10),
            iter_overhead: Duration::ZERO,
        };
        let flops = vec![1e9, 2e9, 3e9];
        // 6 layers over 3 tensors -> 2 layers' overhead per tensor.
        let times = g.tensor_times(&flops, 1, 2.0);
        let total: f64 = times.iter().map(|d| d.as_secs_f64()).sum();
        let expect = 6e9 / 1e12 + 6.0 * 10e-6;
        assert!((total - expect).abs() < 1e-9, "total {total} vs {expect}");
    }

    #[test]
    fn span_time_sums_range() {
        let times = vec![
            Duration::from_millis(1),
            Duration::from_millis(2),
            Duration::from_millis(3),
        ];
        assert_eq!(GpuSpec::span_time(&times, 0, 3), Duration::from_millis(6));
        assert_eq!(GpuSpec::span_time(&times, 1, 2), Duration::from_millis(2));
        assert_eq!(GpuSpec::span_time(&times, 1, 1), Duration::ZERO);
    }
}
