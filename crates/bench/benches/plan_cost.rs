//! Host-time cost of the *planning* half of a scheduler, isolated from the
//! simulator that usually drives it.
//!
//! `BENCH_sim_scale.json` reports whole-cluster simulation wall clock
//! (prophet-oracle far above FIFO at 1024 workers), which conflates two
//! very different costs: the scheduler's own planning work (slicing the
//! gradient stream into blocks, ordering pushes/pulls) and the simulator's
//! machinery (event queue, flow re-allocation) multiplied by the message
//! count the strategy generates. This bench measures only the former:
//! per worker count, instantiate one scheduler per worker exactly as the
//! cluster does, drive each through one full planning cycle
//! (`iteration_begin` → backward-order `gradient_ready` → push drain →
//! `param_ready` → pull drain → `iteration_end`) against a synthetic
//! clock, and report host nanoseconds — total and per worker.
//!
//! Writes `BENCH_plan_cost.json` at the repo root (skipped under
//! `-- --test`, which also trims the grid to its first point).

use criterion::{criterion_group, criterion_main, stats_to_json, Criterion};
use prophet::core::{CommScheduler, Dir, ProphetConfig, SchedulerKind};
use prophet::dnn::TrainingJob;
use prophet::sim::SimTime;
use std::time::Instant;

const SCALES: &[usize] = &[64, 256, 512, 1024];

/// Synthetic clock steps (sim nanoseconds): gap between gradient releases,
/// per-poll advance while the strategy paces itself, and the wire time a
/// task is considered to occupy before `task_done`.
const RELEASE_STEP: u64 = 1_000;
const POLL_STEP: u64 = 100_000;
const WIRE_STEP: u64 = 50_000;

/// Safety valve for strategies that pace far into the future: after this
/// many consecutive idle polls the drain gives up (the task counter in the
/// artifact makes any truncation visible).
const MAX_IDLE_POLLS: u64 = 10_000;

/// Drive one scheduler through a full planning cycle. Returns the number
/// of tasks it emitted.
fn one_cycle(sched: &mut Box<dyn CommScheduler>, sizes: &[u64]) -> u64 {
    let n = sizes.len();
    let mut now = 0u64;
    let mut pushed = vec![0u64; n];
    let mut pulled = vec![0u64; n];
    let mut tasks = 0u64;
    let mut drain =
        |sched: &mut Box<dyn CommScheduler>, now: &mut u64, done: &mut [u64], dir: Dir| {
            let mut idle = 0u64;
            while done.iter().zip(sizes).any(|(d, s)| d < s) {
                *now += POLL_STEP;
                match sched.next_task(SimTime(*now)) {
                    Some(t) => {
                        idle = 0;
                        tasks += 1;
                        for &(g, b) in &t.pieces {
                            if t.dir == dir {
                                done[g] += b;
                            }
                        }
                        *now += WIRE_STEP;
                        sched.task_done(SimTime(*now), &t);
                    }
                    None => {
                        idle += 1;
                        if idle > MAX_IDLE_POLLS {
                            break;
                        }
                    }
                }
            }
        };
    sched.iteration_begin(SimTime(now), 0);
    // Backward pass releases gradients last-layer-first.
    for g in (0..n).rev() {
        now += RELEASE_STEP;
        sched.gradient_ready(SimTime(now), g);
    }
    drain(sched, &mut now, &mut pushed, Dir::Push);
    for g in 0..n {
        now += RELEASE_STEP;
        sched.param_ready(SimTime(now), g);
    }
    drain(sched, &mut now, &mut pulled, Dir::Pull);
    sched.iteration_end(SimTime(now), 0, prophet::sim::Duration(now));
    tasks
}

/// Build `workers` schedulers of `kind` (as the cluster does — one per
/// worker) and run one planning cycle on each. Returns (host ns total,
/// tasks emitted total). Construction is included deliberately: for the
/// oracle it is where the profile is adopted and the block plan built.
fn planning_pass(kind: &SchedulerKind, job: &TrainingJob, workers: usize) -> (u64, u64) {
    let t0 = Instant::now();
    let mut tasks = 0u64;
    let sizes = job.sizes();
    for _ in 0..workers {
        let mut sched = kind.build(job);
        tasks += one_cycle(&mut sched, &sizes);
    }
    (t0.elapsed().as_nanos() as u64, tasks)
}

fn bench_plan_cost(c: &mut Criterion) {
    let quick = c.is_quick();
    let scales = if quick { &SCALES[..1] } else { SCALES };
    let job = TrainingJob::paper_setup("resnet18", 16);

    let mut derived: Vec<(&str, f64)> = Vec::new();
    let mut g = c.benchmark_group("plan_cycle");
    g.sample_size(if quick { 1 } else { 3 });
    for &w in scales {
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::ProphetOracle(ProphetConfig::paper_default(1.25e9)),
        ] {
            let label = kind.label().to_string();
            let mut samples: Vec<(u64, u64)> = Vec::new();
            g.bench_function(&format!("{label}_{w}"), |b| {
                b.iter(|| {
                    let s = planning_pass(&kind, &job, w);
                    samples.push(s);
                    s.0
                })
            });
            samples.sort();
            let (ns, tasks) = samples[samples.len() / 2];
            println!(
                "  {label} x{w}: {:.2} ms total, {:.1} us/worker, {:.1} tasks/worker",
                ns as f64 / 1e6,
                ns as f64 / 1e3 / w as f64,
                tasks as f64 / w as f64
            );
            if !quick {
                for (key, v) in [
                    ("host_ns_total", ns as f64),
                    ("host_ns_per_worker", ns as f64 / w as f64),
                    ("tasks_per_worker", tasks as f64 / w as f64),
                ] {
                    derived.push((
                        Box::leak(format!("plan_{label}_{w}_{key}").into_boxed_str()) as &str,
                        v,
                    ));
                }
            }
        }
    }
    g.finish();

    if quick {
        return;
    }
    let json = stats_to_json(c.stats(), &derived);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan_cost.json");
    std::fs::write(path, json).expect("write BENCH_plan_cost.json");
    println!("wrote {path}");
}

criterion_group!(plan_cost, bench_plan_cost);
criterion_main!(plan_cost);
