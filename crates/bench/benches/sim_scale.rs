//! End-to-end simulator scaling: wall-clock cost of whole cluster
//! iterations as the worker count grows, with BytePS-style co-located
//! shards (`ps_shards = workers`) so the PS NIC never caps the cluster
//! and the flow graph stays many-component — the shape the incremental
//! allocator and the indexed event queue are built for.
//!
//! Writes `BENCH_sim_scale.json` at the repo root (skipped under
//! `-- --test`, which also trims the scale grid to its first point).

use criterion::{criterion_group, criterion_main, stats_to_json, Criterion};
use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};
use std::hint::black_box;

const SCALES: &[usize] = &[64, 256, 512, 1024];

fn cell(workers: usize, kind: SchedulerKind) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cell(
        workers,
        10.0,
        TrainingJob::paper_setup("resnet18", 16),
        kind,
    );
    c.ps_shards = workers;
    c.warmup_iters = 1;
    c
}

fn bench_sim_scale(c: &mut Criterion) {
    let quick = c.is_quick();
    let scales = if quick { &SCALES[..1] } else { SCALES };

    let mut g = c.benchmark_group("iteration");
    g.sample_size(3);
    for &w in scales {
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::ProphetOracle(prophet::core::ProphetConfig::paper_default(1.25e9)),
        ] {
            let label = kind.label().to_string();
            let cfg = cell(w, kind.clone());
            g.bench_function(&format!("{label}_{w}"), |b| {
                b.iter(|| black_box(run_cluster(&cfg, 2).duration))
            });
        }
    }
    g.finish();

    if quick {
        return;
    }
    let json = stats_to_json(c.stats(), &[]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_scale.json");
    std::fs::write(path, json).expect("write BENCH_sim_scale.json");
    println!("wrote {path}");
}

criterion_group!(sim_scale, bench_sim_scale);
criterion_main!(sim_scale);
