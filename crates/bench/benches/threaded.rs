//! Threaded PS runtime throughput: steady-state iterations/sec across
//! shard count × worker count × model, written to `BENCH_threaded.json`.
//!
//! Methodology: every cell runs the full runtime twice, at `LO` and `HI`
//! iteration counts, and the steady-state per-iteration time is the
//! difference quotient `(wall(HI) - wall(LO)) / (HI - LO)` — thread
//! spawn, dataset/model construction, and first-iteration cache warm-up
//! cancel out. The median over `sample_size` run pairs is reported, so
//! one scheduler hiccup cannot swing a cell.
//!
//! The headline acceptance scalar is `speedup_8w_4s_vgg`: measured
//! steady-state iterations/sec at 8 workers / 4 shards on the VGG-class
//! model divided by [`SEED_BASELINE_8W_VGG_ITERS_PER_SEC`] — the
//! single-shard, single-PS-thread runtime as it stood at the seed of
//! this PR, measured on the same box with the same methodology and
//! pinned below so the refactor is judged against a fixed bar, not a
//! moving target.
//!
//! Run `cargo bench --bench threaded` for the real sweep; `-- --test`
//! runs a single-sample smoke on the small model with no artifact.

use criterion::{criterion_group, criterion_main, stats_to_json, Criterion};
use prophet::core::SchedulerKind;
use prophet::ps::threaded::{run_threaded_training, PsOptimizer, ThreadedConfig};
use std::time::Instant;

/// Steady-state iterations/sec of the single-shard seed runtime at
/// 8 workers on the VGG-class model (FIFO, unlimited link, invariants
/// off), measured at commit 299db6d ("Incremental max-min re-allocation
/// with an indexed event queue") with the difference-quotient methodology
/// above, median of 3 pairs on the 1-core CI box. The sharded zero-copy
/// runtime is accepted only if it beats 3x this number.
pub const SEED_BASELINE_8W_VGG_ITERS_PER_SEC: f64 = 0.798;

/// Iteration counts for the difference quotient.
const LO: u64 = 2;
const HI: u64 = 8;

/// A VGG-proportioned dense stack: a few multi-megabyte tensors plus
/// their small biases (~6.3 M parameters, 25 MB). With one sample per
/// worker the gradient exchange dominates compute — the
/// communication-bound regime of the paper's VGG experiments, scaled to
/// a 1-core CI box.
fn vgg_cfg(workers: usize, shards: usize) -> ThreadedConfig {
    ThreadedConfig {
        workers,
        ps_shards: shards,
        widths: vec![512, 2048, 2048, 512, 10],
        samples: 64,
        noise: 0.8,
        seed: 77,
        global_batch: workers, // one sample per worker: comm-dominated
        iterations: HI,
        lr: 0.05,
        optimizer: PsOptimizer::Sgd { momentum: 0.9 },
        scheduler: SchedulerKind::Fifo,
        link_bps: None,
        check_invariants: false,
        ps_restart_at_iter: None,
        checkpoint_period: 4,
        checkpoint_retention: 2,
        fault_plan: Default::default(),
        retry: prophet::net::RetryPolicy::paper_default(),
    }
}

/// The `ThreadedConfig::small` problem at bench settings (invariants off).
fn small_cfg(workers: usize) -> ThreadedConfig {
    let mut cfg = ThreadedConfig::small(workers, SchedulerKind::Fifo);
    cfg.check_invariants = false;
    cfg.global_batch = workers * 8;
    cfg.iterations = HI;
    cfg
}

/// One steady-state sample: wall-clock difference quotient over LO/HI runs.
fn steady_iters_per_sec(cfg: &ThreadedConfig) -> f64 {
    let mut lo = cfg.clone();
    lo.iterations = LO;
    let mut hi = cfg.clone();
    hi.iterations = HI;
    let t0 = Instant::now();
    let _ = run_threaded_training(&lo);
    let t_lo = t0.elapsed();
    let t1 = Instant::now();
    let _ = run_threaded_training(&hi);
    let t_hi = t1.elapsed();
    let dt = t_hi.saturating_sub(t_lo).as_secs_f64().max(1e-9);
    (HI - LO) as f64 / dt
}

fn bench_threaded(c: &mut Criterion) {
    let quick = c.is_quick();

    // Each (group, id) cell times one LO+HI run pair; the derived
    // iterations/sec below recomputes the difference quotient from the
    // same runs it just timed.
    let mut rates: Vec<(String, f64)> = Vec::new();
    let mut g = c.benchmark_group("threaded");
    g.sample_size(if quick { 1 } else { 3 });
    let cells: Vec<(String, ThreadedConfig)> = if quick {
        vec![("small_2w".into(), small_cfg(2))]
    } else {
        vec![
            ("small_4w".into(), small_cfg(4)),
            ("small_8w".into(), small_cfg(8)),
            ("vgg_4w_1s".into(), vgg_cfg(4, 1)),
            ("vgg_8w_1s".into(), vgg_cfg(8, 1)),
            ("vgg_8w_2s".into(), vgg_cfg(8, 2)),
            ("vgg_8w_4s".into(), vgg_cfg(8, 4)),
        ]
    };
    for (id, cfg) in &cells {
        let mut samples: Vec<f64> = Vec::new();
        g.bench_function(id, |b| {
            b.iter(|| {
                let r = steady_iters_per_sec(cfg);
                samples.push(r);
                r
            })
        });
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        println!(
            "  {id}: steady-state {median:.3} iters/sec (median of {})",
            samples.len()
        );
        rates.push((id.clone(), median));
    }
    g.finish();

    if quick {
        return;
    }
    let rate = |id: &str| {
        rates
            .iter()
            .find(|(i, _)| i == id)
            .map(|&(_, r)| r)
            .unwrap_or(f64::NAN)
    };
    let derived: Vec<(&str, f64)> = rates
        .iter()
        .map(|(id, r)| (id.as_str(), *r))
        .map(|(id, r)| {
            (
                Box::leak(format!("iters_per_sec_{id}").into_boxed_str()) as &str,
                r,
            )
        })
        .chain([
            ("seed_baseline_8w_vgg", SEED_BASELINE_8W_VGG_ITERS_PER_SEC),
            (
                "speedup_8w_4s_vgg",
                rate("vgg_8w_4s") / SEED_BASELINE_8W_VGG_ITERS_PER_SEC,
            ),
            (
                "shard_scaling_8w_4s_over_1s",
                rate("vgg_8w_4s") / rate("vgg_8w_1s"),
            ),
        ])
        .collect();
    let json = stats_to_json(c.stats(), &derived);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_threaded.json");
    std::fs::write(path, json).expect("write BENCH_threaded.json");
    println!(
        "8-worker 4-shard VGG steady state: {:.3} iters/sec (seed baseline {:.3}, speedup {:.2}x) -> {path}",
        rate("vgg_8w_4s"),
        SEED_BASELINE_8W_VGG_ITERS_PER_SEC,
        rate("vgg_8w_4s") / SEED_BASELINE_8W_VGG_ITERS_PER_SEC
    );
}

criterion_group!(threaded, bench_threaded);
criterion_main!(threaded);
