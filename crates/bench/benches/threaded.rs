//! Threaded PS runtime throughput: steady-state iterations/sec across
//! shard count × worker count × model, written to `BENCH_threaded.json`.
//!
//! Methodology: every cell runs the full runtime twice, at `LO` and `HI`
//! iteration counts, and the steady-state per-iteration time is the
//! difference quotient `(wall(HI) - wall(LO)) / (HI - LO)` — thread
//! spawn, dataset/model construction, and first-iteration cache warm-up
//! cancel out. The median over `sample_size` run pairs is reported, so
//! one scheduler hiccup cannot swing a cell.
//!
//! The headline acceptance scalar is `speedup_8w_4s_vgg`: measured
//! steady-state iterations/sec at 8 workers / 4 shards on the VGG-class
//! model divided by [`SEED_BASELINE_8W_VGG_ITERS_PER_SEC`] — the
//! single-shard, single-PS-thread runtime as it stood at the seed of
//! this PR, measured on the same box with the same methodology and
//! pinned below so the refactor is judged against a fixed bar, not a
//! moving target.
//!
//! `shard_scaling_8w_4s_over_1s` is measured *paired*, not from the cell
//! medians: the 1-shard and 4-shard cells run back-to-back inside each
//! round (starting order alternating between rounds) and the reported
//! value is the median of the per-round ratios. The cell sweep runs for
//! minutes, and the box's throughput drifts over a sweep by more than
//! the 1s→4s effect size — a ratio of two medians measured minutes apart
//! mostly measures that drift. Pairing cancels it; alternating the order
//! cancels any first-runner advantage within a round.
//!
//! Run `cargo bench --bench threaded` for the real sweep; `-- --test`
//! runs a single-sample smoke on the small model with no artifact.

use criterion::{criterion_group, criterion_main, stats_to_json, Criterion};
use prophet::core::SchedulerKind;
use prophet::ps::threaded::{run_threaded_training, PsOptimizer, ThreadedConfig, ThreadedResult};
use std::time::Instant;

/// Steady-state iterations/sec of the single-shard seed runtime at
/// 8 workers on the VGG-class model (FIFO, unlimited link, invariants
/// off), measured at commit 299db6d ("Incremental max-min re-allocation
/// with an indexed event queue") with the difference-quotient methodology
/// above, median of 3 pairs on the 1-core CI box. The sharded zero-copy
/// runtime is accepted only if it beats 3x this number.
pub const SEED_BASELINE_8W_VGG_ITERS_PER_SEC: f64 = 0.798;

/// Iteration counts for the difference quotient.
const LO: u64 = 2;
const HI: u64 = 8;

/// A VGG-proportioned dense stack: a few multi-megabyte tensors plus
/// their small biases (~6.3 M parameters, 25 MB). With one sample per
/// worker the gradient exchange dominates compute — the
/// communication-bound regime of the paper's VGG experiments, scaled to
/// a 1-core CI box.
fn vgg_cfg(workers: usize, shards: usize) -> ThreadedConfig {
    ThreadedConfig {
        workers,
        ps_shards: shards,
        widths: vec![512, 2048, 2048, 512, 10],
        samples: 64,
        noise: 0.8,
        seed: 77,
        global_batch: workers, // one sample per worker: comm-dominated
        iterations: HI,
        lr: 0.05,
        optimizer: PsOptimizer::Sgd { momentum: 0.9 },
        scheduler: SchedulerKind::Fifo,
        link_bps: None,
        check_invariants: false,
        ps_restart_at_iter: None,
        checkpoint_period: 4,
        checkpoint_retention: 2,
        fault_plan: Default::default(),
        retry: prophet::net::RetryPolicy::paper_default(),
        agg_threads: 0,
    }
}

/// The `ThreadedConfig::small` problem at bench settings (invariants off).
fn small_cfg(workers: usize) -> ThreadedConfig {
    let mut cfg = ThreadedConfig::small(workers, SchedulerKind::Fifo);
    cfg.check_invariants = false;
    cfg.global_batch = workers * 8;
    cfg.iterations = HI;
    cfg
}

/// Per-phase attribution keys, in the order [`phase_vec`] fills them:
/// shard-side spans summed across shards, then worker-side spans summed
/// across workers. Every perf claim in DESIGN.md §15 cites these.
const PHASE_KEYS: [&str; 11] = [
    "shard_verify",
    "shard_accumulate",
    "shard_optimizer",
    "shard_encode",
    "shard_ack",
    "shard_sweep",
    "shard_idle",
    "worker_compute",
    "worker_encode",
    "worker_apply",
    "worker_wait",
];

fn phase_vec(r: &ThreadedResult) -> [u64; 11] {
    let mut v = [0u64; 11];
    for p in &r.shard_phases {
        v[0] += p.verify_ns;
        v[1] += p.accumulate_ns;
        v[2] += p.optimizer_ns;
        v[3] += p.encode_ns;
        v[4] += p.ack_ns;
        v[5] += p.sweep_ns;
        v[6] += p.idle_ns;
    }
    v[7] = r.worker_phases.compute_ns;
    v[8] = r.worker_phases.encode_ns;
    v[9] = r.worker_phases.apply_ns;
    v[10] = r.worker_phases.wait_ns;
    v
}

/// One steady-state sample: wall-clock difference quotient over LO/HI
/// runs, plus the per-phase attribution (ns per iteration) computed with
/// the same quotient — warm-up effects cancel out of the spans exactly as
/// they cancel out of the wall clock.
fn steady_iters_per_sec(cfg: &ThreadedConfig) -> (f64, [f64; 11]) {
    let mut lo = cfg.clone();
    lo.iterations = LO;
    let mut hi = cfg.clone();
    hi.iterations = HI;
    let t0 = Instant::now();
    let r_lo = run_threaded_training(&lo);
    let t_lo = t0.elapsed();
    let t1 = Instant::now();
    let r_hi = run_threaded_training(&hi);
    let t_hi = t1.elapsed();
    let dt = t_hi.saturating_sub(t_lo).as_secs_f64().max(1e-9);
    let (p_lo, p_hi) = (phase_vec(&r_lo), phase_vec(&r_hi));
    let mut phases = [0f64; 11];
    for i in 0..11 {
        phases[i] = p_hi[i].saturating_sub(p_lo[i]) as f64 / (HI - LO) as f64;
    }
    ((HI - LO) as f64 / dt, phases)
}

/// Median of per-round paired 4-shard/1-shard throughput ratios (see the
/// module doc for why the ratio must be paired rather than taken from
/// the cell medians). Odd `rounds` keeps the median a real sample.
fn paired_shard_scaling(rounds: usize) -> f64 {
    let cfg_1s = vgg_cfg(8, 1);
    let cfg_4s = vgg_cfg(8, 4);
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which cell runs first so any within-round warm-up or
        // cool-down advantage hits both cells equally across rounds.
        let (r_1s, r_4s) = if round % 2 == 0 {
            let a = steady_iters_per_sec(&cfg_1s).0;
            let b = steady_iters_per_sec(&cfg_4s).0;
            (a, b)
        } else {
            let b = steady_iters_per_sec(&cfg_4s).0;
            let a = steady_iters_per_sec(&cfg_1s).0;
            (a, b)
        };
        println!(
            "  scaling round {round}: 1s {r_1s:.3}  4s {r_4s:.3}  ratio {:.4}",
            r_4s / r_1s
        );
        ratios.push(r_4s / r_1s);
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

fn bench_threaded(c: &mut Criterion) {
    let quick = c.is_quick();

    // Each (group, id) cell times one LO+HI run pair; the derived
    // iterations/sec below recomputes the difference quotient from the
    // same runs it just timed.
    let mut rates: Vec<(String, f64)> = Vec::new();
    let mut phase_rows: Vec<(String, [f64; 11])> = Vec::new();
    let mut g = c.benchmark_group("threaded");
    g.sample_size(if quick { 1 } else { 3 });
    let cells: Vec<(String, ThreadedConfig)> = if quick {
        vec![("small_2w".into(), small_cfg(2))]
    } else {
        vec![
            ("small_4w".into(), small_cfg(4)),
            ("small_8w".into(), small_cfg(8)),
            ("vgg_4w_1s".into(), vgg_cfg(4, 1)),
            ("vgg_8w_1s".into(), vgg_cfg(8, 1)),
            ("vgg_8w_2s".into(), vgg_cfg(8, 2)),
            ("vgg_8w_4s".into(), vgg_cfg(8, 4)),
        ]
    };
    for (id, cfg) in &cells {
        let mut samples: Vec<(f64, [f64; 11])> = Vec::new();
        g.bench_function(id, |b| {
            b.iter(|| {
                let (r, phases) = steady_iters_per_sec(cfg);
                samples.push((r, phases));
                r
            })
        });
        samples.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        let (median, phases) = samples[samples.len() / 2];
        println!(
            "  {id}: steady-state {median:.3} iters/sec (median of {})",
            samples.len()
        );
        for (key, ns) in PHASE_KEYS.iter().zip(phases) {
            if ns >= 1_000.0 {
                println!("      {key:<18} {:>9.1} us/iter", ns / 1_000.0);
            }
        }
        rates.push((id.clone(), median));
        phase_rows.push((id.clone(), phases));
    }
    g.finish();

    if quick {
        return;
    }
    println!("  paired shard-scaling rounds (8 workers, 4s vs 1s):");
    let scaling = paired_shard_scaling(5);
    println!("  shard_scaling_8w_4s_over_1s: {scaling:.4} (median of 5 paired rounds)");
    let rate = |id: &str| {
        rates
            .iter()
            .find(|(i, _)| i == id)
            .map(|&(_, r)| r)
            .unwrap_or(f64::NAN)
    };
    let derived: Vec<(&str, f64)> = rates
        .iter()
        .map(|(id, r)| (id.as_str(), *r))
        .map(|(id, r)| {
            (
                Box::leak(format!("iters_per_sec_{id}").into_boxed_str()) as &str,
                r,
            )
        })
        .chain([
            ("seed_baseline_8w_vgg", SEED_BASELINE_8W_VGG_ITERS_PER_SEC),
            (
                "speedup_8w_4s_vgg",
                rate("vgg_8w_4s") / SEED_BASELINE_8W_VGG_ITERS_PER_SEC,
            ),
            ("shard_scaling_8w_4s_over_1s", scaling),
        ])
        // The per-phase attribution for the VGG cells: aggregate ns per
        // steady-state iteration per span, so every optimisation claim is
        // backed by the artifact that motivated it.
        .chain(
            phase_rows
                .iter()
                .filter(|(id, _)| id.starts_with("vgg"))
                .flat_map(|(id, phases)| {
                    PHASE_KEYS.iter().zip(phases).map(move |(key, ns)| {
                        (
                            Box::leak(format!("phase_{id}_{key}_ns_per_iter").into_boxed_str())
                                as &str,
                            *ns,
                        )
                    })
                }),
        )
        .collect();
    let json = stats_to_json(c.stats(), &derived);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_threaded.json");
    std::fs::write(path, json).expect("write BENCH_threaded.json");
    println!(
        "8-worker 4-shard VGG steady state: {:.3} iters/sec (seed baseline {:.3}, speedup {:.2}x) -> {path}",
        rate("vgg_8w_4s"),
        SEED_BASELINE_8W_VGG_ITERS_PER_SEC,
        rate("vgg_8w_4s") / SEED_BASELINE_8W_VGG_ITERS_PER_SEC
    );
}

criterion_group!(threaded, bench_threaded);
criterion_main!(threaded);
