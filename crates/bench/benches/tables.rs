//! Criterion benches regenerating each *table* experiment (reduced
//! configurations; the full rows come from the `repro` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use prophet::core::{ProphetConfig, SchedulerKind};
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};
use std::hint::black_box;

fn rate(model: &str, batch: u32, gbps: f64, kind: SchedulerKind) -> f64 {
    let mut cfg = ClusterConfig::paper_cell(2, gbps, TrainingJob::paper_setup(model, batch), kind);
    cfg.warmup_iters = 1;
    run_cluster(&cfg, 3).rate
}

fn prophet_kind(gbps: f64) -> SchedulerKind {
    SchedulerKind::ProphetOracle(ProphetConfig::paper_default(gbps * 1e9 / 8.0))
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    g.bench_function("table2_bandwidth", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &gbps in &[2.0, 10.0] {
                acc += rate("resnet50", 16, gbps, prophet_kind(gbps));
                acc += rate(
                    "resnet50",
                    16,
                    gbps,
                    SchedulerKind::ByteScheduler(Default::default()),
                );
            }
            black_box(acc)
        })
    });

    g.bench_function("table3_batch_size", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &batch in &[16u32, 64] {
                acc += rate("resnet18", batch, 4.0, prophet_kind(4.0));
            }
            black_box(acc)
        })
    });

    g.bench_function("sec53_heterogeneous", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::paper_cell(
                3,
                10.0,
                TrainingJob::paper_setup("resnet50", 16),
                prophet_kind(10.0),
            );
            cfg.worker_bps_overrides.push((2, 62.5e6));
            cfg.warmup_iters = 1;
            black_box(run_cluster(&cfg, 3).rate)
        })
    });

    g.bench_function("sec54_profiling_cost", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::paper_cell(
                2,
                10.0,
                TrainingJob::paper_setup("inception_v3", 16),
                SchedulerKind::Fifo,
            );
            black_box(run_cluster(&cfg, 3).iter_times[2])
        })
    });

    g.finish();
}

criterion_group!(tables, bench_tables);
criterion_main!(tables);
