//! Allocator scaling: full-solve `maxmin::allocate` vs the incremental
//! dirty-component re-allocation inside [`Network`], across worker counts.
//!
//! Topology mirrors one instant of the sharded cluster (BytePS
//! co-location): `W` workers fanning into `W/8` shards gives `W/8`
//! disjoint connected components of 8 in-flight flows each. A flow
//! arrival or departure touches exactly one component, so incremental
//! re-allocation should cost ~`8/W` of a full solve — the
//! `realloc_speedup_512` derived scalar in `BENCH_maxmin.json` pins that
//! claim (acceptance: ≥10× at 512 workers, by median so one scheduler
//! hiccup can't swing the ratio).
//!
//! Run `cargo bench --bench maxmin_scale` for the real trajectory
//! (written to `BENCH_maxmin.json` at the repo root); `-- --test` runs a
//! single-sample smoke with no artifact.

use criterion::{criterion_group, criterion_main, stats_to_json, Criterion};
use prophet::net::maxmin::{allocate, allocate_with, FlowDemand, Scratch};
use prophet::net::{Network, NodeId, NodeSpec, TcpModel, Topology};
use prophet::sim::SimTime;
use std::hint::black_box;

/// Worker counts on the trajectory. `--test` mode keeps only the first.
const SCALES: &[usize] = &[64, 256, 512, 1024];

/// In-flight flows per PS shard at the benchmarked instant.
const GROUP: usize = 8;

fn shards(workers: usize) -> usize {
    (workers / GROUP).max(1)
}

/// Cluster-shaped topology: shard nodes `0..S`, worker nodes `S..S+W`.
fn topo(workers: usize) -> Topology {
    Topology::uniform(shards(workers) + workers, NodeSpec::from_gbps(10.0))
}

/// One uncapped push per worker into its shard.
fn demands(workers: usize) -> Vec<FlowDemand> {
    let s = shards(workers);
    (0..workers)
        .map(|w| FlowDemand {
            src: NodeId(s + w),
            dst: NodeId(w % s),
            cap_bps: f64::INFINITY,
        })
        .collect()
}

/// A steady-state network carrying one never-ending flow per worker.
fn loaded_net(workers: usize, full_resolve: bool) -> Network {
    let mut net = Network::new(topo(workers), TcpModel::IDEAL);
    net.set_full_resolve(full_resolve);
    let s = shards(workers);
    for w in 0..workers {
        net.start_flow(
            SimTime::ZERO,
            NodeId(s + w),
            NodeId(w % s),
            1 << 40, // effectively infinite: churn never completes a flow
            w as u64,
        );
    }
    net
}

fn bench_maxmin_scale(c: &mut Criterion) {
    let quick = c.is_quick();
    let scales = if quick { &SCALES[..1] } else { SCALES };

    // Tier 1: the from-scratch solver, fresh buffers vs reused Scratch.
    let mut g = c.benchmark_group("allocate");
    g.sample_size(60);
    for &w in scales {
        let t = topo(w);
        let d = demands(w);
        g.bench_function(&format!("full_{w}"), |b| {
            b.iter(|| black_box(allocate(&t, &d)))
        });
        let mut scratch = Scratch::default();
        g.bench_function(&format!("scratch_{w}"), |b| {
            b.iter(|| black_box(allocate_with(&t, &d, &mut scratch)))
        });
    }
    g.finish();

    // Tier 2: one flow departs and re-arrives (the hot operation of the
    // cluster's gradient churn), incremental vs full-resolve engine.
    let mut g = c.benchmark_group("realloc");
    g.sample_size(60);
    for &w in scales {
        let s = shards(w);
        for (mode, full) in [("incremental", false), ("full", true)] {
            let mut net = loaded_net(w, full);
            g.bench_function(&format!("{mode}_{w}"), |b| {
                b.iter(|| {
                    net.kill_flow(SimTime::ZERO, 0).expect("flow 0 in flight");
                    black_box(net.start_flow(SimTime::ZERO, NodeId(s), NodeId(0), 1 << 40, 0))
                })
            });
        }
    }
    g.finish();

    if quick {
        return;
    }
    let median = |group: &str, id: &str| {
        c.stats()
            .iter()
            .find(|s| s.group == group && s.id == id)
            .map(|s| s.median_ns)
            .unwrap_or(f64::NAN)
    };
    let speedup = median("realloc", "full_512") / median("realloc", "incremental_512");
    let json = stats_to_json(c.stats(), &[("realloc_speedup_512", speedup)]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_maxmin.json");
    std::fs::write(path, json).expect("write BENCH_maxmin.json");
    println!("512-worker re-allocation speedup: {speedup:.1}x -> {path}");
}

criterion_group!(maxmin_scale, bench_maxmin_scale);
criterion_main!(maxmin_scale);
