//! Microbenchmarks of the substrates: the pieces whose per-event costs
//! determine how fast the experiment harness itself runs.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet::core::plan::{prophet_plan, PlanInput};
use prophet::core::{detect_blocks, SchedulerKind};
use prophet::dnn::TrainingJob;
use prophet::net::maxmin::{allocate, FlowDemand};
use prophet::net::{NodeId, NodeSpec, TcpModel, Topology};
use prophet::sim::{Duration, EventQueue, SimTime};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");

    g.bench_function("event_queue_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0u64..10_000 {
                q.schedule(SimTime::from_nanos(i * 37 % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });

    g.bench_function("maxmin_64_flows", |b| {
        let topo = Topology::uniform(9, NodeSpec::from_gbps(10.0));
        let flows: Vec<FlowDemand> = (0..64)
            .map(|i| FlowDemand {
                src: NodeId(1 + i % 8),
                dst: NodeId(0),
                cap_bps: if i % 3 == 0 { 1e8 } else { f64::INFINITY },
            })
            .collect();
        b.iter(|| black_box(allocate(&topo, &flows)))
    });

    g.bench_function("zoo_resnet50_build", |b| {
        b.iter(|| black_box(prophet::dnn::zoo::resnet50().total_params()))
    });

    g.bench_function("job_timing_tables", |b| {
        b.iter(|| black_box(TrainingJob::paper_setup("resnet50", 64).backward_duration()))
    });

    g.bench_function("algorithm1_plan_resnet50", |b| {
        let job = TrainingJob::paper_setup("resnet50", 64);
        let input = PlanInput {
            c: job.c_offsets(),
            s: job.sizes(),
            bandwidth_bps: 5e8,
            tcp: TcpModel::EC2,
        };
        b.iter(|| black_box(prophet_plan(&input).backward_blocks.len()))
    });

    g.bench_function("detect_blocks_161", |b| {
        let job = TrainingJob::paper_setup("resnet50", 64);
        let c = job.c_offsets();
        b.iter(|| black_box(detect_blocks(&c).len()))
    });

    g.bench_function("tcp_transfer_time", |b| {
        let m = TcpModel::EC2;
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100u64 {
                acc += m.transfer_time_s((i * 100_000) as f64, 1.25e9);
            }
            black_box(acc)
        })
    });

    g.bench_function("scheduler_iteration_drive", |b| {
        // One full iteration's worth of scheduler decisions, no network.
        let job = TrainingJob::paper_setup("resnet50", 64);
        let n = job.num_gradients();
        b.iter(|| {
            let mut sched = SchedulerKind::ByteScheduler(Default::default()).build(&job);
            let now = SimTime::ZERO + Duration::from_millis(1);
            sched.iteration_begin(now, 0);
            let mut moved = 0u64;
            for gradient in (0..n).rev() {
                sched.gradient_ready(now, gradient);
                while let Some(t) = sched.next_task(now) {
                    moved += t.bytes;
                    sched.task_done(now, &t);
                }
            }
            black_box(moved)
        })
    });

    g.finish();
}

criterion_group!(engine, bench_engine);
criterion_main!(engine);
