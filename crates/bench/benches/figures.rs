//! Criterion benches regenerating each *figure* experiment on a reduced
//! but structurally identical configuration. The measured quantity is the
//! wall time of the regeneration itself; the figures' data rows are
//! produced by `cargo run -p prophet-bench --bin repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet::core::{AutoTuneConfig, ByteSchedulerConfig, ProphetConfig, SchedulerKind};
use prophet::dnn::{GenerationModel, TrainingJob};
use prophet::ps::sim::{run_cluster, ClusterConfig};
use std::hint::black_box;

fn cell(model: &str, batch: u32, gbps: f64, kind: SchedulerKind) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_cell(2, gbps, TrainingJob::paper_setup(model, batch), kind);
    cfg.warmup_iters = 1;
    cfg
}

fn prophet_kind(gbps: f64) -> SchedulerKind {
    SchedulerKind::ProphetOracle(ProphetConfig::paper_default(gbps * 1e9 / 8.0))
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig02_baseline_util", |b| {
        b.iter(|| {
            let cfg = cell("resnet152", 16, 3.0, SchedulerKind::Fifo);
            black_box(run_cluster(&cfg, 3).avg_gpu_util)
        })
    });

    g.bench_function("fig03a_p3_partition", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &part in &[512u64 << 10, 4 << 20] {
                let cfg = cell(
                    "resnet50",
                    16,
                    4.0,
                    SchedulerKind::P3 {
                        partition_bytes: part,
                    },
                );
                total += run_cluster(&cfg, 3).rate;
            }
            black_box(total)
        })
    });

    g.bench_function("fig03b_bytescheduler_tuning", |b| {
        b.iter(|| {
            let kind = SchedulerKind::ByteScheduler(ByteSchedulerConfig {
                autotune: Some(AutoTuneConfig {
                    interval_iters: 1,
                    ..AutoTuneConfig::default()
                }),
                ..ByteSchedulerConfig::default()
            });
            let cfg = cell("resnet50", 16, 3.0, kind);
            black_box(run_cluster(&cfg, 6).credit_trace.len())
        })
    });

    g.bench_function("fig04_stepwise", |b| {
        b.iter(|| {
            let job = TrainingJob::paper_setup("resnet50", 64);
            black_box(GenerationModel::blocks(job.generation_events()).len())
        })
    });

    g.bench_function("fig05_schedule_comparison", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for kind in SchedulerKind::paper_lineup(3e9 / 8.0) {
                let mut cfg = cell("resnet18", 16, 3.0, kind);
                cfg.trace = true;
                total += run_cluster(&cfg, 3).rate;
            }
            black_box(total)
        })
    });

    g.bench_function("fig08_training_rate", |b| {
        b.iter(|| {
            let bs = run_cluster(
                &cell(
                    "resnet18",
                    32,
                    4.0,
                    SchedulerKind::ByteScheduler(Default::default()),
                ),
                3,
            )
            .rate;
            let pr = run_cluster(&cell("resnet18", 32, 4.0, prophet_kind(4.0)), 3).rate;
            black_box(pr / bs)
        })
    });

    g.bench_function("fig09_gpu_util", |b| {
        b.iter(|| {
            let cfg = cell("resnet50", 16, 4.0, prophet_kind(4.0));
            black_box(run_cluster(&cfg, 3).avg_gpu_util)
        })
    });

    g.bench_function("fig10_net_throughput", |b| {
        b.iter(|| {
            let cfg = cell("resnet50", 16, 4.0, prophet_kind(4.0));
            black_box(run_cluster(&cfg, 3).avg_net_throughput)
        })
    });

    g.bench_function("fig11_gradient_timeline", |b| {
        b.iter(|| {
            let cfg = cell("resnet50", 16, 4.0, prophet_kind(4.0));
            let r = run_cluster(&cfg, 3);
            black_box(r.mean_wait_ms(2))
        })
    });

    g.bench_function("fig12_scalability", |b| {
        b.iter(|| {
            let mut cfg = cell("resnet50", 16, 10.0, prophet_kind(10.0));
            cfg.workers = 4;
            cfg.ps_shards = 4;
            black_box(run_cluster(&cfg, 3).rate)
        })
    });

    g.bench_function("fig13_overhead", |b| {
        b.iter(|| {
            let mut pc = ProphetConfig::paper_default(4e9 / 8.0);
            pc.profile_iters = 2;
            let cfg = cell("resnet50", 16, 4.0, SchedulerKind::Prophet(pc));
            black_box(run_cluster(&cfg, 5).rate_with_warmup)
        })
    });

    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
