#![warn(missing_docs)]

//! # prophet-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§2 and §5).
//! Each returns an [`ExperimentOutput`]: the same rows/series the paper
//! reports, printable as a markdown table and writable as CSV under
//! `results/`. The `repro` binary drives them (`repro all`, `repro fig8`,
//! ...); the criterion benches in `benches/` time reduced variants of the
//! same code paths.
//!
//! Experiments use reduced-but-representative iteration counts so a full
//! `repro all` finishes in minutes; iteration counts only tighten the
//! confidence of the steady-state rates, not the shapes.

pub mod experiments;
pub mod output;

pub use output::ExperimentOutput;

/// Every experiment in the registry, as `(id, description, runner)`.
pub type Runner = fn() -> ExperimentOutput;

/// The registry the `repro` binary dispatches on, in paper order.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    use experiments::*;
    vec![
        (
            "fig2",
            "GPU util + network throughput over time under default MXNet (ResNet152)",
            motivation::fig2 as Runner,
        ),
        (
            "fig3a",
            "P3 training rate vs partition size (overhead of small partitions)",
            motivation::fig3a,
        ),
        (
            "fig3b",
            "ByteScheduler credit auto-tuning: rate fluctuation and credit trace",
            motivation::fig3b,
        ),
        (
            "fig4",
            "Stepwise pattern of gradient release times (ResNet50 / VGG19)",
            motivation::fig4,
        ),
        (
            "fig5",
            "Illustrative schedule comparison of the four strategies",
            motivation::fig5,
        ),
        (
            "fig8",
            "Training rate, Prophet vs ByteScheduler across models and batch sizes",
            effectiveness::fig8,
        ),
        (
            "fig9",
            "GPU utilisation over time, Prophet vs ByteScheduler (ResNet50)",
            effectiveness::fig9,
        ),
        (
            "fig10",
            "Network throughput over time, Prophet vs ByteScheduler (ResNet50)",
            effectiveness::fig10,
        ),
        (
            "fig11",
            "Per-gradient transfer start/end times for MXNet, ByteScheduler, Prophet",
            effectiveness::fig11,
        ),
        (
            "sec52_fpstart",
            "Forward-propagation start: iteration 61 start time and iterations in 15 s",
            effectiveness::sec52_fpstart,
        ),
        (
            "table2",
            "ResNet50 rate under 1-10 Gb/s worker bandwidth (Prophet/ByteScheduler/P3)",
            robustness::table2,
        ),
        (
            "table3",
            "ResNet18/50 rate across batch sizes (Prophet vs ByteScheduler)",
            robustness::table3,
        ),
        (
            "sec53_resnet18",
            "ResNet18 under 3 vs 10 Gb/s (MXNet/P3/Prophet)",
            robustness::sec53_resnet18,
        ),
        (
            "sec53_hetero",
            "Heterogeneous cluster: one worker capped at 500 Mb/s",
            robustness::sec53_hetero,
        ),
        (
            "fig12",
            "Scalability: per-worker rate from 2 to 8 workers",
            overhead::fig12,
        ),
        (
            "fig13",
            "Profiling-phase overhead: online Prophet vs ByteScheduler early rates",
            overhead::fig13,
        ),
        (
            "sec54_profiling",
            "Job-profiling wall time (50 iterations) per model",
            overhead::sec54_profiling,
        ),
        (
            "ablation_credit",
            "[extension] Prophet ablation: static vs dynamic credit, deadline on/off",
            overhead::ablation_credit,
        ),
        (
            "ext_asp",
            "[extension] §7 future work: ASP vs BSP synchronisation",
            extensions::ext_asp,
        ),
        (
            "ext_gpus",
            "[extension] §7 future work: V100/A100-generation instances",
            extensions::ext_gpus,
        ),
        (
            "ext_dynamic_bw",
            "[extension] dynamic network: bandwidth dip and recovery mid-run",
            extensions::ext_dynamic_bw,
        ),
        (
            "ext_straggler",
            "[extension] compute straggler under BSP vs ASP",
            extensions::ext_straggler,
        ),
        (
            "ext_related_work",
            "[extension] all six strategies incl. TicTac and MG-WFBP",
            extensions::ext_related_work,
        ),
        (
            "ext_faults",
            "[extension] fault injection: link/shard/worker failures, degradation and recovery",
            faults::ext_faults,
        ),
        (
            "ext_chaos",
            "[extension] chaos search: random fault plans vs safety/liveness oracles",
            chaos::ext_chaos,
        ),
        (
            "ext_elastic",
            "[extension] elastic membership: permanent churn vs the deterministic recovery contract",
            elastic::ext_elastic,
        ),
        (
            "ext_integrity",
            "[extension] data integrity: silent corruption vs checksummed frames + verified restores",
            integrity::ext_integrity,
        ),
        (
            "ext_scale",
            "[extension] scaling frontier: 64-1024 workers, iteration time + simulator wall-clock",
            scale::ext_scale,
        ),
        (
            "ext_threaded",
            "[extension] threaded PS steady-state throughput across shard counts (zero-copy counters)",
            threaded::ext_threaded,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_nonempty() {
        let reg = registry();
        assert!(reg.len() >= 24);
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
    }
}
