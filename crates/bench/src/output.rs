//! Experiment result formatting: markdown to stdout, CSV to `results/`.

use std::fmt::Write as _;
use std::path::Path;

/// The rows/series one experiment reproduces, plus provenance.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Registry id, e.g. `"fig8"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for this experiment (for EXPERIMENTS.md).
    pub paper_reference: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows, already formatted.
    pub rows: Vec<Vec<String>>,
    /// Free-form commentary (what to look for, deviations).
    pub notes: String,
}

impl ExperimentOutput {
    /// Start an output with the given identity.
    pub fn new(id: &str, title: &str, paper_reference: &str, header: &[&str]) -> Self {
        ExperimentOutput {
            id: id.to_owned(),
            title: title.to_owned(),
            paper_reference: paper_reference.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: String::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as a markdown table with title and notes.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "*paper:* {}\n", self.paper_reference);
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:>w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "\n{}", self.notes);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write `<dir>/<id>.csv`, creating the directory if needed.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Render a `(x, y)` series as a compact ASCII sparkline block for notes.
pub fn ascii_series(label: &str, series: &[(f64, f64)], width: usize) -> String {
    if series.is_empty() {
        return format!("{label}: (empty)\n");
    }
    let ymax = series.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max);
    let ymin = series.iter().map(|&(_, y)| y).fold(f64::MAX, f64::min);
    let glyphs = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let step = series.len().max(1).div_ceil(width);
    let mut line = String::new();
    for chunk in series.chunks(step) {
        let avg = chunk.iter().map(|&(_, y)| y).sum::<f64>() / chunk.len() as f64;
        let idx = if ymax > ymin {
            (((avg - ymin) / (ymax - ymin)) * (glyphs.len() - 1) as f64).round() as usize
        } else {
            0
        };
        line.push(glyphs[idx.min(glyphs.len() - 1)]);
    }
    format!("{label} [{ymin:.2}..{ymax:.2}]: {line}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentOutput {
        let mut o = ExperimentOutput::new("t1", "title", "paper says X", &["a", "b"]);
        o.row(vec!["1".into(), "2".into()]);
        o.row(vec!["30".into(), "4,4".into()]);
        o
    }

    #[test]
    fn markdown_contains_everything() {
        let md = sample().to_markdown();
        assert!(md.contains("### t1 — title"));
        assert!(md.contains("paper says X"));
        assert!(md.contains("| 30 |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("\"4,4\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut o = ExperimentOutput::new("x", "t", "p", &["a", "b"]);
        o.row(vec!["1".into()]);
    }

    #[test]
    fn sparkline_is_bounded() {
        let series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i % 10) as f64)).collect();
        let s = ascii_series("test", &series, 20);
        assert!(s.chars().count() < 60);
        assert!(s.contains("test"));
    }
}
