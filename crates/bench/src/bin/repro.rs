//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list            # show experiment ids
//! repro all             # run everything, print markdown, write results/*.csv
//! repro fig8 table2 ... # run specific experiments
//! repro trace <sched> [gbps] [batch] [seed]
//!                       # run one cell with the typed span trace on and
//!                       # write per-gradient spans to results/trace_*.csv,
//!                       # printing an ASCII Gantt of worker 0's spans
//! repro ext_chaos <seed> [budget]
//!                       # chaos search at any scale: <budget> generated
//!                       # fault plans per scheduler vs the oracles
//! repro ext_elastic <seed> [budget]
//!                       # elastic churn sweep at any scale: <budget>
//!                       # permanent-fault plans per scheduler vs the
//!                       # deterministic recovery contract
//! repro ext_integrity <seed> [budget]
//!                       # corruption sweep at any scale: <budget> silent-
//!                       # corruption plans per scheduler vs the integrity
//!                       # contract, plus threaded bit-identity legs
//! ```
//!
//! CSV outputs land in `results/` at the workspace root (override with
//! `PROPHET_RESULTS_DIR`).

use prophet_bench::registry;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    std::env::var("PROPHET_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// `repro trace <sched> [gbps] [batch] [seed]` — simulate one experimental
/// cell with the typed event stream enabled (invariant checker included) and
/// export the per-`(worker, gradient, iteration)` spans as CSV. Defaults to
/// the cell pinned by `tests/regression_pinned_cell.rs`, so a failing
/// regression can be replayed into an inspectable trace verbatim.
fn run_trace(args: &[String]) {
    use prophet::core::{ProphetConfig, SchedulerKind};
    use prophet::dnn::TrainingJob;
    use prophet::ps::sim::{run_cluster, ClusterConfig};
    use prophet::sim::{grad_spans_to_ascii_gantt, spans_to_csv, SpanKind};

    let sched = args.first().map(String::as_str).unwrap_or("fifo");
    // Strict positional parsing: a malformed `[gbps] [batch] [seed]` must
    // exit non-zero rather than silently truncate (`64.5` is not a batch).
    fn parse_arg<T: std::str::FromStr>(args: &[String], i: usize, name: &str, default: T) -> T {
        args.get(i).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad {name} `{s}` — usage: repro trace <sched> [gbps] [batch] [seed]");
                std::process::exit(1);
            })
        })
    }
    let gbps: f64 = parse_arg(args, 1, "gbps", 6.626115377326036);
    if !(gbps.is_finite() && gbps > 0.0) {
        eprintln!("bad gbps `{gbps}` — must be a finite positive bandwidth");
        std::process::exit(1);
    }
    let batch: u32 = parse_arg(args, 2, "batch", 64);
    if batch == 0 {
        eprintln!("bad batch `0` — must be at least 1");
        std::process::exit(1);
    }
    let seed: u64 = parse_arg(args, 3, "seed", 0);
    if let Some(extra) = args.get(4) {
        eprintln!(
            "unexpected argument `{extra}` — usage: repro trace <sched> [gbps] [batch] [seed]"
        );
        std::process::exit(1);
    }
    let bps = gbps * 1e9 / 8.0;
    let kind = match sched {
        "fifo" => SchedulerKind::Fifo,
        "p3" => SchedulerKind::P3 {
            partition_bytes: 4 << 20,
        },
        "bytescheduler" => SchedulerKind::ByteScheduler(Default::default()),
        "prophet" => SchedulerKind::ProphetOracle(ProphetConfig::paper_default(bps)),
        other => {
            eprintln!("unknown scheduler `{other}` — want fifo | p3 | bytescheduler | prophet");
            std::process::exit(1);
        }
    };

    let mut cfg =
        ClusterConfig::paper_cell(2, gbps, TrainingJob::paper_setup("resnet18", batch), kind);
    cfg.seed = seed;
    cfg.warmup_iters = 1;
    cfg.typed_trace = true;
    cfg.check_invariants = true;
    eprintln!("[repro] tracing {sched} @ {gbps} Gb/s, batch {batch}, seed {seed} ...");
    let r = run_cluster(&cfg, 3);

    // Per-kind summary over worker 0 (mean duration in ms).
    println!(
        "spans: {} ({} iterations, rate {:.1} samples/s)",
        r.grad_spans.len(),
        r.iterations,
        r.rate
    );
    for kind in [
        SpanKind::QueueWait,
        SpanKind::Push,
        SpanKind::Aggregate,
        SpanKind::Pull,
        SpanKind::Compute,
    ] {
        let ms: Vec<f64> = r
            .grad_spans
            .iter()
            .filter(|s| s.worker == 0 && s.kind == kind)
            .map(|s| s.end.saturating_since(s.start).as_millis_f64())
            .collect();
        let mean = if ms.is_empty() {
            0.0
        } else {
            ms.iter().sum::<f64>() / ms.len() as f64
        };
        println!(
            "  {:<10} n={:<4} mean {:.3} ms",
            kind.as_str(),
            ms.len(),
            mean
        );
    }

    // Worker 0's lanes as an ASCII Gantt: `.` queue-wait, `#` push,
    // `=` aggregate, `<` pull, `F` compute.
    let w0: Vec<_> = r
        .grad_spans
        .iter()
        .filter(|s| s.worker == 0)
        .cloned()
        .collect();
    println!("\nworker 0 gantt (.queue #push =agg <pull Fcompute):");
    print!("{}", grad_spans_to_ascii_gantt(&w0, 100));

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[repro] cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("trace_{sched}_{gbps}gbps_b{batch}_s{seed}.csv"));
    match std::fs::write(&path, spans_to_csv(&r.grad_spans)) {
        Ok(()) => eprintln!("[repro] trace → {}", path.display()),
        Err(e) => {
            eprintln!("[repro] could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// The `ext_*` sweeps that also accept `<seed> [budget]` positionals: one
/// table drives usage text, the progress banner, and dispatch, so adding a
/// sweep is one row here (plus its registry entry for the bare-id form).
struct ExtSweep {
    id: &'static str,
    banner: &'static str,
    run: fn(u64, usize) -> prophet_bench::ExperimentOutput,
}

const EXT_SWEEPS: &[ExtSweep] = &[
    ExtSweep {
        id: "ext_chaos",
        banner: "chaos search",
        run: prophet_bench::experiments::chaos::run_chaos,
    },
    ExtSweep {
        id: "ext_elastic",
        banner: "elastic churn sweep",
        run: prophet_bench::experiments::elastic::run_elastic,
    },
    ExtSweep {
        id: "ext_integrity",
        banner: "corruption sweep",
        run: prophet_bench::experiments::integrity::run_integrity,
    },
];

/// `repro <ext_id> <seed> [budget]` — strict positional parsing: malformed
/// numbers or trailing arguments exit non-zero with this sweep's usage
/// line rather than silently running the wrong configuration.
fn run_ext_sweep(sweep: &ExtSweep, args: &[String]) {
    let usage = format!("usage: repro {} <seed> [budget]", sweep.id);
    let parse = |i: usize, name: &str, default: u64| -> u64 {
        args.get(i).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad {name} `{s}` — {usage}");
                std::process::exit(1);
            })
        })
    };
    let seed = parse(0, "seed", 42);
    let budget = parse(1, "budget", 200) as usize;
    if let Some(extra) = args.get(2) {
        eprintln!("unexpected argument `{extra}` — {usage}");
        std::process::exit(1);
    }
    eprintln!(
        "[repro] {}: seed {seed}, {budget} plans per scheduler ...",
        sweep.banner
    );
    let t0 = std::time::Instant::now();
    let output = (sweep.run)(seed, budget);
    println!("{}", output.to_markdown());
    match output.write_csv(&results_dir()) {
        Ok(path) => eprintln!(
            "[repro] {} done in {:.1?} → {}",
            sweep.id,
            t0.elapsed(),
            path.display()
        ),
        Err(e) => eprintln!("[repro] {}: could not write CSV: {e}", sweep.id),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();

    if args.is_empty() || args[0] == "list" {
        println!("experiments ({}):", reg.len());
        for (id, desc, _) in &reg {
            println!("  {id:<16} {desc}");
        }
        println!("\nusage: repro all | repro <id> [<id> ...] | repro trace <sched> [gbps] [batch] [seed]");
        for sweep in EXT_SWEEPS {
            println!("       repro {} <seed> [budget]", sweep.id);
        }
        return;
    }

    if args[0] == "trace" {
        run_trace(&args[1..]);
        return;
    }

    // The parameterized `ext_*` sweeps. A bare `repro ext_chaos` (no
    // numeric args) falls through to the registry's small fixed-seed entry.
    if args.len() > 1 {
        if let Some(sweep) = EXT_SWEEPS.iter().find(|s| s.id == args[0]) {
            run_ext_sweep(sweep, &args[1..]);
            return;
        }
    }

    let selected: Vec<&(&str, &str, prophet_bench::Runner)> = if args[0] == "all" {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for arg in &args {
            match reg.iter().find(|(id, _, _)| id == arg) {
                Some(entry) => sel.push(entry),
                None => {
                    let ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
                    eprintln!("unknown experiment `{arg}`");
                    eprintln!("valid ids: {}", ids.join(" "));
                    eprintln!(
                        "usage: repro all | repro <id> [<id> ...] | repro trace <sched> [gbps] [batch] [seed]"
                    );
                    for sweep in EXT_SWEEPS {
                        eprintln!("       repro {} <seed> [budget]", sweep.id);
                    }
                    std::process::exit(1);
                }
            }
        }
        sel
    };

    let dir = results_dir();
    for (id, _, run) in selected {
        eprintln!("[repro] running {id} ...");
        let t0 = std::time::Instant::now();
        let output = run();
        let elapsed = t0.elapsed();
        println!("{}", output.to_markdown());
        match output.write_csv(&dir) {
            Ok(path) => eprintln!("[repro] {id} done in {elapsed:.1?} → {}", path.display()),
            Err(e) => eprintln!("[repro] {id}: could not write CSV: {e}"),
        }
    }
}
