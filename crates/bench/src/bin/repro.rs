//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list            # show experiment ids
//! repro all             # run everything, print markdown, write results/*.csv
//! repro fig8 table2 ... # run specific experiments
//! ```
//!
//! CSV outputs land in `results/` at the workspace root (override with
//! `PROPHET_RESULTS_DIR`).

use prophet_bench::registry;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    std::env::var("PROPHET_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();

    if args.is_empty() || args[0] == "list" {
        println!("experiments ({}):", reg.len());
        for (id, desc, _) in &reg {
            println!("  {id:<16} {desc}");
        }
        println!("\nusage: repro all | repro <id> [<id> ...]");
        return;
    }

    let selected: Vec<&(&str, &str, prophet_bench::Runner)> = if args[0] == "all" {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for arg in &args {
            match reg.iter().find(|(id, _, _)| id == arg) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!("unknown experiment `{arg}` — try `repro list`");
                    std::process::exit(1);
                }
            }
        }
        sel
    };

    let dir = results_dir();
    for (id, _, run) in selected {
        eprintln!("[repro] running {id} ...");
        let t0 = std::time::Instant::now();
        let output = run();
        let elapsed = t0.elapsed();
        println!("{}", output.to_markdown());
        match output.write_csv(&dir) {
            Ok(path) => eprintln!("[repro] {id} done in {elapsed:.1?} → {}", path.display()),
            Err(e) => eprintln!("[repro] {id}: could not write CSV: {e}"),
        }
    }
}
