//! One-shot component timer for the threaded-PS hot path on the current
//! host: times each constituent of a steady-state iteration in isolation
//! (model step, arena encode, barrier fold, pull apply) so the gap
//! between the component floor and the measured wall clock is visible.
//!
//! A second mode, `phase_probe cell <shards> [workers] [iters]`, runs one
//! full VGG-class training cell and reports wall clock plus the process's
//! voluntary/involuntary context-switch deltas (summed over
//! `/proc/self/task/*/status`), so scheduler churn can be compared across
//! shard counts directly.
//!
//! Diagnostics only — no artifact; run with `cargo run --release --bin
//! phase_probe`.

use prophet::minidnn::Mlp;
use prophet::minidnn::Tensor;
use prophet::ps::threaded::wire;
use std::time::Instant;

/// System-wide context-switch count (`ctxt` in `/proc/stat`). Per-task
/// counters die with the joined worker threads, so on an otherwise idle
/// box the machine-wide delta is the usable proxy.
fn ctx_switches() -> u64 {
    std::fs::read_to_string("/proc/stat")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("ctxt ").and_then(|v| v.trim().parse().ok()))
        })
        .unwrap_or(0)
}

fn run_cell(shards: usize, workers: usize, iters: u64) {
    use prophet::core::SchedulerKind;
    use prophet::ps::threaded::{run_threaded_training, PsOptimizer, ThreadedConfig};
    let cfg = ThreadedConfig {
        workers,
        ps_shards: shards,
        widths: vec![512, 2048, 2048, 512, 10],
        samples: 64,
        noise: 0.8,
        seed: 77,
        global_batch: workers,
        iterations: iters,
        lr: 0.05,
        optimizer: PsOptimizer::Sgd { momentum: 0.9 },
        scheduler: SchedulerKind::Fifo,
        link_bps: None,
        check_invariants: false,
        ps_restart_at_iter: None,
        checkpoint_period: 4,
        checkpoint_retention: 2,
        fault_plan: Default::default(),
        retry: prophet::net::RetryPolicy::paper_default(),
        agg_threads: 0,
    };
    let c0 = ctx_switches();
    let t0 = Instant::now();
    let out = run_threaded_training(&cfg);
    let wall = t0.elapsed().as_secs_f64();
    let c1 = ctx_switches();
    println!(
        "cell {workers}w_{shards}s x{iters}: {:.3} iters/sec  wall {:.2}s  \
         ctx-switches (machine-wide): {}  ({:.0}/iter)  final loss {:.4}",
        iters as f64 / wall,
        wall,
        c1 - c0,
        (c1 - c0) as f64 / iters as f64,
        out.losses.last().copied().unwrap_or(f32::NAN),
    );
}

fn time<R>(label: &str, reps: u32, mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    println!("  {label:<34} {ms:>9.2} ms");
    ms
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("cell") {
        let shards = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
        let workers = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
        let iters = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(40);
        run_cell(shards, workers, iters);
        return;
    }
    let widths = [512usize, 2048, 2048, 512, 10];
    let mut model = Mlp::new(&widths, 7);
    let x = Tensor::from_vec(1, widths[0], vec![0.3; widths[0]]);
    let labels = [3usize];
    let n: usize = model.tensor_sizes().iter().sum();
    println!("model: {n} params ({:.1} MB)", n as f64 * 4.0 / 1e6);

    let fb = time("forward_backward (1 sample)", 10, || {
        model.zero_grads();
        model.forward_backward(&x, &labels)
    });
    let zg = time("zero_grads alone", 10, || model.zero_grads());

    let grads: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
    let mut buf = bytes::BytesMut::with_capacity(n * 4);
    let enc = time("encode_f32_into_crc (whole model)", 10, || {
        buf.clear();
        wire::encode_f32_into_crc(&grads, &mut buf)
    });

    let wire_bytes = {
        buf.clear();
        wire::encode_f32_into_crc(&grads, &mut buf);
        buf.clone().freeze()
    };
    let mut acc = vec![0.0f32; n];
    let fold1 = time("fused_crc_accumulate (1 payload)", 10, || {
        wire::crc32::finish(wire::fused_crc_accumulate(
            wire::crc32::begin(),
            &wire_bytes,
            &mut acc,
        ))
    });

    let mut params = vec![0.0f32; n];
    let apply = time("fused_crc_apply (whole model)", 10, || {
        wire::crc32::finish(wire::fused_crc_apply(
            wire::crc32::begin(),
            &wire_bytes,
            &mut params,
        ))
    });

    let verify = time("verify alone (crc32::update)", 10, || {
        wire::crc32::finish(wire::crc32::update(wire::crc32::begin(), &wire_bytes))
    });

    let workers = 8.0;
    println!("\nper-iteration floor at 8 workers (ms):");
    println!("  compute   {:.1}", fb * workers);
    println!("  encode    {:.1}", enc * workers);
    println!("  fold      {:.1}", fold1 * workers);
    println!("  apply     {:.1}", apply * workers);
    println!(
        "  (zero_grads {:.1}, verify-alone would be {:.1})",
        zg * workers,
        verify * workers
    );
    println!("  sum: {:.1}", (fb + enc + fold1 + apply) * workers);
}
