//! §5.4's overhead studies (Figs. 12-13, profiling cost) plus an ablation
//! of Prophet's design choices that the paper motivates but never
//! isolates.

use super::{bytescheduler, cell, prophet, r1, steady};
use crate::output::{ascii_series, ExperimentOutput};
use prophet::core::{ProphetConfig, SchedulerKind};
use prophet::dnn::TrainingJob;

/// Fig. 12: per-worker training rate as the cluster grows from 2 to 8
/// workers (sharded PS, as BytePS co-locates servers with workers).
pub fn fig12() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig12",
        "Scalability: ResNet50 bs64, workers 2..8, sharded PS",
        "Fig. 12: per-worker rate decreases only slightly, 69.94 → 68.83 \
         samples/s, from 2 to 8 workers — Alg. 1's overhead is negligible.",
        &["workers", "rate_per_worker", "aggregate_rate"],
    );
    for &workers in &[2usize, 4, 6, 8] {
        let mut cfg = cell("resnet50", 64, workers, 10.0, prophet(10.0));
        cfg.ps_shards = workers;
        let r = steady(&mut cfg, 8);
        out.row(vec![
            workers.to_string(),
            r1(r.rate),
            r1(r.rate * workers as f64),
        ]);
    }
    out
}

/// Fig. 13: the online Prophet's early-phase overhead — it trails
/// ByteScheduler while profiling, then overtakes.
pub fn fig13() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig13",
        "Profiling-phase overhead: per-iteration rate, online Prophet vs \
         ByteScheduler (ResNet50 bs64, 4 Gb/s)",
        "Fig. 13: Prophet's GPU utilisation is slightly below \
         ByteScheduler's in the first seconds (profiling under stock \
         behaviour), then exceeds it once planned.",
        &["iteration", "bytescheduler_rate", "prophet_online_rate"],
    );
    let mut pc = ProphetConfig::paper_default(4e9 / 8.0);
    pc.profile_iters = 6; // scaled-down window so the crossover is visible
    let run = |kind: SchedulerKind| {
        let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
        cfg.warmup_iters = 1;
        prophet::ps::sim::run_cluster(&cfg, 20)
    };
    let bs = run(bytescheduler());
    let pr = run(SchedulerKind::Prophet(pc));
    for i in 0..bs.iter_times.len().min(pr.iter_times.len()) {
        out.row(vec![
            i.to_string(),
            r1(64.0 / bs.iter_times[i].as_secs_f64()),
            r1(64.0 / pr.iter_times[i].as_secs_f64()),
        ]);
    }
    let series: Vec<(f64, f64)> = pr
        .iter_times
        .iter()
        .enumerate()
        .map(|(i, t)| (i as f64, 64.0 / t.as_secs_f64()))
        .collect();
    out.notes = format!(
        "{}Profiling covers iterations 0-5 (paper: 50); the rate steps up \
         once the plan is adopted.",
        ascii_series("prophet/iter", &series, 40)
    );
    out
}

/// §5.4's profiling wall time: 50 iterations of pre-training per model.
pub fn sec54_profiling() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "sec54_profiling",
        "Job-profiling wall time: 50 iterations of stock training",
        "§5.4: profiling costs 7 s (Inception-v3 bs32), 9.5 s (ResNet50 \
         bs64), 24.7 s (ResNet152 bs32) — negligible against thousands of \
         training iterations.",
        &["model", "batch", "profiling_seconds"],
    );
    for &(model, batch) in &[("inception_v3", 32u32), ("resnet50", 64), ("resnet152", 32)] {
        // Profiling runs under stock FIFO behaviour; its wall time is 50
        // simulated iterations of that.
        let mut cfg = cell(model, batch, 3, 10.0, SchedulerKind::Fifo);
        cfg.warmup_iters = 1;
        let r = prophet::ps::sim::run_cluster(&cfg, 8);
        let mean_iter: f64 = r.iter_times[1..]
            .iter()
            .map(|t| t.as_secs_f64())
            .sum::<f64>()
            / (r.iter_times.len() - 1) as f64;
        out.row(vec![
            model.into(),
            batch.to_string(),
            format!("{:.1}", mean_iter * 50.0),
        ]);
    }
    out.notes = "Computed as 50 × the steady FIFO iteration time at 10 Gb/s \
                 (the profiling phase runs under stock scheduling)."
        .into();
    out
}

/// Ablation (extension beyond the paper): which of Prophet's ingredients
/// buys what? Compares the full scheduler against variants with the
/// generation-deadline throttle disabled and with the regime-adaptive
/// credit pinned.
pub fn ablation_credit() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ablation_credit",
        "Prophet ablation: deadline throttle and regime-adaptive credit",
        "Not in the paper — isolates the contribution of each mechanism \
         DESIGN.md calls out.",
        &["gbps", "full", "no_deadline", "static_deep", "static_lean"],
    );
    for &gbps in &[2.0, 4.0] {
        let bps = gbps * 1e9 / 8.0;
        let rate = |cfgmod: &dyn Fn(&mut ProphetConfig)| {
            let mut pc = ProphetConfig::paper_default(bps);
            cfgmod(&mut pc);
            let kind = SchedulerKind::ProphetOracle(pc);
            let mut cfg = cell("resnet50", 64, 3, gbps, kind);
            steady(&mut cfg, 12).rate
        };
        let full = rate(&|_| {});
        let no_deadline = rate(&|pc| {
            // An "infinitely late" predicted deadline never throttles.
            pc.deadline_safety = -1000.0;
        });
        let static_deep = rate(&|pc| {
            pc.lean_credit_bytes = pc.base_credit_bytes;
        });
        let static_lean = rate(&|pc| {
            pc.base_credit_bytes = pc.lean_credit_bytes;
        });
        out.row(vec![
            format!("{gbps}"),
            r1(full),
            r1(no_deadline),
            r1(static_deep),
            r1(static_lean),
        ]);
    }
    out.notes = "full = deadline throttle + regime credit. The regime credit \
                 matters most near the compute/communication balance point; \
                 the deadline throttle protects gradient 0's start."
        .into();
    out
}

/// Used by the engine benchmarks: a tiny but complete cluster step.
pub fn smoke_run(kind: SchedulerKind) -> f64 {
    let mut cfg = cell("resnet18", 16, 2, 4.0, kind);
    cfg.warmup_iters = 1;
    prophet::ps::sim::run_cluster(&cfg, 2).rate
}

/// Used by benches: the job construction path (zoo + timing tables).
pub fn smoke_job() -> TrainingJob {
    TrainingJob::paper_setup("resnet50", 64)
}
