//! §5.2's effectiveness studies: Figs. 8-11 and the forward-propagation
//! start-time analysis.

use super::{bytescheduler, cell, pct, prophet, r1, steady};
use crate::output::{ascii_series, ExperimentOutput};
use prophet::core::SchedulerKind;
use prophet::sim::Duration;

/// Fig. 8: Prophet vs ByteScheduler training rate for the four evaluated
/// models across batch sizes.
///
/// The paper does not state Fig. 8's bandwidth. In our model every
/// work-conserving scheduler ties when a cell is deeply compute- or
/// communication-bound, so each cell runs at its **balance-point
/// bandwidth** — the shared rate at which the gradient volume takes
/// ~1.05x the backward pass to push — which is exactly the regime where
/// the paper's EC2 cells live (their absolute rates sit near the
/// crossover region of Table 2).
pub fn fig8() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig8",
        "Training rate: Prophet vs ByteScheduler (balance-point bandwidth, 3 workers)",
        "Fig. 8: Prophet improves the training rate by 10-40% over \
         ByteScheduler across models and batch sizes.",
        &[
            "model",
            "batch",
            "gbps",
            "bytescheduler",
            "prophet",
            "improvement",
        ],
    );
    let cells: &[(&str, &[u32])] = &[
        ("resnet18", &[16, 32, 64]),
        ("resnet50", &[16, 32, 64]),
        ("resnet152", &[16, 32]),
        ("inception_v3", &[16, 32]),
    ];
    for &(model, batches) in cells {
        for &batch in batches {
            let job = prophet::dnn::TrainingJob::paper_setup(model, batch);
            let shared_bps =
                job.total_bytes() as f64 / (1.05 * job.backward_duration().as_secs_f64());
            let gbps = (3.0 * shared_bps * 8.0 / 1e9).clamp(1.0, 10.0);
            let rate = |kind: SchedulerKind| {
                let mut cfg = cell(model, batch, 3, gbps, kind);
                steady(&mut cfg, 12).rate
            };
            let bs = rate(bytescheduler());
            let pr = rate(prophet(gbps));
            out.row(vec![
                model.into(),
                batch.to_string(),
                format!("{gbps:.1}"),
                r1(bs),
                r1(pr),
                pct(pr, bs),
            ]);
        }
    }
    out.notes = "Our ByteScheduler baseline is stronger than the 2021 artifact \
                 the paper measured (see EXPERIMENTS.md), so the margins are \
                 smaller than the paper's 10-40%, with the same sign and trend."
        .into();
    out
}

/// Fig. 9: GPU utilisation over time for ByteScheduler and Prophet.
pub fn fig9() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig9",
        "GPU utilisation over time, ResNet50 bs64, 4 Gb/s",
        "Fig. 9: average GPU utilisation 91.15% (Prophet) vs 67.85% \
         (ByteScheduler); both show periodic dips.",
        &["strategy", "avg_gpu_util", "min_window", "max_window"],
    );
    let mut notes = String::new();
    for kind in [bytescheduler(), prophet(4.0)] {
        let label = kind.label();
        let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
        cfg.sample_window = Duration::from_millis(100);
        let r = steady(&mut cfg, 14);
        let lo = r.gpu_util.iter().map(|&(_, u)| u).fold(1.0f64, f64::min);
        let hi = r.gpu_util.iter().map(|&(_, u)| u).fold(0.0f64, f64::max);
        out.row(vec![
            label.to_string(),
            format!("{:.1}%", r.avg_gpu_util * 100.0),
            format!("{:.2}", lo),
            format!("{:.2}", hi),
        ]);
        let series: Vec<(f64, f64)> = r
            .gpu_util
            .iter()
            .map(|&(t, u)| (t.as_secs_f64(), u))
            .collect();
        notes.push_str(&ascii_series(&format!("{label:<14}"), &series, 72));
    }
    out.notes = notes;
    out
}

/// Fig. 10: network throughput over time for ByteScheduler and Prophet.
pub fn fig10() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig10",
        "Worker network throughput over time, ResNet50 bs64, 4 Gb/s",
        "Fig. 10: Prophet's average throughput 10.3 MB/s vs ByteScheduler's \
         7.5 MB/s (+37.3%); both fluctuate with the block structure.",
        &["strategy", "avg_throughput_MBps", "peak_MBps"],
    );
    let mut notes = String::new();
    for kind in [bytescheduler(), prophet(4.0)] {
        let label = kind.label();
        let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
        cfg.sample_window = Duration::from_millis(100);
        let r = steady(&mut cfg, 14);
        let peak = r
            .net_throughput
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        out.row(vec![
            label.to_string(),
            format!("{:.1}", r.avg_net_throughput / 1e6),
            format!("{:.1}", peak / 1e6),
        ]);
        let series: Vec<(f64, f64)> = r
            .net_throughput
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v / 1e6))
            .collect();
        notes.push_str(&ascii_series(&format!("{label:<14}"), &series, 72));
    }
    out.notes = format!(
        "{notes}Absolute MB/s differ from the paper (their Fig. 10 axis is \
         per-sampling-window on a live NIC); compare the ratio and the \
         fluctuating shape."
    );
    out
}

/// Fig. 11: per-gradient transfer timing for MXNet, ByteScheduler, and
/// Prophet, plus the §5.2 summary statistics (mean wait / transfer).
pub fn fig11() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig11",
        "Per-gradient push start/end times, ResNet50 bs64, 4 Gb/s",
        "Fig. 11 / §5.2: mean transmission 446 ms (MXNet), 135 ms \
         (ByteScheduler), 125 ms (Prophet); mean wait 67 ms (ByteScheduler) \
         vs 26 ms (Prophet). Example gradient 30: waits 0.787/10.359/3.207 \
         ms, transfers 440/56/22.7 ms.",
        &[
            "strategy",
            "gradient",
            "ready_ms",
            "push_start_ms",
            "push_end_ms",
            "pull_end_ms",
        ],
    );
    let mut summary = String::new();
    for kind in [SchedulerKind::Fifo, bytescheduler(), prophet(4.0)] {
        let label = kind.label().to_string();
        let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
        let r = steady(&mut cfg, 10);
        let it = 8;
        let t0 = r.iter_starts[it];
        // Every 10th gradient keeps the table readable; the CSV has them all.
        for log in r.transfer_logs[it].iter() {
            if log.grad % 10 != 0 {
                continue;
            }
            out.row(vec![
                label.clone(),
                log.grad.to_string(),
                format!("{:.1}", log.ready.saturating_since(t0).as_millis_f64()),
                format!("{:.1}", log.push_start.saturating_since(t0).as_millis_f64()),
                format!("{:.1}", log.push_end.saturating_since(t0).as_millis_f64()),
                format!("{:.1}", log.pull_end.saturating_since(t0).as_millis_f64()),
            ]);
        }
        let g30 = r.transfer_logs[it].iter().find(|l| l.grad == 30).unwrap();
        summary.push_str(&format!(
            "{label}: mean wait {:.1} ms, mean transfer {:.1} ms; gradient 30 \
             waits {:.3} ms, transfers {:.3} ms\n",
            r.mean_wait_ms(it),
            r.mean_transfer_ms(it),
            g30.wait().as_millis_f64(),
            g30.transfer().as_millis_f64(),
        ));
    }
    out.notes = summary;
    out
}

/// §5.2's forward-propagation start analysis: when does the next iteration
/// begin, and how many iterations complete in 15 seconds?
pub fn sec52_fpstart() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "sec52_fpstart",
        "Iteration pipelining: next-iteration start and iterations per 15 s",
        "§5.2: Prophet starts iteration 61 at 856.796 ms vs ByteScheduler's \
         1416 ms, and completes iterations 60-74 in 15 s vs 60-71.",
        &["strategy", "next_iter_start_ms", "iterations_in_15s"],
    );
    for kind in [bytescheduler(), prophet(4.0)] {
        let label = kind.label();
        let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
        cfg.warmup_iters = 4;
        let r = prophet::ps::sim::run_cluster(&cfg, 24);
        // Anchor at iteration 6 (standing in for the paper's iteration 60).
        let anchor = 6;
        let next_start = r.iter_starts[anchor + 1].saturating_since(r.iter_starts[anchor]);
        out.row(vec![
            label.to_string(),
            format!("{:.1}", next_start.as_millis_f64()),
            r.iterations_within(anchor, Duration::from_secs(15))
                .to_string(),
        ]);
    }
    out.notes = "The anchor iteration plays the paper's iteration 60; both \
                 metrics are measured from its start."
        .into();
    out
}
