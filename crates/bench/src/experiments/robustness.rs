//! §5.3's robustness studies: Tables 2-3, the ResNet18 bandwidth study,
//! and the heterogeneous cluster.

use super::{bytescheduler, cell, p3, pct, prophet, r1, steady};
use crate::output::ExperimentOutput;
use prophet::core::SchedulerKind;

/// Table 2: ResNet50 bs64 rate under worker bandwidth 1-10 Gb/s.
pub fn table2() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "table2",
        "ResNet50 bs64 rate vs worker bandwidth (3 workers)",
        "Table 2: Prophet 27.7/47.9/60/67.06/69.29/69.5/70.6 vs \
         ByteScheduler 25.9/39.09/44/50.5/54.14/70/71.1 vs P3 \
         25.16/37.69/51.22/64.34/67.83/68.93/72.83 samples/s at \
         1000/2000/3000/4000/4500/6000/10000 Mb/s.",
        &["mbps", "prophet", "bytescheduler", "p3", "mxnet_fifo"],
    );
    for &mbps in &[1000.0, 2000.0, 3000.0, 4000.0, 4500.0, 6000.0, 10000.0] {
        let gbps = mbps / 1000.0;
        let rate = |kind: SchedulerKind| {
            let mut cfg = cell("resnet50", 64, 3, gbps, kind);
            steady(&mut cfg, 12).rate
        };
        out.row(vec![
            format!("{mbps}"),
            r1(rate(prophet(gbps))),
            r1(rate(bytescheduler())),
            r1(rate(p3())),
            r1(rate(SchedulerKind::Fifo)),
        ]);
    }
    out.notes = "Shapes to compare: all strategies converge at 10 Gb/s; P3 and \
                 FIFO degrade fastest as bandwidth tightens; Prophet tracks or \
                 beats the best baseline at every point."
        .into();
    out
}

/// Table 3: Prophet vs ByteScheduler across batch sizes.
pub fn table3() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "table3",
        "Prophet vs ByteScheduler across batch sizes (4 Gb/s, 3 workers)",
        "Table 3: ResNet18(16) +11.6%, ResNet18(64) +33%, ResNet50(16) \
         +1.5%, ResNet50(32) +22%, ResNet50(64) +36%; larger batches give \
         Prophet more room because the stepwise intervals stretch.",
        &["model", "batch", "prophet", "bytescheduler", "improvement"],
    );
    for &(model, batch) in &[
        ("resnet18", 16u32),
        ("resnet18", 64),
        ("resnet50", 16),
        ("resnet50", 32),
        ("resnet50", 64),
    ] {
        let rate = |kind: SchedulerKind| {
            let mut cfg = cell(model, batch, 3, 4.0, kind);
            steady(&mut cfg, 12).rate
        };
        let pr = rate(prophet(4.0));
        let bs = rate(bytescheduler());
        out.row(vec![
            model.into(),
            batch.to_string(),
            r1(pr),
            r1(bs),
            pct(pr, bs),
        ]);
    }
    out
}

/// §5.3's ResNet18 bandwidth study: MXNet vs P3 vs Prophet at 3 and
/// 10 Gb/s.
pub fn sec53_resnet18() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "sec53_resnet18",
        "ResNet18 bs64 under constrained vs fast networks",
        "§5.3: at 3 Gb/s MXNet 110, P3 137, Prophet 153 samples/s \
         (+11.7-39.1%); at 10 Gb/s all three ≈220 samples/s.",
        &["gbps", "mxnet_fifo", "p3", "prophet", "prophet_vs_fifo"],
    );
    for &gbps in &[3.0, 10.0] {
        let rate = |kind: SchedulerKind| {
            let mut cfg = cell("resnet18", 64, 3, gbps, kind);
            steady(&mut cfg, 12).rate
        };
        let fifo = rate(SchedulerKind::Fifo);
        let p3r = rate(p3());
        let pr = rate(prophet(gbps));
        out.row(vec![
            format!("{gbps}"),
            r1(fifo),
            r1(p3r),
            r1(pr),
            pct(pr, fifo),
        ]);
    }
    out
}

/// §5.3's heterogeneous cluster: one worker capped at 500 Mb/s.
pub fn sec53_hetero() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "sec53_hetero",
        "Heterogeneous cluster: worker 2 capped at 500 Mb/s (ResNet50 bs64)",
        "§5.3: Prophet 26.4, ByteScheduler 25.8, MXNet 15.09 samples/s — \
         the slow worker compresses the scheduling headroom, so Prophet's \
         edge over ByteScheduler shrinks to ~2.3% while both roughly \
         double MXNet.",
        &["strategy", "rate", "vs_mxnet"],
    );
    let mut rates = Vec::new();
    for kind in [SchedulerKind::Fifo, bytescheduler(), prophet(10.0)] {
        let label = kind.label();
        let mut cfg = cell("resnet50", 64, 3, 10.0, kind);
        cfg.worker_bps_overrides.push((2, 62.5e6)); // 500 Mb/s
        let r = steady(&mut cfg, 8);
        rates.push((label, r.rate));
    }
    let mxnet = rates[0].1;
    for (label, rate) in rates {
        out.row(vec![label.to_string(), r1(rate), pct(rate, mxnet)]);
    }
    out
}
