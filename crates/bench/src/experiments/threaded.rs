//! [extension] Threaded-runtime throughput: steady-state iterations/sec of
//! the real (non-simulated) sharded PS across worker and shard counts,
//! with the buffer-pool counters that certify the zero-copy data path.

use crate::output::ExperimentOutput;
use prophet::core::SchedulerKind;
use prophet::ps::threaded::{run_threaded_training, PsOptimizer, ThreadedConfig};
use std::time::Instant;

/// Iteration counts for the difference quotient (matches the criterion
/// bench methodology: `(wall(HI) - wall(LO)) / (HI - LO)` cancels thread
/// spawn and warm-up).
const LO: u64 = 2;
const HI: u64 = 8;

/// A quarter-scale cousin of the bench's VGG-proportioned stack (~0.4 M
/// parameters): communication-heavy enough to exercise the wire, small
/// enough that `repro all` stays interactive. The full-size headline
/// (8 workers / 4 shards, 6.3 M parameters, vs the pinned seed baseline)
/// lives in `cargo bench --bench threaded` → `BENCH_threaded.json`.
fn lite_cfg(workers: usize, shards: usize) -> ThreadedConfig {
    ThreadedConfig {
        workers,
        ps_shards: shards,
        widths: vec![128, 512, 512, 128, 10],
        samples: 64,
        noise: 0.8,
        seed: 77,
        global_batch: workers, // one sample per worker: comm-dominated
        iterations: HI,
        lr: 0.05,
        optimizer: PsOptimizer::Sgd { momentum: 0.9 },
        scheduler: SchedulerKind::Fifo,
        link_bps: None,
        check_invariants: false,
        ps_restart_at_iter: None,
        checkpoint_period: 4,
        checkpoint_retention: 2,
        fault_plan: Default::default(),
        retry: prophet::net::RetryPolicy::paper_default(),
        agg_threads: 0,
    }
}

/// One steady-state sample plus the pool counters of the HI run.
fn measure(cfg: &ThreadedConfig) -> (f64, u64, u64) {
    let mut lo = cfg.clone();
    lo.iterations = LO;
    let mut hi = cfg.clone();
    hi.iterations = HI;
    let t0 = Instant::now();
    let _ = run_threaded_training(&lo);
    let t_lo = t0.elapsed();
    let t1 = Instant::now();
    let r = run_threaded_training(&hi);
    let t_hi = t1.elapsed();
    let dt = t_hi.saturating_sub(t_lo).as_secs_f64().max(1e-9);
    ((HI - LO) as f64 / dt, r.arena_allocs, r.arena_recycles)
}

/// Registry entry: `repro ext_threaded`.
pub fn ext_threaded() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_threaded",
        "Threaded PS steady state: MLP(128-512-512-128-10), FIFO, unlimited link",
        "The simulator argues scheduling; this measures the real runtime. \
         Steady-state iterations/sec by the LO/HI difference quotient \
         (spawn and warm-up cancel), across shard counts at fixed worker \
         counts. `allocs` counts wire buffers served by fresh heap \
         allocations over a whole run — flat in the iteration count because \
         pushes slice pooled per-worker arenas and pulls slice per-update \
         encode caches; `recycles` counts pool-served checkouts and scales \
         with iterations.",
        &[
            "workers",
            "shards",
            "iters_per_sec",
            "vs_1_shard",
            "allocs",
            "recycles",
        ],
    );
    for workers in [4usize, 8] {
        let mut base_rate = f64::NAN;
        for shards in [1usize, 2, 4] {
            let cfg = lite_cfg(workers, shards);
            // Median of 3: one scheduler hiccup cannot swing a cell.
            let mut samples: Vec<(f64, u64, u64)> = (0..3).map(|_| measure(&cfg)).collect();
            samples.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (rate, allocs, recycles) = samples[1];
            if shards == 1 {
                base_rate = rate;
            }
            out.row(vec![
                workers.to_string(),
                shards.to_string(),
                format!("{rate:.1}"),
                format!("{:.2}x", rate / base_rate),
                allocs.to_string(),
                recycles.to_string(),
            ]);
        }
    }
    out.notes = "Finding: on a single-core box extra shards buy little wall \
                 clock (threads time-slice one CPU) — the speedup over the \
                 seed runtime comes from the zero-copy data path: pooled \
                 arenas instead of per-message Vec copies, in-place \
                 aggregation straight from wire bytes, one encode per \
                 parameter update shared by every pull, and batched acks. \
                 `allocs` stays at workers + tensors regardless of \
                 iteration count; the full-size headline vs the pinned \
                 seed baseline is produced by `cargo bench --bench \
                 threaded` into BENCH_threaded.json."
        .into();
    out
}
