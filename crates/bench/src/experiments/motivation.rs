//! §2's motivation studies: Figs. 2, 3(a), 3(b), 4, and the illustrative
//! Fig. 5 comparison.

use super::{cell, r1, steady};
use crate::output::{ascii_series, ExperimentOutput};
use prophet::core::{AutoTuneConfig, ByteSchedulerConfig, SchedulerKind};
use prophet::dnn::{GenerationModel, GpuSpec, TrainingJob};
use prophet::sim::TraceRecorder;

/// Fig. 2: GPU utilisation and network throughput over time under default
/// MXNet. The signature is the utilisation collapsing to ~0 during the
/// pull phase of every iteration.
pub fn fig2() -> ExperimentOutput {
    let mut cfg = cell("resnet152", 32, 3, 3.0, SchedulerKind::Fifo);
    cfg.sample_window = prophet::sim::Duration::from_millis(100);
    let r = steady(&mut cfg, 10);

    let mut out = ExperimentOutput::new(
        "fig2",
        "GPU util + network throughput over time, default MXNet, ResNet152 bs32",
        "Fig. 2: GPU utilisation repeatedly drops to zero during pulls; \
         network idles during compute.",
        &["window_start_s", "gpu_util", "net_throughput_MBps"],
    );
    let net: std::collections::BTreeMap<u64, f64> = r
        .net_throughput
        .iter()
        .map(|&(t, v)| (t.as_nanos(), v))
        .collect();
    for &(t, u) in &r.gpu_util {
        let n = net.get(&t.as_nanos()).copied().unwrap_or(0.0);
        out.row(vec![
            format!("{:.2}", t.as_secs_f64()),
            format!("{u:.3}"),
            format!("{:.1}", n / 1e6),
        ]);
    }
    let idle = r.gpu_util.iter().filter(|&&(_, u)| u < 0.05).count();
    out.notes = format!(
        "{}{}\nGPU fully idle in {idle} of {total} windows — the Fig. 2 valleys.",
        ascii_series("gpu util   ", &to_xy(&r.gpu_util), 72),
        ascii_series("net MB/s   ", &to_xy(&r.net_throughput), 72),
        idle = idle,
        total = r.gpu_util.len(),
    );
    out
}

fn to_xy(series: &[(prophet::sim::SimTime, f64)]) -> Vec<(f64, f64)> {
    series.iter().map(|&(t, v)| (t.as_secs_f64(), v)).collect()
}

/// Fig. 3(a): P3's training rate vs partition size.
pub fn fig3a() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig3a",
        "P3 training rate vs partition size, ResNet50 bs64, 4 Gb/s",
        "Fig. 3(a): smaller partitions dramatically decrease the training \
         rate (per-partition blocking overhead).",
        &["partition_MB", "rate_samples_per_s"],
    );
    for &mb in &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let kind = SchedulerKind::P3 {
            partition_bytes: (mb * 1024.0 * 1024.0) as u64,
        };
        let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
        let r = steady(&mut cfg, 9);
        out.row(vec![format!("{mb}"), r1(r.rate)]);
    }
    out.notes = "Rate should rise monotonically with partition size until the \
                 preemption-granularity cost flattens it."
        .into();
    out
}

/// Fig. 3(b): the ByteScheduler credit auto-tuner's rate fluctuation and
/// credit wander.
pub fn fig3b() -> ExperimentOutput {
    let kind = SchedulerKind::ByteScheduler(ByteSchedulerConfig {
        autotune: Some(AutoTuneConfig {
            interval_iters: 2,
            ..AutoTuneConfig::default()
        }),
        ..ByteSchedulerConfig::default()
    });
    let mut cfg = cell("resnet50", 64, 3, 3.0, kind);
    cfg.warmup_iters = 1;
    let r = prophet::ps::sim::run_cluster(&cfg, 40);

    let mut out = ExperimentOutput::new(
        "fig3b",
        "ByteScheduler auto-tuning: per-iteration rate and credit",
        "Fig. 3(b): the training rate fluctuates 44-56 samples/s while the \
         credit is tuned from ~3 MB to over 13 MB.",
        &["iteration", "rate_samples_per_s", "credit_MB"],
    );
    let credits: std::collections::BTreeMap<u64, u64> = r.credit_trace.iter().copied().collect();
    for (i, t) in r.iter_times.iter().enumerate() {
        let rate = 64.0 / t.as_secs_f64();
        let credit = credits
            .get(&(i as u64))
            .map(|&c| format!("{:.1}", c as f64 / 1e6))
            .unwrap_or_default();
        out.row(vec![format!("{i}"), r1(rate), credit]);
    }
    let rates: Vec<(f64, f64)> = r
        .iter_times
        .iter()
        .enumerate()
        .map(|(i, t)| (i as f64, 64.0 / t.as_secs_f64()))
        .collect();
    out.notes = ascii_series("rate/iter  ", &rates, 60);
    out
}

/// Fig. 4: the stepwise release staircase for ResNet50 (MXNet-style
/// aggregation) and VGG19 (TensorFlow-style).
pub fn fig4() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig4",
        "Stepwise pattern of gradient release times",
        "Fig. 4: ResNet50/MXNet releases gradients in bursts (e.g. 144-156 \
         together, then 134-143); VGG19/TensorFlow shows four coarse blocks \
         over gradients 0-37.",
        &[
            "model",
            "block",
            "time_ms",
            "gradients",
            "count",
            "bytes_MB",
        ],
    );
    let jobs = [
        ("resnet50/mxnet", TrainingJob::paper_setup("resnet50", 64)),
        (
            "vgg19/tensorflow",
            TrainingJob::new(
                prophet::dnn::zoo::vgg19(),
                GpuSpec::m60_pair("vgg19"),
                64,
                GenerationModel::tensorflow_like(),
            ),
        ),
    ];
    for (label, job) in jobs {
        let events = job.generation_events();
        let blocks = GenerationModel::blocks(events);
        for (i, block) in blocks.iter().enumerate() {
            let t = events
                .iter()
                .find(|e| e.id == block[0])
                .map(|e| e.ready_at.as_millis_f64())
                .unwrap_or(0.0);
            let bytes: u64 = block.iter().map(|&g| job.size(g)).sum();
            out.row(vec![
                label.to_string(),
                format!("{i}"),
                format!("{t:.1}"),
                format!(
                    "{}..{}",
                    block.iter().min().unwrap(),
                    block.iter().max().unwrap()
                ),
                format!("{}", block.len()),
                format!("{:.2}", bytes as f64 / 1e6),
            ]);
        }
    }
    out.notes = "Each row is one stair step: a burst of gradients released \
                 together by the KVStore-style aggregation."
        .into();
    out
}

/// Fig. 5: the four strategies on the same small workload, with the
/// per-strategy iteration structure that the paper's cartoon illustrates.
pub fn fig5() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig5",
        "Illustrative schedule comparison (ResNet18 bs64, 3 Gb/s, 2 workers)",
        "Fig. 5: FIFO blocks gradient 0 behind bulk transfers; P3 preempts \
         but pays per-partition overhead; ByteScheduler holds a static \
         credit; Prophet times its blocks to the generation windows.",
        &[
            "strategy",
            "rate",
            "iter_ms",
            "g0_wait_ms",
            "g0_update_ms",
            "fwd_start_after_bwd_ms",
        ],
    );
    let mut gantts = String::new();
    for kind in SchedulerKind::paper_lineup(3e9 / 8.0) {
        let label = kind.label();
        let mut cfg = cell("resnet18", 64, 2, 3.0, kind);
        cfg.trace = true;
        cfg.compute_jitter = 0.0;
        let r = steady(&mut cfg, 6);
        let it = 4;
        let logs = &r.transfer_logs[it];
        let g0 = logs.iter().find(|l| l.grad == 0).unwrap();
        out.row(vec![
            label.to_string(),
            r1(r.rate),
            format!("{:.0}", r.iter_times[it].as_millis_f64()),
            format!("{:.1}", g0.wait().as_millis_f64()),
            format!(
                "{:.1}",
                g0.pull_end.saturating_since(g0.ready).as_millis_f64()
            ),
            format!(
                "{:.1}",
                g0.pull_end.saturating_since(g0.ready).as_millis_f64()
            ),
        ]);
        // Clip one iteration's trace into a small Gantt chart.
        let (t0, t1) = (r.iter_starts[it], r.iter_starts[it + 1]);
        let mut clip = TraceRecorder::enabled();
        for s in r.trace.spans() {
            if s.start >= t0 && s.end <= t1 {
                clip.record(&s.lane, &s.label, s.key, s.start, s.end);
            }
        }
        gantts.push_str(&format!("\n{label}:\n{}", clip.to_ascii_gantt(90)));
    }
    out.notes = format!(
        "g0_update_ms = time from gradient 0's generation to its updated \
         parameters arriving (u(0) − c(0) in Eq. 2).\n{gantts}"
    );
    out
}
