//! One module per section of the paper's evaluation.

pub mod chaos;
pub mod effectiveness;
pub mod elastic;
pub mod extensions;
pub mod faults;
pub mod integrity;
pub mod motivation;
pub mod overhead;
pub mod robustness;
pub mod scale;
pub mod threaded;

use prophet::core::{ProphetConfig, SchedulerKind};
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig, RunResult};

/// The standard testbed cell used across experiments: 1 PS + `workers`
/// nodes at `gbps`, paper defaults otherwise.
pub fn cell(
    model: &str,
    batch: u32,
    workers: usize,
    gbps: f64,
    kind: SchedulerKind,
) -> ClusterConfig {
    ClusterConfig::paper_cell(workers, gbps, TrainingJob::paper_setup(model, batch), kind)
}

/// Steady-state run with enough warm-up for the monitor to settle.
pub fn steady(cfg: &mut ClusterConfig, iters: u64) -> RunResult {
    cfg.warmup_iters = (iters / 3).max(2);
    run_cluster(cfg, iters)
}

/// The steady-state Prophet configuration for a `gbps` network.
pub fn prophet(gbps: f64) -> SchedulerKind {
    SchedulerKind::ProphetOracle(ProphetConfig::paper_default(gbps * 1e9 / 8.0))
}

/// ByteScheduler at the paper's default credit.
pub fn bytescheduler() -> SchedulerKind {
    SchedulerKind::ByteScheduler(Default::default())
}

/// P3 with the paper's 4 MB partitions.
pub fn p3() -> SchedulerKind {
    SchedulerKind::P3 {
        partition_bytes: 4 << 20,
    }
}

/// Format samples/sec.
pub fn r1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a ratio as a percentage improvement.
pub fn pct(new: f64, old: f64) -> String {
    format!("{:+.1}%", (new / old - 1.0) * 100.0)
}
