//! Extensions beyond the paper's evaluation: the §7 future-work items
//! (ASP synchronisation, newer GPU instances) plus the dynamic-network
//! robustness the paper motivates in §1/§4.2 and a straggler study.

use super::{bytescheduler, cell, pct, prophet, r1, steady};
use crate::output::ExperimentOutput;
use prophet::core::SchedulerKind;
use prophet::dnn::{GenerationModel, GpuSpec, TrainingJob};
use prophet::ps::sim::{run_cluster, ClusterConfig, SyncMode};
use prophet::sim::Duration;

/// §7 future work (1): "validating the stepwise pattern with the ASP
/// model". Runs BSP and ASP side by side: the stepwise release pattern is
/// a *worker-local* phenomenon, so Prophet's scheduling survives the
/// switch, and ASP removes the cross-worker barrier cost.
pub fn ext_asp() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_asp",
        "ASP vs BSP: ResNet50 bs64, 4 Gb/s, 3 workers (5% compute jitter)",
        "§7 future work: the paper defers ASP validation. Expectation: the \
         stepwise pattern (worker-local) persists, Prophet still leads, and \
         ASP's barrier-free updates absorb jitter that stalls BSP.",
        &["sync", "strategy", "rate", "vs_fifo"],
    );
    for sync in [SyncMode::Bsp, SyncMode::Asp] {
        let mut rates: Vec<(String, f64)> = Vec::new();
        for kind in [SchedulerKind::Fifo, bytescheduler(), prophet(4.0)] {
            let label = kind.label().to_string();
            let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
            cfg.sync = sync;
            cfg.compute_jitter = 0.05;
            let r = steady(&mut cfg, 12);
            rates.push((label, r.rate));
        }
        let fifo = rates[0].1;
        for (label, rate) in rates {
            out.row(vec![format!("{sync:?}"), label, r1(rate), pct(rate, fifo)]);
        }
    }
    out.notes = "Finding: every ASP rate exceeds its BSP counterpart (no \
                 cross-worker barrier), and the *spread between strategies \
                 collapses* — without the barrier, a worker's forward pass \
                 only waits on its own pushes, so gradient-0 timeliness \
                 matters far less. Prophet's headroom is largely a BSP \
                 phenomenon, which is consistent with the paper scoping \
                 itself to BSP (§6.2)."
        .into();
    out
}

/// §7 future work (2): newer GPU instances (p3 = 8x V100, p4 = 8x A100).
/// Faster compute makes the same job more communication-bound, widening
/// the scheduling headroom.
pub fn ext_gpus() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_gpus",
        "GPU generations: ResNet50 bs64, 10 Gb/s, 3 workers",
        "§7 future work: the paper defers p3/p4 instances. Expectation: the \
         faster the GPU, the more communication-bound the job, the larger \
         the scheduling effect — at M60 speed 10 Gb/s is compute-bound and \
         everyone ties.",
        &[
            "gpu",
            "ceiling",
            "fifo",
            "bytescheduler",
            "prophet",
            "prophet_vs_fifo",
        ],
    );
    type GpuCtor = fn(&str) -> GpuSpec;
    let gpus: &[(&str, GpuCtor)] = &[
        ("2x M60 (g3.8xl)", GpuSpec::m60_pair as GpuCtor),
        ("8x V100 (p3.16xl)", GpuSpec::v100_octet as GpuCtor),
        ("8x A100 (p4d.24xl)", GpuSpec::a100_octet as GpuCtor),
    ];
    for &(label, ctor) in gpus {
        let job = || {
            TrainingJob::new(
                prophet::dnn::zoo::resnet50(),
                ctor("resnet50"),
                64,
                GenerationModel::mxnet_like(),
            )
        };
        let ceiling = job().compute_rate_ceiling();
        let rate = |kind: SchedulerKind| {
            let mut cfg = ClusterConfig::paper_cell(3, 10.0, job(), kind);
            steady(&mut cfg, 12).rate
        };
        let fifo = rate(SchedulerKind::Fifo);
        let bs = rate(bytescheduler());
        let pr = rate(prophet(10.0));
        out.row(vec![
            label.into(),
            r1(ceiling),
            r1(fifo),
            r1(bs),
            r1(pr),
            pct(pr, fifo),
        ]);
    }
    out
}

/// Dynamic network environments (§1, §4.2): the fabric's bandwidth drops
/// mid-run and recovers; Prophet re-plans from the 5-second monitor.
pub fn ext_dynamic_bw() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_dynamic_bw",
        "Dynamic bandwidth: 4 Gb/s -> 1.5 Gb/s at t=15s -> 4 Gb/s at t=40s",
        "§1/§4.2: static partition/credit configurations 'can hardly adapt \
         to the dynamic network environments'; Prophet re-plans whenever \
         the monitored bandwidth moves beyond tolerance.",
        &[
            "strategy",
            "rate_overall",
            "rate_during_dip",
            "estimates_seen",
        ],
    );
    for kind in [bytescheduler(), prophet(4.0)] {
        let label = kind.label();
        let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
        cfg.bandwidth_schedule = vec![
            (Duration::from_secs(15), 1.5e9 / 8.0),
            (Duration::from_secs(40), 4e9 / 8.0),
        ];
        cfg.warmup_iters = 3;
        let r = run_cluster(&cfg, 45);
        // Rate inside the dip: iterations whose start falls in [15s, 40s).
        let mut dip_time = 0.0;
        let mut dip_iters = 0u32;
        for (i, &start) in r.iter_starts.iter().enumerate() {
            let s = start.as_secs_f64();
            if (15.0..40.0).contains(&s) && i < r.iter_times.len() {
                dip_time += r.iter_times[i].as_secs_f64();
                dip_iters += 1;
            }
        }
        let dip_rate = if dip_time > 0.0 {
            dip_iters as f64 * 64.0 / dip_time
        } else {
            0.0
        };
        let distinct_estimates = {
            let mut v: Vec<i64> = r
                .bandwidth_estimates
                .iter()
                .map(|&(_, b)| (b / 1e7) as i64)
                .collect();
            v.dedup();
            v.len()
        };
        out.row(vec![
            label.to_string(),
            r1(r.rate),
            r1(dip_rate),
            distinct_estimates.to_string(),
        ]);
    }
    out.notes = "`estimates_seen` counts distinct 10 MB/s-granularity monitor \
                 readings — it must exceed 2 if the monitor tracked the dip \
                 and the recovery."
        .into();
    out
}

/// The full related-work lineup (§6): all six strategies on the same
/// cells, including the two comparators the paper cites but does not
/// measure (TicTac, MG-WFBP).
pub fn ext_related_work() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_related_work",
        "Six-strategy comparison: ResNet50 bs64, 3 workers",
        "§6 positions Prophet against P3/TicTac (priority, blocking sends) \
         and MG-WFBP/ByteScheduler (overhead amortisation). The paper \
         measures three of them; this runs all six.",
        &[
            "gbps",
            "mxnet_fifo",
            "tictac",
            "p3",
            "mg_wfbp",
            "bytescheduler",
            "prophet",
        ],
    );
    for &gbps in &[2.0, 4.0, 10.0] {
        let rate = |kind: SchedulerKind| {
            let mut cfg = cell("resnet50", 64, 3, gbps, kind);
            steady(&mut cfg, 10).rate
        };
        out.row(vec![
            format!("{gbps}"),
            r1(rate(SchedulerKind::Fifo)),
            r1(rate(SchedulerKind::TicTac)),
            r1(rate(SchedulerKind::P3 {
                partition_bytes: 4 << 20,
            })),
            r1(rate(SchedulerKind::MgWfbp {
                merge_bytes: 16 << 20,
            })),
            r1(rate(bytescheduler())),
            r1(rate(prophet(gbps))),
        ]);
    }
    out.notes = "Expected order in the constrained band: FIFO <= TicTac/P3 \
                 (priority, but blocking) and FIFO <= MG-WFBP (amortised, \
                 but no priority) < ByteScheduler < Prophet; everyone \
                 converges at 10 Gb/s."
        .into();
    out
}

/// Straggler study: one worker's GPU runs at 70% speed. Under BSP the
/// whole cluster waits; under ASP only the straggler slows down.
pub fn ext_straggler() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_straggler",
        "Compute straggler: worker 2 at 0.7x GPU speed (ResNet50 bs64, 10 Gb/s)",
        "Related-work axis (LBBSP §6.2): non-dedicated environments have \
         slow workers. BSP pays the straggler tax on every gradient's \
         barrier; ASP does not.",
        &["sync", "straggler", "rate_worker0", "slowdown"],
    );
    for sync in [SyncMode::Bsp, SyncMode::Asp] {
        let mut base_rate = 0.0;
        for straggler in [false, true] {
            let mut cfg = cell("resnet50", 64, 3, 10.0, prophet(10.0));
            cfg.sync = sync;
            if straggler {
                cfg.worker_compute_scale = vec![(2, 0.7)];
            }
            let r = steady(&mut cfg, 10);
            if !straggler {
                base_rate = r.rate;
            }
            out.row(vec![
                format!("{sync:?}"),
                straggler.to_string(),
                r1(r.rate),
                if straggler {
                    pct(r.rate, base_rate)
                } else {
                    "—".into()
                },
            ]);
        }
    }
    out
}
