//! [extension] Deterministic fault injection: how each strategy degrades
//! and recovers under the failure classes the fault layer models.

use super::{bytescheduler, cell, prophet, r1, steady};
use crate::output::ExperimentOutput;
use prophet::core::SchedulerKind;
use prophet::sim::{Duration, FaultPlan, FaultSpec, SimTime};

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + Duration::from_millis(ms)
}

/// Fault matrix: each failure class from `prophet_sim::fault`, injected
/// mid-run into the same ResNet50 cell, across the FIFO / ByteScheduler /
/// Prophet lineup. `recovery_ms` is how far the worst iteration stretched
/// past the median — the visible cost of absorbing the fault.
pub fn ext_faults() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_faults",
        "Fault injection: ResNet50 bs64, 3 workers, 4 Gb/s",
        "§1/§4.2 motivate Prophet with dynamic, unreliable networks but the \
         paper only varies bandwidth. This injects deterministic link \
         failures, degradation, message loss, a PS shard crash, and a worker \
         stall, and reports each strategy's degradation and recovery cost.",
        &[
            "fault",
            "strategy",
            "rate",
            "recovery_ms",
            "retries",
            "recoveries",
        ],
    );
    // Nodes: 0 = the PS shard, 1..=3 = workers. Faults land around t=2 s,
    // well past warm-up for this cell (~0.8 s/iteration).
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::empty()),
        (
            "link_down",
            FaultPlan::new(vec![FaultSpec::LinkDown {
                node: 2,
                at: at_ms(2_000),
                dur: Duration::from_millis(400),
            }]),
        ),
        (
            "link_degrade",
            FaultPlan::new(vec![FaultSpec::LinkDegrade {
                node: 2,
                at: at_ms(2_000),
                factor: 0.25,
                dur: Duration::from_millis(2_000),
            }]),
        ),
        (
            "msg_loss",
            FaultPlan::new(vec![FaultSpec::MsgLoss {
                rate: 0.05,
                at: at_ms(2_000),
                dur: Duration::from_millis(2_000),
            }]),
        ),
        (
            "shard_crash",
            FaultPlan::new(vec![FaultSpec::ShardCrash {
                shard: 0,
                at: at_ms(2_500),
                restart_after: Duration::from_millis(300),
            }]),
        ),
        (
            "worker_stall",
            FaultPlan::new(vec![FaultSpec::WorkerStall {
                worker: 1,
                at: at_ms(2_000),
                dur: Duration::from_millis(800),
            }]),
        ),
    ];
    for (fault, plan) in &plans {
        for kind in [SchedulerKind::Fifo, bytescheduler(), prophet(4.0)] {
            let label = kind.label().to_string();
            let mut cfg = cell("resnet50", 64, 3, 4.0, kind);
            cfg.fault_plan = plan.clone();
            let r = steady(&mut cfg, 12);
            assert_eq!(
                r.iter_times.len(),
                12,
                "{label} under {fault}: incomplete run"
            );
            let mut ts: Vec<f64> = r.iter_times.iter().map(|d| d.as_millis_f64()).collect();
            let max = ts.iter().cloned().fold(0.0, f64::max);
            ts.sort_by(|a, b| a.partial_cmp(b).expect("finite iter times"));
            let median = ts[ts.len() / 2];
            out.row(vec![
                fault.to_string(),
                label,
                r1(r.rate),
                format!("{:.1}", max - median),
                r.fault_stats.retries.to_string(),
                r.fault_stats.recoveries.to_string(),
            ]);
        }
    }
    out.notes = "Every cell completes all 12 iterations — no strategy hangs \
                 or drops a gradient. `recovery_ms` (worst iteration minus \
                 median) isolates the fault's absorption cost from the \
                 steady-state rate: transient faults (link_down, shard_crash, \
                 worker_stall) show up there, sustained ones (link_degrade, \
                 msg_loss) mostly in `rate`. Prophet additionally enters \
                 degraded mode when failures silence the bandwidth monitor \
                 and replans once estimates stabilise."
        .into();
    out
}
