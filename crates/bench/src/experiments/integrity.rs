//! [extension] End-to-end data integrity: silent-corruption plans
//! (bit-flipped/truncated wire frames, NaN-poisoned gradients, corrupted
//! checkpoint snapshots) judged by the integrity oracles, with detection
//! and recovery cost accounting per scheduler and threaded-runtime
//! bit-identity legs.

use super::cell;
use crate::output::ExperimentOutput;
use prophet::core::SchedulerKind;
use prophet::ps::sim::run_cluster;
use prophet::ps::threaded::{run_threaded_training, ThreadedConfig, ThreadedResult};
use prophet::ps::{
    check_corruption_plan, check_threaded_bit_identity, run_sim_checked, OracleBudget,
};
use prophet::sim::{ChaosGen, ChaosProfile, Duration, FaultPlan, FaultSpec, SimTime};

/// Iterations per simulated corruption run (plus one warm-up): enough
/// checkpoint cadence rounds for a poisoned snapshot and the shard death
/// that exposes it to both land.
const SIM_ITERS: u64 = 6;

/// Registry entry: a small fixed-seed sweep so `repro all` stays fast.
/// `repro ext_integrity <seed> [budget]` runs the same sweep at any scale.
pub fn ext_integrity() -> ExperimentOutput {
    run_integrity(42, 8)
}

/// Median of a sorted-on-demand sample, rendered with `fmt`.
fn median<T: Copy + Ord>(xs: &mut [T], fmt: impl Fn(T) -> String) -> String {
    if xs.is_empty() {
        return "-".to_string();
    }
    xs.sort_unstable();
    fmt(xs[xs.len() / 2])
}

/// The integrity sweep: per scheduler in the paper lineup, run `budget`
/// corruption plans (each twice — the second run is the deterministic-
/// detection replay) through the simulator, judge every pair with
/// [`check_corruption_plan`], and aggregate what the integrity layer
/// accounted: frames caught by checksum verify, snapshots written corrupt,
/// restores that fell back past them, and generations skipped. Two
/// threaded legs per scheduler replay a wire-corruption plan and a
/// forced-fallback plan on the real runtime and hold the final model to
/// **bit-identity** with its fault-free twin — the "no corrupt byte ever
/// reaches the accumulator or restored params" oracle on real bytes.
pub fn run_integrity(seed: u64, budget: usize) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_integrity",
        "Data integrity: ResNet18 bs16, 3 workers, 2 PS shards, 10 Gb/s",
        "The paper assumes the transport delivers gradients intact. This \
         sweeps silent-corruption plans — in-flight frame damage, NaN \
         poison, corrupted checkpoint generations — sampled from a seeded \
         generator, and holds every run to the integrity contract: \
         checksummed frames detected and retransmitted, corrupt snapshots \
         detected at restore with deterministic fallback to an older intact \
         generation, bounded slowdown, and replay-stable detection \
         counters. The threaded legs rerun fixed corruption plans on the \
         real PS runtime and require the final model bit-identical to a \
         fault-free twin.",
        &[
            "strategy",
            "plans",
            "violations",
            "frames_corrupted_med",
            "fallbacks_total",
            "fallback_depth_total",
            "thr_detections",
            "thr_nack_kb",
            "thr_fallback_depth",
            "thr_bit_identical",
        ],
    );

    let oracle = OracleBudget::paper_default();
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label().to_string();
        let mut base = cell("resnet18", 16, 3, 10.0, kind.clone());
        base.ps_shards = 2;
        base.warmup_iters = 1;
        base.check_invariants = true;
        let golden = run_cluster(&base, SIM_ITERS);
        let horizon = Duration::from_nanos(golden.duration.as_nanos());
        let profile = ChaosProfile::corruption(base.workers, base.ps_shards, horizon, SIM_ITERS);
        let mut gen = ChaosGen::new(seed);

        let mut violations = 0usize;
        let mut frames: Vec<u64> = Vec::new();
        let mut fallbacks_total = 0u64;
        let mut depth_total = 0u64;
        for _ in 0..budget {
            let plan = gen.next_plan(&profile);
            let mut corrupted = base.clone();
            corrupted.fault_plan = plan.clone();
            let outcome = run_sim_checked(&corrupted, SIM_ITERS);
            let rerun = run_sim_checked(&corrupted, SIM_ITERS);
            let verdict = check_corruption_plan(&golden, &outcome, &rerun, &oracle);
            if !verdict.ok() {
                violations += 1;
                eprintln!(
                    "[ext_integrity] {label}: contract violation: {:?}\nplan: {plan:?}",
                    verdict.violations
                );
            }
            if let Ok(r) = &outcome {
                frames.push(r.fault_stats.frames_corrupted);
                fallbacks_total += r.elastic.restore_fallbacks;
                depth_total += r.elastic.fallback_depth;
            }
        }

        let legs = threaded_legs(kind);
        out.row(vec![
            label,
            budget.to_string(),
            violations.to_string(),
            median(&mut frames, |f| f.to_string()),
            fallbacks_total.to_string(),
            depth_total.to_string(),
            legs.detections.to_string(),
            format!("{:.1}", legs.nack_bytes as f64 / 1024.0),
            legs.fallback_depth.to_string(),
            format!("{}/2", legs.bit_identical),
        ]);
    }
    out.notes = format!(
        "Seed {seed}, {budget} corruption plans per strategy, each run twice \
         (the second run is the deterministic-detection replay; any counter \
         drift is a violation). frames_corrupted is the per-plan median of \
         frames a receiver's CRC verify rejected; fallbacks/depth count \
         restores that skipped corrupted snapshot generations. The thr_* \
         columns run two fixed plans on the real threaded PS per strategy — \
         a wire-corruption window and a poisoned-newest-snapshot shard \
         death — and count final models bit-identical to the fault-free \
         twin (2/2 = the integrity contract held on real bytes).",
    );
    out
}

/// Aggregates from the two threaded bit-identity legs.
struct ThreadedLegs {
    /// Corrupt frames rejected + NaN pushes quarantined, both legs.
    detections: u64,
    /// Bytes retransmitted in response to NACKs, both legs.
    nack_bytes: u64,
    /// Corrupted generations skipped by the forced-fallback restore.
    fallback_depth: u64,
    /// Legs (of 2) whose final model matched the fault-free twin bitwise.
    bit_identical: usize,
}

/// Run one corruption plan on the threaded runtime next to its fault-free
/// twin; count it bit-identical when the byte-level oracle is silent.
fn bit_identity_leg(cfg: &ThreadedConfig) -> (ThreadedResult, bool) {
    let corrupted = run_threaded_training(cfg);
    let mut clean_cfg = cfg.clone();
    clean_cfg.fault_plan = FaultPlan::empty();
    let clean = run_threaded_training(&clean_cfg);
    let ok = check_threaded_bit_identity(&clean, &corrupted).is_empty();
    (corrupted, ok)
}

/// The two fixed threaded plans: a sustained wire-corruption window
/// (detection + NACK retransmit across pushes, pulls and acks), and a
/// poisoned newest snapshot exposed by a shard death (verified restore
/// falling back a generation).
fn threaded_legs(kind: SchedulerKind) -> ThreadedLegs {
    let mut wire = ThreadedConfig::small(3, kind.clone());
    wire.global_batch = 48;
    wire.iterations = 8;
    wire.fault_plan = FaultPlan::new(vec![FaultSpec::PayloadCorrupt {
        rate: 0.10,
        at: SimTime::ZERO,
        dur: Duration::from_secs(60),
    }]);
    let (wire_r, wire_ok) = bit_identity_leg(&wire);

    let mut fallback = ThreadedConfig::small(3, kind);
    fallback.ps_shards = 2;
    fallback.global_batch = 48;
    fallback.iterations = 8;
    fallback.checkpoint_period = 4; // snapshots close iters 3 and 7
    fallback.fault_plan = FaultPlan::new(vec![
        FaultSpec::CheckpointCorrupt {
            shard: 0,
            at_iter: 2, // fires at the iter-3 snapshot: newest before death
        },
        FaultSpec::ShardFail {
            shard: 0,
            at_iter: 6,
        },
    ]);
    let (fb_r, fb_ok) = bit_identity_leg(&fallback);

    ThreadedLegs {
        detections: wire_r.corrupt_frames_detected
            + wire_r.nan_quarantined
            + fb_r.corrupt_frames_detected
            + fb_r.nan_quarantined,
        nack_bytes: wire_r.nack_retransmit_bytes + fb_r.nack_retransmit_bytes,
        fallback_depth: fb_r.fallback_depth,
        bit_identical: usize::from(wire_ok) + usize::from(fb_ok),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "release-tier: runs many simulations")]
    fn small_sweep_is_violation_free() {
        let out = run_integrity(42, 4);
        assert_eq!(out.rows.len(), 4, "one row per lineup strategy");
        for row in &out.rows {
            assert_eq!(row[2], "0", "{}: contract violations in {row:?}", row[0]);
            assert_eq!(row[9], "2/2", "{}: threaded leg lost bit-identity", row[0]);
            assert_ne!(
                row[8], "0",
                "{}: forced-fallback leg never fell back",
                row[0]
            );
        }
    }
}
