//! [extension] Chaos search: randomized fault plans judged by the
//! safety/liveness oracles, with automatic shrinking of any failure and a
//! threaded-runtime parity leg.

use super::cell;
use crate::output::ExperimentOutput;
use prophet::core::SchedulerKind;
use prophet::net::RetryPolicy;
use prophet::ps::sim::run_cluster;
use prophet::ps::threaded::{run_threaded_training, ThreadedConfig};
use prophet::ps::{check_plan, run_sim_checked, OracleBudget};
use prophet::sim::{plan_to_rust, shrink, ChaosGen, ChaosProfile, Duration};

/// Iterations per simulated chaos run (plus one warm-up), matching the
/// pinned golden cell so fault-free durations are known-good.
const SIM_ITERS: u64 = 3;

/// Plans replayed on the threaded runtime per scheduler: enough to exercise
/// every fault kind across the lineup without dominating wall clock.
const THREADED_REPLAYS: usize = 3;

/// Registry entry: a small fixed-seed search so `repro all` stays fast.
/// `repro ext_chaos <seed> [budget]` runs the same search at any scale.
pub fn ext_chaos() -> ExperimentOutput {
    run_chaos(42, 8)
}

/// The chaos search: per scheduler in the paper lineup, run `budget`
/// generated plans through the simulator and judge each against the
/// fault-free golden with [`check_plan`]; then replay a fixed sample of
/// generated plans on the threaded runtime and require bit-identical final
/// parameters. Oracle violations are shrunk to minimal reproducers and
/// printed as copy-pasteable pinned tests.
pub fn run_chaos(seed: u64, budget: usize) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_chaos",
        "Chaos search: ResNet18 bs16, 2 workers, 10 Gb/s",
        "The paper argues robustness qualitatively (§5.3 varies bandwidth by \
         hand). This samples whole fault schedules from a seeded generator \
         and checks every run against safety (no invariant panic), liveness \
         (bounded slowdown, all iterations complete), the wire-byte ledger, \
         and Prophet's degraded-mode recovery — then replays plans on the \
         real threaded PS and requires a bit-identical model.",
        &[
            "strategy",
            "plans",
            "violations",
            "slowdown_min",
            "slowdown_med",
            "slowdown_max",
            "threaded_replays",
            "threaded_bit_identical",
        ],
    );

    let oracle = OracleBudget::paper_default();
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label().to_string();
        let mut base = cell("resnet18", 16, 2, 10.0, kind);
        base.warmup_iters = 1;
        base.check_invariants = true;
        let golden = run_cluster(&base, SIM_ITERS);
        // Horizon = the fault-free duration: every plan can land mid-run.
        let horizon = Duration::from_nanos(golden.duration.as_nanos());
        let profile = ChaosProfile::for_cluster(base.workers, base.ps_shards, horizon);
        let mut gen = ChaosGen::new(seed);

        let mut violations = 0usize;
        let mut slowdowns: Vec<f64> = Vec::with_capacity(budget);
        for _ in 0..budget {
            let plan = gen.next_plan(&profile);
            let mut faulted = base.clone();
            faulted.fault_plan = plan.clone();
            let outcome = run_sim_checked(&faulted, SIM_ITERS);
            let verdict = check_plan(&golden, &outcome, &plan, &oracle);
            slowdowns.push(verdict.slowdown);
            if !verdict.ok() {
                violations += 1;
                eprintln!(
                    "[ext_chaos] {label}: oracle violation: {:?}",
                    verdict.violations
                );
                // Shrink while the oracle still fires, then emit the minimal
                // plan as a pinned test body.
                let small = shrink(&plan, |cand| {
                    let mut c = base.clone();
                    c.fault_plan = cand.clone();
                    let o = run_sim_checked(&c, SIM_ITERS);
                    !check_plan(&golden, &o, cand, &oracle).ok()
                });
                eprintln!(
                    "[ext_chaos] {label}: shrunk reproducer \
                     ({} of {} specs survive):\n{}",
                    small.faults.len(),
                    plan.faults.len(),
                    plan_to_rust(&small)
                );
            }
        }

        // Threaded parity leg: the same seeded generator (scaled to the
        // threaded run's wall clock) must not change what is computed.
        let (replayed, identical) = threaded_parity(seed, base.scheduler.clone());

        let finite: Vec<f64> = slowdowns
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .collect();
        let mut sorted = finite.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite slowdowns"));
        let fmt = |x: Option<&f64>| x.map_or("-".to_string(), |v| format!("{v:.2}"));
        out.row(vec![
            label,
            budget.to_string(),
            violations.to_string(),
            fmt(sorted.first()),
            fmt(sorted.get(sorted.len() / 2)),
            fmt(sorted.last()),
            replayed.to_string(),
            identical.to_string(),
        ]);
    }
    out.notes = format!(
        "Seed {seed}, {budget} plans per strategy, oracle budget: {:.1}x \
         liveness, {:?} degraded grace. `slowdown` is faulted over fault-free \
         simulated duration. The threaded column counts replayed plans whose \
         final parameters were bit-identical to a fault-free threaded run — \
         loss, crash, stall and link faults may cost time, never correctness. \
         Violations (if any) are shrunk to minimal plans and printed as \
         pinned-test source on stderr.",
        oracle.liveness_multiple, oracle.degraded_grace
    );
    out
}

/// Replay [`THREADED_REPLAYS`] generated plans on the threaded runtime and
/// count how many produced a model bit-identical to the fault-free run.
fn threaded_parity(seed: u64, kind: SchedulerKind) -> (usize, usize) {
    let mk = |plan| {
        let mut cfg = ThreadedConfig::small(2, kind.clone());
        cfg.iterations = 8;
        // Losses must be detected in milliseconds, not the production 5 s.
        cfg.retry = RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            timeout: Duration::from_millis(40),
        };
        cfg.fault_plan = plan;
        cfg
    };
    let clean = run_threaded_training(&mk(Default::default()));
    // Horizon sized to the threaded run's wall clock so windows land mid-run.
    let profile = ChaosProfile::for_cluster(2, 1, Duration::from_millis(60));
    let mut gen = ChaosGen::new(seed);
    let mut identical = 0;
    for _ in 0..THREADED_REPLAYS {
        let faulted = run_threaded_training(&mk(gen.next_plan(&profile)));
        if faulted.final_params == clean.final_params {
            identical += 1;
        }
    }
    (THREADED_REPLAYS, identical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "release-tier: runs many simulations")]
    fn small_search_is_violation_free() {
        let out = run_chaos(42, 4);
        assert_eq!(out.rows.len(), 4, "one row per lineup strategy");
        for row in &out.rows {
            assert_eq!(row[2], "0", "{}: oracle violations in {row:?}", row[0]);
            assert_eq!(row[6], row[7], "{}: threaded replay diverged", row[0]);
        }
    }
}
