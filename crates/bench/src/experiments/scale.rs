//! Extension: the simulator's scaling frontier.
//!
//! The paper's testbed stops at 7 workers (§5.1) and the Fig. 12 study at
//! 8. This experiment pushes the *simulator* to 64–1024 workers with
//! BytePS-style co-located PS shards (`ps_shards = workers`) and reports,
//! per scheduling strategy, both the simulated iteration time and the
//! host wall-clock the simulation itself cost — the trajectory that the
//! incremental max-min re-allocation and the indexed event queue exist
//! for. `BENCH_sim_scale.json` tracks the same code path as a criterion
//! bench; this run writes `results/ext_scale.csv`.

use super::{bytescheduler, cell, p3, prophet};
use crate::output::ExperimentOutput;
use prophet::core::SchedulerKind;
use prophet::ps::sim::run_cluster;

/// Worker counts on the scaling trajectory.
const SCALES: &[usize] = &[64, 256, 512, 1024];

/// `repro ext_scale`: iteration time and simulation cost vs worker count
/// for all four paper strategies.
pub fn ext_scale() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_scale",
        "Scaling frontier: ResNet18 bs16, 10 Gb/s, 64-1024 workers, co-located shards",
        "Beyond Fig. 12: the paper's scaling study stops at 8 workers. \
         Expectation: simulated iteration time grows ~linearly with workers \
         (each gradient's pushes share its home shard's NIC), the strategy \
         ordering from the testbed survives to 1024 workers, and the \
         simulator itself stays tractable — host wall-clock per run is the \
         engineering claim the incremental allocator is pinned on.",
        &["workers", "strategy", "iter_ms", "sim_s", "host_ms"],
    );
    for &workers in SCALES {
        let lineup: Vec<SchedulerKind> =
            vec![SchedulerKind::Fifo, p3(), bytescheduler(), prophet(10.0)];
        for kind in lineup {
            let label = kind.label().to_string();
            let mut cfg = cell("resnet18", 16, workers, 10.0, kind);
            cfg.ps_shards = workers;
            cfg.warmup_iters = 1;
            let t0 = std::time::Instant::now();
            let r = run_cluster(&cfg, 2);
            let host = t0.elapsed();
            // Steady-state iteration: the post-warmup one.
            let iter_ms = r
                .iter_times
                .last()
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN);
            out.row(vec![
                workers.to_string(),
                label,
                format!("{iter_ms:.1}"),
                format!("{:.3}", r.duration.as_secs_f64()),
                format!("{:.0}", host.as_secs_f64() * 1e3),
            ]);
        }
    }
    out.notes = "Host wall-clock is hardware-dependent; the column exists \
                 for order-of-magnitude tracking (a 1024-worker iteration \
                 simulates in seconds, where the pre-incremental engine \
                 drowned in duplicate wake events and full re-solves). \
                 Simulated iteration time scaling with workers reflects the \
                 per-gradient fan-in onto its home shard, which caps \
                 per-worker throughput at `shard_bps / workers`."
        .into();
    out
}
