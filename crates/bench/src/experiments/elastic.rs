//! [extension] Elastic membership: churn plans (permanent worker/shard
//! failures + admissions) judged by the deterministic-recovery oracles,
//! with recovery cost accounting per scheduler and a threaded-runtime
//! determinism leg.

use super::cell;
use crate::output::ExperimentOutput;
use prophet::core::SchedulerKind;
use prophet::ps::sim::run_cluster;
use prophet::ps::threaded::{run_threaded_training, ThreadedConfig};
use prophet::ps::{check_churn_plan, run_sim_checked, OracleBudget};
use prophet::sim::{ChaosGen, ChaosProfile, Duration, FaultPlan, FaultSpec};

/// Iterations per simulated churn run (plus one warm-up): enough room for
/// a mid-run epoch and the post-epoch re-plan to both land.
const SIM_ITERS: u64 = 6;

/// Registry entry: a small fixed-seed sweep so `repro all` stays fast.
/// `repro ext_elastic <seed> [budget]` runs the same sweep at any scale.
pub fn ext_elastic() -> ExperimentOutput {
    run_elastic(42, 8)
}

/// Median of a sorted-on-demand sample, rendered with `fmt`.
fn median<T: Copy + Ord>(xs: &mut [T], fmt: impl Fn(T) -> String) -> String {
    if xs.is_empty() {
        return "-".to_string();
    }
    xs.sort_unstable();
    fmt(xs[xs.len() / 2])
}

/// The elastic sweep: per scheduler in the paper lineup, run `budget`
/// churn plans (each twice — the second run is the recovery-contract
/// replay) through the simulator, judge every pair with
/// [`check_churn_plan`], and aggregate the recovery cost the elastic layer
/// accounted: time from shard death to re-homed state served, bytes of
/// in-flight work lost at the death, bytes restored from checkpoint +
/// ledger, and scheduler re-plans forced by membership epochs. A threaded
/// leg replays a fixed churn plan and requires bit-identical parameters
/// across reruns.
pub fn run_elastic(seed: u64, budget: usize) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_elastic",
        "Elastic membership: ResNet18 bs16, 3 workers, 2 PS shards, 10 Gb/s",
        "The paper assumes a fixed worker set for the lifetime of a job. \
         This sweeps permanent churn — worker evictions, PS shard deaths \
         with checkpoint/restore re-homing, and mid-run worker admissions — \
         sampled from a seeded generator, and holds every run to the \
         deterministic recovery contract: bounded slowdown, internally \
         consistent recovery accounting, and a bit-identical replay. The \
         cost columns are medians over the plans that exercised each path.",
        &[
            "strategy",
            "plans",
            "violations",
            "recovery_ms_med",
            "lost_work_kb_med",
            "restore_kb_med",
            "replans_total",
            "threaded_reruns",
            "threaded_bit_identical",
        ],
    );

    let oracle = OracleBudget::paper_default();
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label().to_string();
        let mut base = cell("resnet18", 16, 3, 10.0, kind.clone());
        base.ps_shards = 2;
        base.warmup_iters = 1;
        base.check_invariants = true;
        let golden = run_cluster(&base, SIM_ITERS);
        let horizon = Duration::from_nanos(golden.duration.as_nanos());
        let profile = ChaosProfile::churn(base.workers, base.ps_shards, horizon, SIM_ITERS);
        let mut gen = ChaosGen::new(seed);

        let mut violations = 0usize;
        let mut recovery_ns: Vec<u64> = Vec::new();
        let mut lost_work: Vec<u64> = Vec::new();
        let mut restored: Vec<u64> = Vec::new();
        let mut replans_total = 0u64;
        for _ in 0..budget {
            let plan = gen.next_plan(&profile);
            let mut churned = base.clone();
            churned.fault_plan = plan.clone();
            let outcome = run_sim_checked(&churned, SIM_ITERS);
            let rerun = run_sim_checked(&churned, SIM_ITERS);
            let verdict = check_churn_plan(&golden, &outcome, &rerun, &oracle);
            if !verdict.ok() {
                violations += 1;
                eprintln!(
                    "[ext_elastic] {label}: contract violation: {:?}\nplan: {plan:?}",
                    verdict.violations
                );
            }
            if let Ok(r) = &outcome {
                let e = &r.elastic;
                if e.failed_shards > 0 {
                    recovery_ns.push(e.recovery_ns);
                    lost_work.push(e.lost_work_bytes);
                    restored.push(e.restore_bytes);
                }
                replans_total += e.replans;
            }
        }

        let (reruns, identical) = threaded_determinism(kind);
        out.row(vec![
            label,
            budget.to_string(),
            violations.to_string(),
            median(&mut recovery_ns, |ns| format!("{:.2}", ns as f64 / 1e6)),
            median(&mut lost_work, |b| format!("{:.1}", b as f64 / 1024.0)),
            median(&mut restored, |b| format!("{:.1}", b as f64 / 1024.0)),
            replans_total.to_string(),
            reruns.to_string(),
            identical.to_string(),
        ]);
    }
    out.notes = format!(
        "Seed {seed}, {budget} churn plans per strategy, each run twice (the \
         second run is the recovery-contract replay; any divergence is a \
         violation). recovery_ms is simulated time from shard death to the \
         re-homed tensors being served again; lost_work is in-flight \
         transfer bytes discarded at the death; restore is checkpoint + \
         ledger bytes read back. The threaded columns rerun one fixed \
         eviction+death+join plan on the real threaded PS per strategy and \
         count bit-identical parameter sets.",
    );
    out
}

/// Rerun one fixed churn plan on the threaded runtime and count bitwise
/// agreement — the threaded half of the recovery contract.
fn threaded_determinism(kind: SchedulerKind) -> (usize, usize) {
    const RERUNS: usize = 3;
    let mut cfg = ThreadedConfig::small(3, kind);
    cfg.ps_shards = 2;
    cfg.global_batch = 48;
    cfg.iterations = 8;
    cfg.fault_plan = FaultPlan::new(vec![
        FaultSpec::WorkerFail {
            worker: 0,
            at_iter: 5,
        },
        FaultSpec::ShardFail {
            shard: 1,
            at_iter: 3,
        },
        FaultSpec::WorkerJoin {
            worker: 3,
            at_iter: 2,
        },
    ]);
    let first = run_threaded_training(&cfg);
    let mut identical = 0;
    for _ in 0..RERUNS {
        let again = run_threaded_training(&cfg);
        if again.final_params == first.final_params && again.losses == first.losses {
            identical += 1;
        }
    }
    (RERUNS, identical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "release-tier: runs many simulations")]
    fn small_sweep_is_violation_free() {
        let out = run_elastic(42, 4);
        assert_eq!(out.rows.len(), 4, "one row per lineup strategy");
        for row in &out.rows {
            assert_eq!(row[2], "0", "{}: contract violations in {row:?}", row[0]);
            assert_eq!(row[7], row[8], "{}: threaded rerun diverged", row[0]);
        }
    }
}
