//! Property tests for the network substrate.

use prophet_net::maxmin::{allocate, FlowDemand};
use prophet_net::{Network, NodeId, NodeSpec, TcpModel, Topology};
use prophet_sim::SimTime;
use proptest::prelude::*;

fn arb_flows(nodes: usize) -> impl Strategy<Value = Vec<FlowDemand>> {
    prop::collection::vec((0..nodes, 0..nodes, prop::option::of(1e3f64..1e9)), 1..24).prop_map(
        |v| {
            v.into_iter()
                .map(|(s, d, cap)| FlowDemand {
                    src: NodeId(s),
                    dst: NodeId(d),
                    cap_bps: cap.unwrap_or(f64::INFINITY),
                })
                .collect()
        },
    )
}

proptest! {
    /// Max-min allocations are always feasible: no uplink or downlink is
    /// oversubscribed and no flow exceeds its cap.
    #[test]
    fn maxmin_feasible(flows in arb_flows(6), cap in 1e6f64..1e10) {
        let topo = Topology::uniform(6, NodeSpec::symmetric(cap));
        let rates = allocate(&topo, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        let mut up = [0.0; 6];
        let mut down = [0.0; 6];
        for (f, &r) in flows.iter().zip(&rates) {
            prop_assert!(r >= 0.0);
            prop_assert!(r <= f.cap_bps * (1.0 + 1e-9) + 1e-6);
            up[f.src.0] += r;
            down[f.dst.0] += r;
        }
        for i in 0..6 {
            prop_assert!(up[i] <= cap * (1.0 + 1e-9) + 1e-3, "uplink {} oversubscribed: {}", i, up[i]);
            prop_assert!(down[i] <= cap * (1.0 + 1e-9) + 1e-3, "downlink {} oversubscribed: {}", i, down[i]);
        }
    }

    /// Pareto efficiency: every flow is limited by *something* — its cap,
    /// or a saturated uplink/downlink it traverses. (If not, progressive
    /// filling stopped early and the allocation isn't max-min.)
    #[test]
    fn maxmin_no_flow_starved_without_reason(flows in arb_flows(5), cap in 1e6f64..1e9) {
        let topo = Topology::uniform(5, NodeSpec::symmetric(cap));
        let rates = allocate(&topo, &flows);
        let mut up = [0.0; 5];
        let mut down = [0.0; 5];
        for (f, &r) in flows.iter().zip(&rates) {
            up[f.src.0] += r;
            down[f.dst.0] += r;
        }
        const TOL: f64 = 1e-3;
        for (f, &r) in flows.iter().zip(&rates) {
            let at_cap = f.cap_bps.is_finite() && r >= f.cap_bps - TOL;
            let up_sat = up[f.src.0] >= cap - TOL;
            let down_sat = down[f.dst.0] >= cap - TOL;
            prop_assert!(
                at_cap || up_sat || down_sat,
                "flow {:?} at rate {} limited by nothing", f, r
            );
        }
    }

    /// At datacenter-scale capacities (10 Gb/s .. 8 Tb/s in bytes/sec) one
    /// f64 ulp is far above any absolute epsilon, so saturation tests must
    /// be relative. Uncapped flows fanning into one sink must split its
    /// downlink exactly evenly, the allocation must stay feasible, and
    /// capped flows must be pinned to (never above) their cap.
    #[test]
    fn maxmin_high_capacity_fairness(
        cap in 1.25e9f64..1e12,
        n_flows in 2usize..8,
        capped in prop::option::of(0.01f64..0.45),
    ) {
        let topo = Topology::uniform(n_flows + 1, NodeSpec::symmetric(cap));
        let mut flows: Vec<FlowDemand> = (1..=n_flows)
            .map(|w| FlowDemand { src: NodeId(w), dst: NodeId(0), cap_bps: f64::INFINITY })
            .collect();
        if let Some(frac) = capped {
            // Cap the first flow below its fair share; the rest must absorb
            // exactly the freed bandwidth.
            flows[0].cap_bps = cap * frac / n_flows as f64;
        }
        let rates = allocate(&topo, &flows);
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= cap * (1.0 + 1e-9), "sink oversubscribed: {total} > {cap}");
        prop_assert!(total >= cap * (1.0 - 1e-9), "sink left idle: {total} < {cap}");
        match capped {
            None => {
                let share = cap / n_flows as f64;
                for &r in &rates {
                    prop_assert!((r - share).abs() <= share * 1e-9, "rate {r} != share {share}");
                }
            }
            Some(_) => {
                prop_assert!(rates[0] <= flows[0].cap_bps, "capped flow above cap");
                prop_assert!(rates[0] >= flows[0].cap_bps * (1.0 - 1e-9));
                let rest = (cap - rates[0]) / (n_flows - 1) as f64;
                for &r in &rates[1..] {
                    prop_assert!((r - rest).abs() <= rest * 1e-9, "rate {r} != {rest}");
                }
            }
        }
    }

    /// In the fluid engine every started flow eventually completes, and
    /// completion time is at least the unshared lower bound s/B.
    #[test]
    fn flows_complete_and_respect_capacity(
        sizes in prop::collection::vec(1u64..50_000_000, 1..10),
        gbps in 1u32..11,
    ) {
        let n = sizes.len() + 1;
        let topo = Topology::uniform(n, NodeSpec::from_gbps(gbps as f64));
        let mut net = Network::new(topo, TcpModel::EC2);
        for (w, &s) in sizes.iter().enumerate() {
            net.start_flow(SimTime::ZERO, NodeId(w + 1), NodeId(0), s, w as u64);
        }
        let done = net.run_to_completion();
        prop_assert_eq!(done.len(), sizes.len());
        let cap = gbps as f64 * 1e9 / 8.0;
        // Aggregate bound: total bytes through the sink's downlink.
        let total: u64 = sizes.iter().sum();
        let last = done.iter().map(|d| d.finished).max().unwrap();
        prop_assert!(
            last.as_secs_f64() >= total as f64 / cap - 1e-6,
            "finished faster than line rate: {} < {}",
            last.as_secs_f64(),
            total as f64 / cap
        );
        // Per-flow bound.
        for d in &done {
            let s = sizes[d.tag as usize] as f64;
            prop_assert!(d.finished.as_secs_f64() >= s / cap - 1e-9);
        }
    }

    /// The closed-form TCP model and the fluid engine agree for an
    /// unshared transfer (within a nanosecond-rounding tolerance).
    #[test]
    fn closed_form_matches_fluid(bytes in 1u64..100_000_000, gbps in 1u32..11) {
        let tcp = TcpModel::EC2;
        let bps = gbps as f64 * 1e9 / 8.0;
        let topo = Topology::uniform(2, NodeSpec::symmetric(bps));
        let mut net = Network::new(topo, tcp);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), bytes, 0);
        let done = net.run_to_completion();
        let fluid = done[0].finished.as_secs_f64();
        let closed = tcp.transfer_time_s(bytes as f64, bps);
        prop_assert!(
            (fluid - closed).abs() < 1e-4 * closed.max(1e-3),
            "fluid {} vs closed {}", fluid, closed
        );
    }

    /// Effective bandwidth (Eq. 10) is monotone in message size.
    #[test]
    fn eq10_monotone(s1 in 1.0f64..1e9, s2 in 1.0f64..1e9) {
        let m = TcpModel::EC2;
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let b = 1.25e9;
        prop_assert!(m.effective_bandwidth(lo, b) <= m.effective_bandwidth(hi, b) + 1e-6);
        prop_assert!(m.effective_bandwidth(hi, b) <= b + 1e-6);
    }
}
