//! Golden equality for the incremental re-allocation engine.
//!
//! Two contracts, property-tested over random topologies and churn:
//!
//! 1. **Incremental ≡ full resolve.** A [`Network`] in its default
//!    dirty-component mode and a twin in [`Network::set_full_resolve`]
//!    mode, driven by the identical script of starts, kills, advances and
//!    capacity changes, must agree *bitwise*: same `FlowEnd` timestamps in
//!    the same order, same instantaneous rates, same per-node byte
//!    counters. Both modes share one fill path, so any divergence is a
//!    dirty-tracking bug, not float noise — exact equality is the right
//!    assertion.
//! 2. **Engine ≡ `maxmin::allocate` oracle.** Under [`TcpModel::IDEAL`]
//!    (every flow Steady from birth) the engine's standing rates after
//!    any prefix of the script must be bit-identical to a from-scratch
//!    [`allocate`] over the live flows in flow-id order.
//!
//! Zero-capacity demands (Setup-phase flows under [`TcpModel::EC2`]) are
//! exercised by contract 1: EC2's setup window keeps newborn flows at
//! demand 0 while older flows churn around them.

use prophet_net::maxmin::{allocate, FlowDemand};
use prophet_net::{FlowId, Network, NodeId, NodeSpec, TcpModel, Topology};
use prophet_sim::{Duration, SimTime};
use proptest::prelude::*;

/// One step of a churn script. Node/victim indices are reduced modulo the
/// live population at interpretation time so every generated script is
/// valid for every topology size.
#[derive(Debug, Clone)]
enum Op {
    /// Start a `bytes`-byte flow `src → dst` (self-loops excluded).
    Start { src: usize, dst: usize, bytes: u64 },
    /// Kill the `victim % started`-th flow ever started (no-op if it
    /// already finished or died — identically on both engines).
    Kill { victim: usize },
    /// Advance the clock by `dt_ns`, harvesting completions.
    Advance { dt_ns: u64 },
    /// Reconfigure one node's NIC to `mbps` (dynamic-bandwidth churn).
    Degrade { node: usize, mbps: u32 },
}

/// Weighted op mix, encoded as a selector (the vendored proptest has no
/// `prop_oneof!`): 4/9 starts, 1/9 kills, 3/9 advances, 1/9 degrades.
fn arb_ops(nodes: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            0usize..9,
            (0..nodes, 0..nodes - 1, 1u64..20_000_000),
            0usize..64,
            1u64..50_000_000,
            (0..nodes, 100u32..10_000),
        ),
        1..40,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(
                |(sel, (src, d, bytes), victim, dt_ns, (node, mbps))| match sel {
                    0..=3 => Op::Start {
                        src,
                        // Skip over `src` so the flow never self-loops.
                        dst: if d >= src { d + 1 } else { d },
                        bytes,
                    },
                    4 => Op::Kill { victim },
                    5..=7 => Op::Advance { dt_ns },
                    _ => Op::Degrade { node, mbps },
                },
            )
            .collect()
    })
}

/// Drives one [`Network`] through a script, recording everything the
/// golden comparison needs.
struct Harness {
    net: Network,
    now: SimTime,
    /// Completions in harvest order, as `(tag, finish ns)`.
    ends: Vec<(u64, u64)>,
    /// Kills in script order, as `(tag, delivered bits)`.
    kills: Vec<(u64, u64)>,
    /// Every tag ever started (kill targets index into this).
    started: Vec<u64>,
    next_tag: u64,
}

impl Harness {
    fn new(nodes: usize, cap_bps: f64, tcp: TcpModel) -> Self {
        Harness {
            net: Network::new(Topology::uniform(nodes, NodeSpec::symmetric(cap_bps)), tcp),
            now: SimTime::ZERO,
            ends: Vec::new(),
            kills: Vec::new(),
            started: Vec::new(),
            next_tag: 0,
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Start { src, dst, bytes } => {
                let ends = self.net.advance_to(self.now);
                self.harvest(ends);
                let tag = self.next_tag;
                self.next_tag += 1;
                self.started.push(tag);
                self.net
                    .start_flow(self.now, NodeId(src), NodeId(dst), bytes, tag);
            }
            Op::Kill { victim } => {
                if self.started.is_empty() {
                    return;
                }
                let ends = self.net.advance_to(self.now);
                self.harvest(ends);
                let tag = self.started[victim % self.started.len()];
                if let Some(k) = self.net.kill_flow(self.now, tag) {
                    self.kills.push((k.tag, k.delivered.to_bits()));
                }
            }
            Op::Advance { dt_ns } => {
                self.now += Duration::from_nanos(dt_ns);
                let ends = self.net.advance_to(self.now);
                self.harvest(ends);
            }
            Op::Degrade { node, mbps } => {
                let ends = self.net.set_node_spec(
                    self.now,
                    NodeId(node),
                    NodeSpec::from_mbps(mbps as f64),
                );
                self.harvest(ends);
            }
        }
    }

    fn harvest(&mut self, ends: Vec<prophet_net::FlowEnd>) {
        for e in ends {
            self.ends.push((e.tag, e.finished.as_nanos()));
        }
    }

    fn finish(&mut self) {
        let ends = self.net.run_to_completion();
        self.harvest(ends);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Contract 1: the incremental engine and the full-resolve oracle are
    /// bit-identical under arbitrary churn, including Setup-phase
    /// (zero-demand) flows, kills of half-done flows, and mid-flight
    /// capacity changes.
    #[test]
    fn incremental_matches_full_resolve(
        nodes in 3usize..9,
        cap in 1e6f64..1e10,
        ops in arb_ops(8),
    ) {
        let mut inc = Harness::new(nodes, cap, TcpModel::EC2);
        let mut full = Harness::new(nodes, cap, TcpModel::EC2);
        full.net.set_full_resolve(true);
        for op in &ops {
            // Ops referencing nodes beyond this topology are reduced here,
            // identically for both engines.
            let op = match *op {
                Op::Start { src, dst, bytes } => {
                    let src = src % nodes;
                    let mut dst = dst % nodes;
                    if dst == src {
                        dst = (dst + 1) % nodes;
                    }
                    Op::Start { src, dst, bytes }
                }
                Op::Degrade { node, mbps } => Op::Degrade { node: node % nodes, mbps },
                ref other => other.clone(),
            };
            inc.apply(&op);
            full.apply(&op);
            // Rates must agree bitwise after every step, not just at the end.
            prop_assert_eq!(inc.net.active_flows(), full.net.active_flows());
            for id in 0..inc.next_tag {
                let a = inc.net.flow_rate(FlowId(id)).map(f64::to_bits);
                let b = full.net.flow_rate(FlowId(id)).map(f64::to_bits);
                prop_assert_eq!(a, b, "rate of flow {} diverged mid-script", id);
            }
        }
        inc.finish();
        full.finish();
        prop_assert_eq!(&inc.ends, &full.ends, "FlowEnd sequences diverged");
        prop_assert_eq!(&inc.kills, &full.kills, "kill ledgers diverged");
        for n in 0..nodes {
            prop_assert_eq!(
                inc.net.tx_bytes(NodeId(n)).to_bits(),
                full.net.tx_bytes(NodeId(n)).to_bits(),
                "tx counter of node {} diverged", n
            );
            prop_assert_eq!(
                inc.net.rx_bytes(NodeId(n)).to_bits(),
                full.net.rx_bytes(NodeId(n)).to_bits(),
                "rx counter of node {} diverged", n
            );
        }
    }

    /// Contract 2: under an ideal transport (no Setup, no Ramp) the
    /// engine's standing rates equal a from-scratch `maxmin::allocate`
    /// over the live flows in flow-id order, bit for bit, after every
    /// script step.
    #[test]
    fn incremental_matches_allocate_oracle(
        nodes in 3usize..9,
        cap in 1e6f64..1e10,
        ops in arb_ops(8),
    ) {
        let mut h = Harness::new(nodes, cap, TcpModel::IDEAL);
        // (id, src, dst) of every flow ever started, for oracle demands.
        let mut flows: Vec<(u64, NodeId, NodeId)> = Vec::new();
        for op in &ops {
            let op = match *op {
                Op::Start { src, dst, bytes } => {
                    let src = src % nodes;
                    let mut dst = dst % nodes;
                    if dst == src {
                        dst = (dst + 1) % nodes;
                    }
                    flows.push((h.next_tag, NodeId(src), NodeId(dst)));
                    Op::Start { src, dst, bytes }
                }
                Op::Degrade { node, mbps } => Op::Degrade { node: node % nodes, mbps },
                ref other => other.clone(),
            };
            h.apply(&op);
            // Oracle: allocate over the still-live flows, in id order.
            let live: Vec<&(u64, NodeId, NodeId)> = flows
                .iter()
                .filter(|(id, _, _)| h.net.flow_rate(FlowId(*id)).is_some())
                .collect();
            let demands: Vec<FlowDemand> = live
                .iter()
                .map(|&&(_, src, dst)| FlowDemand { src, dst, cap_bps: f64::INFINITY })
                .collect();
            let oracle = allocate(h.net.topology(), &demands);
            for (&&(id, _, _), want) in live.iter().zip(&oracle) {
                let got = h.net.flow_rate(FlowId(id)).unwrap();
                prop_assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "flow {}: engine rate {} != oracle {}", id, got, want
                );
            }
        }
    }
}
