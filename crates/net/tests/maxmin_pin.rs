//! Exact-equality pins for `maxmin::allocate`.
//!
//! The expected bit patterns were captured from the pre-scratch,
//! pre-decomposition allocator (the straight transcription of global
//! progressive filling). The scratch-hoisted, component-decomposed
//! rewrite must reproduce them bit for bit:
//!
//! * single-component cells are guaranteed identical — the per-component
//!   loop is the global loop restricted to the touched nodes;
//! * the multi-component cells here happened to be bitwise stable under
//!   decomposition too (round capacities / cap pinning), so they are
//!   pinned at the same values. If a future change shifts one of these at
//!   ulp scale, that is a semantic change to investigate, not a tolerance
//!   to widen.

use prophet_net::maxmin::{allocate, allocate_with, FlowDemand, Scratch};
use prophet_net::{NodeId, NodeSpec, Topology};

fn f(src: usize, dst: usize, cap: f64) -> FlowDemand {
    FlowDemand {
        src: NodeId(src),
        dst: NodeId(dst),
        cap_bps: cap,
    }
}

fn cells() -> Vec<(&'static str, Topology, Vec<FlowDemand>, Vec<u64>)> {
    let inf = f64::INFINITY;
    vec![
        // Single-component cells.
        (
            "hetero",
            {
                let mut t = Topology::new();
                t.add_node(NodeSpec::from_gbps(10.0));
                t.add_node(NodeSpec::from_gbps(10.0));
                t.add_node(NodeSpec::from_mbps(500.0));
                t
            },
            vec![f(1, 0, inf), f(2, 0, inf)],
            vec![0x41d1b1f3f8000000, 0x418dcd6500000000],
        ),
        (
            "awkward_caps",
            Topology::uniform(5, NodeSpec::symmetric(6.626115377326036e9)),
            vec![
                f(1, 0, 6.626115377326036e9 / 7.0),
                f(2, 0, 6.626115377326036e9 / 3.0),
                f(3, 0, inf),
                f(4, 0, inf),
            ],
            vec![
                0x41cc35e48385f639,
                0x41dc35e48385f63a,
                0x41dc35e48385f63a,
                0x41dc35e48385f63a,
            ],
        ),
        (
            "three_way_terabit",
            Topology::uniform(4, NodeSpec::symmetric(1e12)),
            vec![f(1, 0, inf), f(2, 0, inf), f(3, 0, inf)],
            vec![0x4253670dc1555555, 0x4253670dc1555555, 0x4253670dc1555555],
        ),
        (
            "fan_in_fan_out",
            Topology::uniform(6, NodeSpec::symmetric(1.25e9)),
            vec![
                f(1, 0, inf),
                f(2, 0, inf),
                f(0, 3, 3e8),
                f(0, 4, inf),
                f(5, 0, 0.0),
                f(2, 1, inf),
            ],
            vec![
                0x41c2a05f20000000,
                0x41c2a05f20000000,
                0x41b1e1a300000000,
                0x41cc4fecc0000000,
                0x0000000000000000,
                0x41c2a05f20000000,
            ],
        ),
        // Multi-component cells (two disjoint islands each).
        (
            "two_islands",
            Topology::uniform(6, NodeSpec::symmetric(1e9)),
            vec![
                f(1, 0, inf),
                f(2, 0, 1e8),
                f(4, 3, inf),
                f(5, 3, inf),
                f(4, 5, 7e8),
            ],
            vec![
                0x41cad27480000000,
                0x4197d78400000000,
                0x41bdcd6500000000,
                0x41bdcd6500000000,
                0x41bdcd6500000000,
            ],
        ),
        (
            "islands_capped",
            {
                let mut t = Topology::uniform(4, NodeSpec::symmetric(6.626115377326036e9));
                t.set_spec(NodeId(2), NodeSpec::from_mbps(500.0));
                t
            },
            vec![f(0, 1, 6.626115377326036e9 / 7.0), f(2, 3, inf)],
            vec![0x41cc35e48385f639, 0x418dcd6500000000],
        ),
    ]
}

#[test]
fn allocator_outputs_are_pinned_bitwise() {
    for (name, topo, flows, expect_bits) in cells() {
        let r = allocate(&topo, &flows);
        let got: Vec<u64> = r.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            got, expect_bits,
            "cell {name}: rates {r:?} drifted from the pinned bit patterns"
        );
    }
}

#[test]
fn pinned_outputs_survive_scratch_reuse() {
    // One Scratch threaded through the whole battery, twice: leaked state
    // from any earlier cell would shift a later one.
    let mut s = Scratch::default();
    for _ in 0..2 {
        for (name, topo, flows, expect_bits) in cells() {
            let r = allocate_with(&topo, &flows, &mut s);
            let got: Vec<u64> = r.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, expect_bits, "cell {name} under scratch reuse");
        }
    }
}
