//! The Network Bandwidth Monitor (§4.2 of the paper).
//!
//! Prophet "periodically (e.g., every 5 seconds) acquires the available
//! network bandwidth B of workers". In a real deployment that is a counter
//! read plus smoothing; here the monitor watches completed transfers and
//! maintains two estimators:
//!
//! * an **EWMA** of per-transfer achieved throughput — smooth but biased low
//!   under sharing and per-message overhead;
//! * a **windowed peak** of achieved throughput — a classic available-
//!   bandwidth proxy (the fastest recent transfer got close to the pipe).
//!
//! [`BandwidthMonitor::estimate_bps`] blends them (max of EWMA and decayed
//! peak) which tracks both downward capacity changes (EWMA follows) and the
//! true ceiling (peak remembers). The Prophet planner re-plans whenever the
//! estimate moves by more than a configurable tolerance.

use prophet_sim::{Duration, SimTime};

/// Online estimator of a node's available bandwidth from observed transfers.
#[derive(Debug, Clone)]
pub struct BandwidthMonitor {
    /// Smoothing factor for the EWMA, in (0, 1]; higher = more reactive.
    alpha: f64,
    /// How long a peak observation remains authoritative.
    peak_window: Duration,
    ewma_bps: Option<f64>,
    peak_bps: f64,
    peak_at: SimTime,
    observations: u64,
}

impl BandwidthMonitor {
    /// Monitor with smoothing `alpha` and peak memory `peak_window`.
    pub fn new(alpha: f64, peak_window: Duration) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        BandwidthMonitor {
            alpha,
            peak_window,
            ewma_bps: None,
            peak_bps: 0.0,
            peak_at: SimTime::ZERO,
            observations: 0,
        }
    }

    /// The paper's defaults: 5-second monitoring period.
    pub fn with_defaults() -> Self {
        Self::new(0.3, Duration::from_secs(5))
    }

    /// Record a completed transfer of `bytes` that took `elapsed` of wire
    /// time (setup included — the scheduler cares about goodput).
    pub fn observe(&mut self, now: SimTime, bytes: u64, elapsed: Duration) {
        if elapsed.is_zero() || bytes == 0 {
            return;
        }
        let bps = bytes as f64 / elapsed.as_secs_f64();
        self.observations += 1;
        self.ewma_bps = Some(match self.ewma_bps {
            None => bps,
            Some(prev) => self.alpha * bps + (1.0 - self.alpha) * prev,
        });
        if bps >= self.peak_bps || now.saturating_since(self.peak_at) > self.peak_window {
            self.peak_bps = bps;
            self.peak_at = now;
        }
    }

    /// Current available-bandwidth estimate in bytes/sec, or `None` before
    /// any observation (the planner falls back to configured capacity).
    pub fn estimate_bps(&self, now: SimTime) -> Option<f64> {
        let ewma = self.ewma_bps?;
        let peak_fresh = now.saturating_since(self.peak_at) <= self.peak_window;
        Some(if peak_fresh {
            ewma.max(self.peak_bps)
        } else {
            ewma
        })
    }

    /// The smoothed *achieved* throughput (goodput), bytes/sec — the right
    /// predictor for "how long will my next message take" under contention,
    /// as opposed to [`BandwidthMonitor::estimate_bps`]'s available-
    /// bandwidth blend which remembers the uncontended ceiling.
    pub fn ewma_bps(&self) -> Option<f64> {
        self.ewma_bps
    }

    /// How many transfers have been observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl Default for BandwidthMonitor {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn no_observations_no_estimate() {
        let m = BandwidthMonitor::with_defaults();
        assert_eq!(m.estimate_bps(at(1)), None);
    }

    #[test]
    fn single_observation_sets_both_estimators() {
        let mut m = BandwidthMonitor::with_defaults();
        m.observe(at(1), 1_000_000, Duration::from_millis(10));
        // 1 MB / 10 ms = 1e8 B/s.
        assert!((m.estimate_bps(at(1)).unwrap() - 1e8).abs() < 1.0);
        assert_eq!(m.observations(), 1);
    }

    #[test]
    fn peak_dominates_while_fresh() {
        let mut m = BandwidthMonitor::new(0.5, Duration::from_secs(5));
        m.observe(at(1), 1_000_000, Duration::from_millis(10)); // 1e8
        m.observe(at(2), 100_000, Duration::from_millis(10)); // 1e7 (small msg)
                                                              // EWMA dropped, but the fresh peak keeps the estimate at 1e8.
        assert!((m.estimate_bps(at(2)).unwrap() - 1e8).abs() < 1.0);
    }

    #[test]
    fn stale_peak_expires_to_ewma() {
        let mut m = BandwidthMonitor::new(0.5, Duration::from_secs(5));
        m.observe(at(1), 1_000_000, Duration::from_millis(10)); // peak 1e8
        m.observe(at(2), 100_000, Duration::from_millis(10));
        let est = m.estimate_bps(at(20)).unwrap();
        // Peak from t=1 has expired by t=20; EWMA = 0.5*1e7 + 0.5*1e8.
        assert!((est - 5.5e7).abs() < 1.0, "est {est}");
    }

    #[test]
    fn tracks_capacity_drop() {
        let mut m = BandwidthMonitor::new(0.5, Duration::from_secs(2));
        // Fast era.
        for s in 0..3 {
            m.observe(at(s), 1_000_000, Duration::from_millis(10));
        }
        // Throttled era: 1e7 B/s observations.
        for s in 10..20 {
            m.observe(at(s), 1_000_000, Duration::from_millis(100));
        }
        let est = m.estimate_bps(at(20)).unwrap();
        assert!(est < 2e7, "estimate failed to track drop: {est}");
    }

    #[test]
    fn ignores_degenerate_observations() {
        let mut m = BandwidthMonitor::with_defaults();
        m.observe(at(1), 0, Duration::from_millis(10));
        m.observe(at(1), 100, Duration::ZERO);
        assert_eq!(m.observations(), 0);
        assert_eq!(m.estimate_bps(at(1)), None);
    }

    #[test]
    #[should_panic(expected = "alpha out of range")]
    fn rejects_bad_alpha() {
        BandwidthMonitor::new(0.0, Duration::from_secs(1));
    }
}
