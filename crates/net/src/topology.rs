//! Cluster topology: a flat set of nodes, each with full-duplex NIC limits.
//!
//! The paper's testbed is 1 PS + up to 7 workers on EC2 g3.8xlarge with
//! "varying network bandwidth from 1 Gbps to 10 Gbps" — a star around the
//! provider fabric, which a per-node uplink/downlink capacity pair captures.
//! Heterogeneity (§5.3: one worker capped at 500 Mbps) is a per-node cap.

/// Index of a node in the [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// One machine's NIC limits, in **bytes per second**.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Capacity for traffic leaving the node.
    pub uplink_bps: f64,
    /// Capacity for traffic entering the node.
    pub downlink_bps: f64,
}

impl NodeSpec {
    /// A symmetric full-duplex NIC.
    pub fn symmetric(bps: f64) -> Self {
        assert!(bps > 0.0 && bps.is_finite(), "bad NIC capacity {bps}");
        NodeSpec {
            uplink_bps: bps,
            downlink_bps: bps,
        }
    }

    /// Convert a link rate in **gigabits per second** (the unit the paper
    /// quotes) into a symmetric [`NodeSpec`] in bytes per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::symmetric(gbps * 1e9 / 8.0)
    }

    /// Convert **megabits per second** (Table 2's unit) into a symmetric
    /// [`NodeSpec`].
    pub fn from_mbps(mbps: f64) -> Self {
        Self::symmetric(mbps * 1e6 / 8.0)
    }
}

/// The set of nodes a [`crate::Network`] routes between.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    specs: Vec<NodeSpec>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology { specs: Vec::new() }
    }

    /// A topology of `n` identical nodes.
    pub fn uniform(n: usize, spec: NodeSpec) -> Self {
        Topology {
            specs: vec![spec; n],
        }
    }

    /// Append a node, returning its id.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        self.specs.push(spec);
        NodeId(self.specs.len() - 1)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The NIC limits of `node`.
    pub fn spec(&self, node: NodeId) -> NodeSpec {
        self.specs[node.0]
    }

    /// Replace the NIC limits of `node` (dynamic-bandwidth experiments).
    pub fn set_spec(&mut self, node: NodeId, spec: NodeSpec) {
        self.specs[node.0] = spec;
    }

    /// Iterate `(NodeId, NodeSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeSpec)> + '_ {
        self.specs.iter().enumerate().map(|(i, &s)| (NodeId(i), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_conversion() {
        let s = NodeSpec::from_gbps(10.0);
        assert!((s.uplink_bps - 1.25e9).abs() < 1.0);
        assert!((s.downlink_bps - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn mbps_conversion() {
        let s = NodeSpec::from_mbps(500.0);
        assert!((s.uplink_bps - 62.5e6).abs() < 1.0);
    }

    #[test]
    fn add_and_lookup() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::from_gbps(10.0));
        let b = t.add_node(NodeSpec::from_gbps(1.0));
        assert_eq!(t.len(), 2);
        assert!(t.spec(a).uplink_bps > t.spec(b).uplink_bps);
    }

    #[test]
    fn uniform_topology() {
        let t = Topology::uniform(4, NodeSpec::from_gbps(10.0));
        assert_eq!(t.len(), 4);
        assert_eq!(t.iter().count(), 4);
    }

    #[test]
    fn set_spec_changes_capacity() {
        let mut t = Topology::uniform(2, NodeSpec::from_gbps(10.0));
        t.set_spec(NodeId(1), NodeSpec::from_mbps(500.0));
        assert!((t.spec(NodeId(1)).uplink_bps - 62.5e6).abs() < 1.0);
        assert!((t.spec(NodeId(0)).uplink_bps - 1.25e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "bad NIC capacity")]
    fn rejects_zero_capacity() {
        NodeSpec::symmetric(0.0);
    }
}
