#![warn(missing_docs)]

//! # prophet-net — flow-level network simulation
//!
//! The Prophet paper's entire argument rests on two network phenomena:
//!
//! 1. **Effective bandwidth depends on message size** (Eq. 10,
//!    `B_eff = f(s, B)`): tiny transfers are dominated by connection/
//!    synchronisation overhead and TCP slow start, so P3's small partitions
//!    under-utilise the pipe; huge transfers utilise it fully but cannot be
//!    preempted, so FIFO delays gradient 0.
//! 2. **Shared links**: pushes and pulls from several workers contend at the
//!    parameter server, so a scheduler's decisions interact through fair
//!    bandwidth sharing.
//!
//! This crate models both with a *fluid flow* abstraction, the standard
//! fidelity trade-off for scheduling studies: every transfer is a flow
//! `(src, dst, bytes)`; active flows receive **max-min fair** rates subject
//! to per-node uplink/downlink capacities and a per-flow cap that ramps like
//! TCP slow start; each message additionally pays a fixed setup latency
//! (connection + PS synchronisation — the "blocking call" overhead the paper
//! attributes to P3).
//!
//! Modules:
//! * [`topology`] — node table with per-node up/down capacities (hetero-
//!   geneous bandwidth caps for §5.3's experiments),
//! * [`tcp`] — the analytic cost model `f(s, B)` plus its ramp parameters,
//! * [`maxmin`] — progressive-filling max-min fair allocation with caps,
//! * [`network`] — the event-driven flow engine ([`Network`]),
//! * [`monitor`] — the bandwidth estimator Prophet's planner consumes
//!   (§4.2's "Network Bandwidth Monitor", 5 s period by default),
//! * [`retry`] — capped-exponential-backoff retry policy for fault
//!   injection (messages killed by a [`fault plan`](prophet_sim::FaultPlan)
//!   are re-sent under this policy).

pub mod maxmin;
pub mod monitor;
pub mod network;
pub mod retry;
pub mod tcp;
pub mod topology;

pub use monitor::BandwidthMonitor;
pub use network::{FlowEnd, FlowId, KilledFlow, NetEvent, Network};
pub use retry::RetryPolicy;
pub use tcp::TcpModel;
pub use topology::{NodeId, NodeSpec, Topology};
