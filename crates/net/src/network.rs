//! The event-driven fluid flow engine.
//!
//! [`Network`] tracks the set of in-flight transfers and evolves them in
//! piecewise-constant-rate segments: rates only change when a flow starts,
//! finishes, finishes its setup handshake, doubles its slow-start window, or
//! a node's capacity is reconfigured. Between those instants every flow
//! moves bytes linearly, so the engine only needs to be woken at the next
//! such instant — which it reports via [`Network::next_event_time`].
//!
//! The driving simulation loop is owned by the caller (the cluster model in
//! `prophet-ps`); the contract is:
//!
//! ```text
//! loop {
//!     t = min(caller's own events, net.next_event_time());
//!     completions = net.advance_to(t);   // always safe, also for t < next
//!     ... handle completions, maybe net.start_flow(...) ...
//! }
//! ```
//!
//! Rate changes bump an internal [`Network::version`] so callers using
//! pre-scheduled wake-ups can discard stale ones.

use crate::maxmin::{self, FlowDemand};
use crate::tcp::TcpModel;
use crate::topology::{NodeId, NodeSpec, Topology};
use prophet_sim::{Duration, SimTime};

/// Identifier of a transfer, unique for the lifetime of a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Bytes closer than this to zero count as "done" (absorbs f64 rounding).
const EPS_BYTES: f64 = 0.5;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Connection + PS synchronisation; no payload moves.
    Setup { until: SimTime },
    /// Slow start: rate capped at a window that doubles every RTT.
    Ramp { cap_bps: f64, next_double: SimTime },
    /// Window has outgrown every link; only fair sharing limits the rate.
    Steady,
}

#[derive(Debug, Clone)]
struct FlowState {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    total: f64,
    remaining: f64,
    rate: f64,
    phase: Phase,
    started: SimTime,
    tag: u64,
}

/// An entry in the network's optional event ledger (see
/// [`Network::record_events`]): the raw material for the cross-stack
/// trace/invariant layer's flow-level checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetEvent {
    /// A flow was accepted at this instant.
    FlowStart {
        /// Caller-supplied tag.
        tag: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Requested payload size.
        bytes: u64,
    },
    /// A flow's last byte arrived at this instant.
    FlowEnd {
        /// Caller-supplied tag.
        tag: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Bytes the fluid integrator actually moved (equals the request
        /// up to the completion epsilon).
        delivered: f64,
    },
    /// A flow was killed by [`Network::kill_flow`] /
    /// [`Network::kill_flows_touching`] before completing.
    FlowKilled {
        /// Caller-supplied tag.
        tag: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Bytes moved before the kill (the receiver discards them).
        delivered: f64,
    },
}

/// A transfer removed by a kill, with the partial byte count it had moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KilledFlow {
    /// The caller-supplied tag of the killed flow.
    pub tag: u64,
    /// Its source node.
    pub src: NodeId,
    /// Its destination node.
    pub dst: NodeId,
    /// Bytes the integrator had moved before the kill.
    pub delivered: f64,
}

/// A completed transfer, as returned by [`Network::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEnd {
    /// The finished flow.
    pub id: FlowId,
    /// Its source node.
    pub src: NodeId,
    /// Its destination node.
    pub dst: NodeId,
    /// The caller-supplied tag from [`Network::start_flow`].
    pub tag: u64,
    /// When the last byte arrived.
    pub finished: SimTime,
}

/// The fluid network engine. See the module docs for the driving contract.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    tcp: TcpModel,
    flows: Vec<FlowState>,
    next_id: u64,
    clock: SimTime,
    version: u64,
    tx_bytes: Vec<f64>,
    rx_bytes: Vec<f64>,
    record_events: bool,
    events: Vec<(SimTime, NetEvent)>,
}

impl Network {
    /// A network over `topo` with transport behaviour `tcp`.
    pub fn new(topo: Topology, tcp: TcpModel) -> Self {
        let n = topo.len();
        Network {
            topo,
            tcp,
            flows: Vec::new(),
            next_id: 0,
            clock: SimTime::ZERO,
            version: 0,
            tx_bytes: vec![0.0; n],
            rx_bytes: vec![0.0; n],
            record_events: false,
            events: Vec::new(),
        }
    }

    /// Turn the event ledger on or off. While on, every flow start and
    /// completion is appended as a [`NetEvent`] for the caller to drain
    /// with [`Network::drain_events`] — the hook the cross-stack
    /// trace/invariant layer consumes. Off (the default) costs nothing.
    pub fn record_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Take every ledger entry accumulated since the last drain, in
    /// chronological order.
    pub fn drain_events(&mut self) -> Vec<(SimTime, NetEvent)> {
        std::mem::take(&mut self.events)
    }

    /// The transport model in use.
    pub fn tcp(&self) -> TcpModel {
        self.tcp
    }

    /// The topology (capacities may change via [`Network::set_node_spec`]).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Monotone counter bumped on every rate change; callers use it to
    /// invalidate pre-scheduled wake-ups.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of in-flight transfers.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Cumulative bytes sent by `node` (payload only; handshakes are latency,
    /// not volume).
    pub fn tx_bytes(&self, node: NodeId) -> f64 {
        self.tx_bytes[node.0]
    }

    /// Cumulative bytes received by `node`.
    pub fn rx_bytes(&self, node: NodeId) -> f64 {
        self.rx_bytes[node.0]
    }

    /// Begin a transfer of `bytes` from `src` to `dst` at time `now`.
    ///
    /// `tag` is returned in the eventual [`FlowEnd`] so the caller can map
    /// completions back to its own bookkeeping without a side table.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        self.start_flow_with_warmth(now, src, dst, bytes, tag, false)
    }

    /// [`Network::start_flow`] with explicit connection warmth: a *warm*
    /// message continues an established, recently-active connection — no
    /// setup handshake and no slow-start ramp (the congestion window is
    /// already open). Back-to-back messages on a persistent BytePS
    /// connection are warm; the first message after an idle period, or any
    /// message on a blocking transport that waits for per-message acks,
    /// is cold.
    pub fn start_flow_with_warmth(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
        warm: bool,
    ) -> FlowId {
        debug_assert!(now >= self.clock, "flow started in the past");
        // Advance cannot complete anything the caller hasn't seen: callers
        // drive advance_to() before acting, but be defensive and assert.
        let done = self.advance_to(now);
        debug_assert!(
            done.is_empty(),
            "start_flow raced past unharvested completions"
        );
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let phase = if warm {
            Phase::Steady
        } else {
            self.initial_phase(now)
        };
        self.flows.push(FlowState {
            id,
            src,
            dst,
            total: bytes as f64,
            remaining: (bytes as f64).max(0.0),
            rate: 0.0,
            phase,
            started: now,
            tag,
        });
        if self.record_events {
            self.events.push((
                now,
                NetEvent::FlowStart {
                    tag,
                    src,
                    dst,
                    bytes,
                },
            ));
        }
        self.reallocate();
        id
    }

    fn initial_phase(&self, now: SimTime) -> Phase {
        if self.tcp.setup_s > 0.0 {
            Phase::Setup {
                until: now + Duration::from_secs_f64(self.tcp.setup_s),
            }
        } else if self.tcp.rtt_s > 0.0 && self.tcp.init_cwnd_bytes.is_finite() {
            Phase::Ramp {
                cap_bps: self.tcp.init_cwnd_bytes / self.tcp.rtt_s,
                next_double: now + Duration::from_secs_f64(self.tcp.rtt_s),
            }
        } else {
            Phase::Steady
        }
    }

    /// Change a node's NIC capacities at `now` (dynamic / heterogeneous
    /// bandwidth experiments). In-flight flows are re-allocated immediately.
    ///
    /// Any completions that fall at exactly `now` are returned — callers
    /// must handle them just like [`Network::advance_to`] results.
    pub fn set_node_spec(&mut self, now: SimTime, node: NodeId, spec: NodeSpec) -> Vec<FlowEnd> {
        let done = self.advance_to(now);
        self.topo.set_spec(node, spec);
        self.reallocate();
        done
    }

    /// Kill the in-flight flow carrying `tag` at `now` (a downed link or a
    /// lost message). The bytes it had moved stay in the tx/rx counters —
    /// they *were* on the wire — but the receiver never assembles the
    /// message, so the caller must not credit them to any gradient.
    /// Returns `None` if no in-flight flow carries `tag` (it may have
    /// completed at exactly `now`; drain completions first).
    pub fn kill_flow(&mut self, now: SimTime, tag: u64) -> Option<KilledFlow> {
        let done = self.advance_to(now);
        debug_assert!(
            done.is_empty(),
            "kill_flow raced past unharvested completions"
        );
        let idx = self.flows.iter().position(|f| f.tag == tag)?;
        Some(self.remove_killed(now, idx))
    }

    /// Kill every in-flight flow with `node` as source or destination (a
    /// node whose links dropped or whose PS shard crashed), returning the
    /// killed flows in flow-start order. See [`Network::kill_flow`] for the
    /// byte-accounting contract.
    pub fn kill_flows_touching(&mut self, now: SimTime, node: NodeId) -> Vec<KilledFlow> {
        let done = self.advance_to(now);
        debug_assert!(done.is_empty(), "kill raced past unharvested completions");
        let mut killed = Vec::new();
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].src == node || self.flows[i].dst == node {
                killed.push(self.remove_killed(now, i));
            } else {
                i += 1;
            }
        }
        killed
    }

    fn remove_killed(&mut self, now: SimTime, idx: usize) -> KilledFlow {
        let f = self.flows.remove(idx);
        let delivered = f.total - f.remaining;
        if self.record_events {
            self.events.push((
                now,
                NetEvent::FlowKilled {
                    tag: f.tag,
                    src: f.src,
                    dst: f.dst,
                    delivered,
                },
            ));
        }
        self.reallocate();
        KilledFlow {
            tag: f.tag,
            src: f.src,
            dst: f.dst,
            delivered,
        }
    }

    /// The next instant at which rates change or a flow completes; `None`
    /// when nothing is in flight.
    pub fn next_event_time(&self) -> Option<SimTime> {
        match (self.next_phase_transition(), self.next_completion_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Evolve the network to `now`, returning every flow whose last byte
    /// arrived at or before `now` (in flow-start order — deterministic).
    ///
    /// Safe for arbitrary jumps: the engine internally breaks `[clock, now]`
    /// into constant-rate segments at phase transitions *and* completions,
    /// so completion timestamps are exact even if the caller overshoots.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowEnd> {
        debug_assert!(now >= self.clock, "network advanced backwards");
        let mut completed = Vec::new();
        loop {
            let mut seg_end = now;
            if let Some(t) = self.next_phase_transition() {
                seg_end = seg_end.min(t);
            }
            if let Some(t) = self.next_completion_time() {
                seg_end = seg_end.min(t);
            }
            self.integrate_to(seg_end);
            self.process_transitions(seg_end);
            let before = completed.len();
            self.harvest_completions(seg_end, &mut completed);
            if completed.len() > before {
                self.reallocate();
            }
            if seg_end >= now {
                break;
            }
        }
        completed
    }

    /// Earliest predicted completion among flows currently moving bytes.
    fn next_completion_time(&self) -> Option<SimTime> {
        self.flows
            .iter()
            .filter(|f| f.rate > 0.0 && !matches!(f.phase, Phase::Setup { .. }))
            .map(|f| self.clock + Duration::for_bytes(f.remaining.ceil() as u64, f.rate))
            .min()
    }

    fn next_phase_transition(&self) -> Option<SimTime> {
        self.flows
            .iter()
            .filter_map(|f| match f.phase {
                Phase::Setup { until } => Some(until),
                Phase::Ramp { next_double, .. } => Some(next_double),
                Phase::Steady => None,
            })
            .min()
    }

    /// Move bytes at current rates from `clock` to `t`.
    fn integrate_to(&mut self, t: SimTime) {
        let dt = t.saturating_since(self.clock).as_secs_f64();
        if dt > 0.0 {
            for f in &mut self.flows {
                if f.rate > 0.0 {
                    let moved = (f.rate * dt).min(f.remaining);
                    f.remaining -= moved;
                    self.tx_bytes[f.src.0] += moved;
                    self.rx_bytes[f.dst.0] += moved;
                }
            }
        }
        self.clock = t;
    }

    /// Apply setup-completion and window-doubling transitions due at `t`.
    fn process_transitions(&mut self, t: SimTime) {
        let mut changed = false;
        let max_cap = self
            .topo
            .iter()
            .map(|(_, s)| s.uplink_bps.max(s.downlink_bps))
            .fold(0.0f64, f64::max);
        for f in &mut self.flows {
            match f.phase {
                Phase::Setup { until } if until <= t => {
                    f.phase = if self.tcp.rtt_s > 0.0 && self.tcp.init_cwnd_bytes.is_finite() {
                        Phase::Ramp {
                            cap_bps: self.tcp.init_cwnd_bytes / self.tcp.rtt_s,
                            next_double: t + Duration::from_secs_f64(self.tcp.rtt_s),
                        }
                    } else {
                        Phase::Steady
                    };
                    changed = true;
                }
                Phase::Ramp {
                    cap_bps,
                    next_double,
                } if next_double <= t => {
                    let cap = cap_bps * 2.0;
                    f.phase = if cap >= max_cap {
                        Phase::Steady
                    } else {
                        Phase::Ramp {
                            cap_bps: cap,
                            next_double: t + Duration::from_secs_f64(self.tcp.rtt_s),
                        }
                    };
                    changed = true;
                }
                _ => {}
            }
        }
        if changed {
            self.reallocate();
        }
    }

    fn harvest_completions(&mut self, t: SimTime, out: &mut Vec<FlowEnd>) {
        let mut i = 0;
        while i < self.flows.len() {
            let done = self.flows[i].remaining <= EPS_BYTES
                && !matches!(self.flows[i].phase, Phase::Setup { .. });
            if done {
                let f = self.flows.remove(i);
                if self.record_events {
                    self.events.push((
                        t,
                        NetEvent::FlowEnd {
                            tag: f.tag,
                            src: f.src,
                            dst: f.dst,
                            delivered: f.total - f.remaining,
                        },
                    ));
                }
                out.push(FlowEnd {
                    id: f.id,
                    src: f.src,
                    dst: f.dst,
                    tag: f.tag,
                    finished: t,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Recompute max-min fair rates for the current flow set.
    fn reallocate(&mut self) {
        self.version += 1;
        if self.flows.is_empty() {
            return;
        }
        let demands: Vec<FlowDemand> = self
            .flows
            .iter()
            .map(|f| FlowDemand {
                src: f.src,
                dst: f.dst,
                cap_bps: match f.phase {
                    Phase::Setup { .. } => 0.0,
                    Phase::Ramp { cap_bps, .. } => cap_bps,
                    Phase::Steady => f64::INFINITY,
                },
            })
            .collect();
        let rates = maxmin::allocate(&self.topo, &demands);
        for (f, r) in self.flows.iter_mut().zip(rates) {
            f.rate = r;
        }
    }

    /// Instantaneous rate of a flow (testing/diagnostics).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.rate)
    }

    /// Time the flow was started (testing/diagnostics).
    pub fn flow_started(&self, id: FlowId) -> Option<SimTime> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.started)
    }

    /// Run the network by itself until all flows complete, returning every
    /// completion. Only meaningful when the caller has no events of its own
    /// (tests, closed-form validation).
    pub fn run_to_completion(&mut self) -> Vec<FlowEnd> {
        let mut all = Vec::new();
        while let Some(t) = self.next_event_time() {
            all.extend(self.advance_to(t));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_net(n: usize, bps: f64) -> Network {
        Network::new(
            Topology::uniform(n, NodeSpec::symmetric(bps)),
            TcpModel::IDEAL,
        )
    }

    #[test]
    fn single_flow_finishes_at_bytes_over_rate() {
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 5000, 7);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert!((done[0].finished.as_secs_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Two 1000-byte flows into the same sink at 1000 B/s total:
        // both run at 500 B/s and finish together at t=2.
        let mut net = ideal_net(3, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 1000, 0);
        net.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), 1000, 1);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        for d in &done {
            assert!((d.finished.as_secs_f64() - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn late_flow_reallocates_early_flow() {
        // Flow A alone for 1 s (moves 1000 B), then shares for the rest.
        // A: 2000 B total -> 1000 left at t=1, at 500 B/s -> done t=3.
        // B: 500 B at 500 B/s from t=1 -> done t=2, then A speeds back up!
        // Recompute: at t=2 A has 500 left, alone at 1000 B/s -> done t=2.5.
        let mut net = ideal_net(3, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 2000, 0);
        let mut done = Vec::new();
        // Drive manually so we can inject B at t=1.
        let t1 = SimTime::from_secs_f64(1.0);
        done.extend(net.advance_to(t1));
        net.start_flow(t1, NodeId(1), NodeId(2), 500, 1);
        done.extend(net.run_to_completion());
        assert_eq!(done.len(), 2);
        let a = done.iter().find(|d| d.tag == 0).unwrap();
        let b = done.iter().find(|d| d.tag == 1).unwrap();
        assert!((b.finished.as_secs_f64() - 2.0).abs() < 1e-6, "{b:?}");
        assert!((a.finished.as_secs_f64() - 2.5).abs() < 1e-6, "{a:?}");
    }

    #[test]
    fn setup_latency_delays_first_byte() {
        let tcp = TcpModel {
            rtt_s: 0.0,
            setup_s: 0.5,
            init_cwnd_bytes: f64::INFINITY,
        };
        let mut net = Network::new(Topology::uniform(2, NodeSpec::symmetric(1000.0)), tcp);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1000, 0);
        let done = net.run_to_completion();
        assert!((done[0].finished.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn fluid_engine_matches_closed_form_ramp() {
        // The fluid engine with slow-start caps must agree with
        // TcpModel::transfer_time_s for an unshared flow.
        let tcp = TcpModel {
            rtt_s: 1e-3,
            setup_s: 2e-3,
            init_cwnd_bytes: 1000.0,
        };
        let bps = 8e6;
        for bytes in [500u64, 1_500, 15_000, 1_000_000] {
            let mut net = Network::new(Topology::uniform(2, NodeSpec::symmetric(bps)), tcp);
            net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), bytes, 0);
            let done = net.run_to_completion();
            let expect = tcp.transfer_time_s(bytes as f64, bps);
            let got = done[0].finished.as_secs_f64();
            assert!(
                (got - expect).abs() < 1e-5,
                "{bytes} B: fluid {got} vs closed form {expect}"
            );
        }
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 4000, 0);
        net.run_to_completion();
        assert!((net.tx_bytes(NodeId(0)) - 4000.0).abs() < 1.0);
        assert!((net.rx_bytes(NodeId(1)) - 4000.0).abs() < 1.0);
        assert_eq!(net.tx_bytes(NodeId(1)), 0.0);
    }

    #[test]
    fn version_bumps_on_changes() {
        let mut net = ideal_net(2, 1000.0);
        let v0 = net.version();
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 100, 0);
        assert!(net.version() > v0);
    }

    #[test]
    fn capacity_change_mid_flow() {
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 2000, 0);
        // After 1 s (1000 B left), throttle to 100 B/s -> 10 more seconds.
        let t1 = SimTime::from_secs_f64(1.0);
        let done = net.set_node_spec(t1, NodeId(0), NodeSpec::symmetric(100.0));
        assert!(done.is_empty());
        let done = net.run_to_completion();
        assert!((done[0].finished.as_secs_f64() - 11.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_completes_after_setup() {
        let tcp = TcpModel {
            rtt_s: 0.0,
            setup_s: 0.25,
            init_cwnd_bytes: f64::INFINITY,
        };
        let mut net = Network::new(Topology::uniform(2, NodeSpec::symmetric(1000.0)), tcp);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 0, 9);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs_f64() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn many_concurrent_flows_all_complete() {
        let mut net = Network::new(
            Topology::uniform(9, NodeSpec::from_gbps(10.0)),
            TcpModel::EC2,
        );
        for w in 1..9usize {
            net.start_flow(SimTime::ZERO, NodeId(w), NodeId(0), 25_000_000, w as u64);
        }
        let done = net.run_to_completion();
        assert_eq!(done.len(), 8);
        // 8 x 25 MB through a 1.25 GB/s downlink: >= 160 ms + overheads.
        let last = done.iter().map(|d| d.finished).max().unwrap();
        assert!(last.as_secs_f64() > 0.16);
        assert!(last.as_secs_f64() < 0.5, "took {last}");
    }

    #[test]
    fn killed_flow_keeps_partial_bytes_in_counters() {
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 2000, 5);
        let t1 = SimTime::from_secs_f64(1.0);
        let killed = net.kill_flow(t1, 5).expect("flow should be in flight");
        assert_eq!(killed.tag, 5);
        assert!((killed.delivered - 1000.0).abs() < 1.0, "{killed:?}");
        assert_eq!(net.active_flows(), 0);
        // The wire carried those bytes even though the message died.
        assert!((net.tx_bytes(NodeId(0)) - 1000.0).abs() < 1.0);
        assert!(net.kill_flow(t1, 5).is_none(), "double kill");
    }

    #[test]
    fn kill_flows_touching_takes_both_directions() {
        let mut net = ideal_net(3, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(1), NodeId(0), 5000, 1);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 5000, 2);
        net.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), 5000, 3);
        let killed = net.kill_flows_touching(SimTime::from_secs_f64(0.5), NodeId(0));
        let tags: Vec<u64> = killed.iter().map(|k| k.tag).collect();
        assert_eq!(tags, vec![1, 2]);
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    fn kill_frees_capacity_for_survivors() {
        // Two flows share a 1000 B/s sink; killing one at t=1 lets the
        // survivor finish at full rate.
        let mut net = ideal_net(3, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 2000, 0);
        net.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), 2000, 1);
        let t1 = SimTime::from_secs_f64(1.0);
        net.kill_flow(t1, 1).unwrap();
        // Survivor: 1500 B left at 1000 B/s -> done at t=2.5.
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!(
            (done[0].finished.as_secs_f64() - 2.5).abs() < 1e-6,
            "{done:?}"
        );
    }

    #[test]
    fn killed_flow_appears_in_event_ledger() {
        let mut net = ideal_net(2, 1000.0);
        net.record_events(true);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 2000, 9);
        net.kill_flow(SimTime::from_secs_f64(1.0), 9);
        let events = net.drain_events();
        assert!(matches!(
            events.last(),
            Some((_, NetEvent::FlowKilled { tag: 9, .. }))
        ));
    }

    #[test]
    fn flow_rate_visible_while_active() {
        let mut net = ideal_net(2, 1000.0);
        let id = net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 10_000, 0);
        assert!((net.flow_rate(id).unwrap() - 1000.0).abs() < 1e-9);
        assert_eq!(net.flow_started(id), Some(SimTime::ZERO));
        net.run_to_completion();
        assert_eq!(net.flow_rate(id), None);
    }
}
