//! The event-driven fluid flow engine.
//!
//! [`Network`] tracks the set of in-flight transfers and evolves them in
//! piecewise-constant-rate segments: rates only change when a flow starts,
//! finishes, finishes its setup handshake, doubles its slow-start window, or
//! a node's capacity is reconfigured. Between those instants every flow
//! moves bytes linearly, so the engine only needs to be woken at the next
//! such instant — which it reports via [`Network::next_event_time`].
//!
//! The driving simulation loop is owned by the caller (the cluster model in
//! `prophet-ps`); the contract is:
//!
//! ```text
//! loop {
//!     t = min(caller's own events, net.next_event_time());
//!     completions = net.advance_to(t);   // always safe, also for t < next
//!     ... handle completions, maybe net.start_flow(...) ...
//! }
//! ```
//!
//! Rate changes bump an internal [`Network::version`] so callers using
//! pre-scheduled wake-ups can discard stale ones.
//!
//! # Scaling architecture
//!
//! The engine is built to stay cheap at thousand-worker clusters:
//!
//! * **Component-incremental re-allocation.** Flows are grouped into
//!   connected components (flows sharing no node never couple). A flow
//!   arrival eagerly merges the components its endpoints belong to; a
//!   departure marks its component *dirty*, and the next re-allocation
//!   re-partitions only dirty components (lazy split) and re-fills only
//!   them via [`maxmin::fill_component`]. Untouched components keep their
//!   rates — which is sound because a component's allocation is a pure
//!   function of its own flows and node capacities. The full-resolve
//!   oracle ([`Network::set_full_resolve`]) marks *every* component dirty
//!   on every re-allocation and flows through the identical code path, so
//!   the incremental engine is bit-identical by construction; the golden
//!   suite exists to catch dirty-tracking omissions.
//! * **Indexed event lookup.** Completion and phase-transition instants
//!   live in lazy-invalidation binary heaps keyed `(time, flow id, slot)`
//!   instead of being recomputed by O(#flows) scans. An entry is stale
//!   when its flow is gone or its stored time no longer matches the flow's
//!   current prediction; stale entries are discarded on pop. The `(time,
//!   id)` ordering hands completions back in flow-start order for free.
//! * **Slab storage + lazy integration.** Flows live in a slab (stable
//!   slot indices, O(1) removal via a free list, no `Vec::remove`
//!   shifting), and each flow's byte position is integrated lazily — only
//!   when its rate changes, it completes, or it is killed — from a
//!   per-flow `last_sync` watermark. Completion instants are *predicted*
//!   once per rate change from the fractional residual
//!   ([`Duration::for_bytes_f64`]), so a sub-byte remainder never delays
//!   or duplicates a completion.

use crate::maxmin::{self, FlowDemand, Scratch};
use crate::tcp::TcpModel;
use crate::topology::{NodeId, NodeSpec, Topology};
use prophet_sim::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a transfer, unique for the lifetime of a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Bytes closer than this to zero count as "done" (absorbs f64 rounding).
const EPS_BYTES: f64 = 0.5;

/// Sentinel for "no component".
const NO_COMP: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Connection + PS synchronisation; no payload moves.
    Setup { until: SimTime },
    /// Slow start: rate capped at a window that doubles every RTT.
    Ramp { cap_bps: f64, next_double: SimTime },
    /// Window has outgrown every link; only fair sharing limits the rate.
    Steady,
}

#[derive(Debug, Clone)]
struct FlowState {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    total: f64,
    remaining: f64,
    rate: f64,
    phase: Phase,
    started: SimTime,
    tag: u64,
    /// Byte-integration watermark: `remaining` is exact as of this instant.
    last_sync: SimTime,
    /// Predicted completion under the current rate (`SimTime::MAX` while
    /// the flow isn't moving payload). Recomputed only when the rate
    /// actually changes, which keeps the full/incremental engines in
    /// lockstep.
    pred_end: SimTime,
    /// Connected component this flow belongs to.
    comp: u32,
}

/// One connected component of the flow graph.
#[derive(Debug, Clone, Default)]
struct Comp {
    /// Member slots, ascending by [`FlowId`] (= flow-start order).
    flows: Vec<u32>,
    live: bool,
    /// Queued for re-fill at the next [`Network::reallocate`].
    dirty: bool,
    /// A member departed since the last connectivity check, so the re-fill
    /// must re-partition before filling. Attaches and phase transitions
    /// never disconnect anything, so their re-fills skip the union-find.
    maybe_split: bool,
}

fn transition_time(f: &FlowState) -> Option<SimTime> {
    match f.phase {
        Phase::Setup { until } => Some(until),
        Phase::Ramp { next_double, .. } => Some(next_double),
        Phase::Steady => None,
    }
}

/// An entry in the network's optional event ledger (see
/// [`Network::record_events`]): the raw material for the cross-stack
/// trace/invariant layer's flow-level checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetEvent {
    /// A flow was accepted at this instant.
    FlowStart {
        /// Caller-supplied tag.
        tag: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Requested payload size.
        bytes: u64,
    },
    /// A flow's last byte arrived at this instant.
    FlowEnd {
        /// Caller-supplied tag.
        tag: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Bytes the fluid integrator actually moved (equals the request
        /// up to the completion epsilon).
        delivered: f64,
    },
    /// A flow was killed by [`Network::kill_flow`] /
    /// [`Network::kill_flows_touching`] before completing.
    FlowKilled {
        /// Caller-supplied tag.
        tag: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Bytes moved before the kill (the receiver discards them).
        delivered: f64,
    },
}

/// A transfer removed by a kill, with the partial byte count it had moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KilledFlow {
    /// The caller-supplied tag of the killed flow.
    pub tag: u64,
    /// Its source node.
    pub src: NodeId,
    /// Its destination node.
    pub dst: NodeId,
    /// Bytes the integrator had moved before the kill.
    pub delivered: f64,
}

/// A completed transfer, as returned by [`Network::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEnd {
    /// The finished flow.
    pub id: FlowId,
    /// Its source node.
    pub src: NodeId,
    /// Its destination node.
    pub dst: NodeId,
    /// The caller-supplied tag from [`Network::start_flow`].
    pub tag: u64,
    /// When the last byte arrived.
    pub finished: SimTime,
}

/// Lazy-invalidation heap entry: `(instant, flow id, slot)`. Ordered by
/// `(instant, id)` so simultaneous events resolve in flow-start order.
type EventEntry = Reverse<(SimTime, u64, u32)>;

/// The fluid network engine. See the module docs for the driving contract.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    tcp: TcpModel,
    slots: Vec<Option<FlowState>>,
    free_slots: Vec<u32>,
    n_active: usize,
    next_id: u64,
    clock: SimTime,
    version: u64,
    /// Cached `max(uplink, downlink)` over all nodes: the Ramp → Steady
    /// threshold. Recomputed when a node spec changes.
    max_cap: f64,
    // Component bookkeeping.
    comps: Vec<Comp>,
    free_comps: Vec<u32>,
    /// Component owning each node (`NO_COMP` when the node has no flows).
    node_comp: Vec<u32>,
    /// Active flow endpoints per node (self-loops count twice).
    node_flows: Vec<u32>,
    /// Components queued for re-fill.
    dirty: Vec<u32>,
    full_resolve: bool,
    // Event index.
    completions: BinaryHeap<EventEntry>,
    transitions: BinaryHeap<EventEntry>,
    // Byte accounting: integrated-up-to-`last_sync` base per node; the
    // in-flight accrual since then is reconstructed on read.
    tx_base: Vec<f64>,
    rx_base: Vec<f64>,
    record_events: bool,
    events: Vec<(SimTime, NetEvent)>,
    // Reusable buffers (never carry results between calls).
    scratch: Scratch,
    demand_buf: Vec<FlowDemand>,
    rate_buf: Vec<f64>,
    part_idx: Vec<u32>,
    uf_parent: Vec<u32>,
    uf_epoch: Vec<u64>,
    uf_round: u64,
    part_map: Vec<u32>,
    part_map_epoch: Vec<u64>,
}

fn uf_find(parent: &mut [u32], x: u32) -> u32 {
    let mut root = x;
    while parent[root as usize] != root {
        root = parent[root as usize];
    }
    let mut cur = x;
    while parent[cur as usize] != root {
        let next = parent[cur as usize];
        parent[cur as usize] = root;
        cur = next;
    }
    root
}

impl Network {
    /// A network over `topo` with transport behaviour `tcp`.
    pub fn new(topo: Topology, tcp: TcpModel) -> Self {
        let n = topo.len();
        let max_cap = topo
            .iter()
            .map(|(_, s)| s.uplink_bps.max(s.downlink_bps))
            .fold(0.0f64, f64::max);
        Network {
            topo,
            tcp,
            slots: Vec::new(),
            free_slots: Vec::new(),
            n_active: 0,
            next_id: 0,
            clock: SimTime::ZERO,
            version: 0,
            max_cap,
            comps: Vec::new(),
            free_comps: Vec::new(),
            node_comp: vec![NO_COMP; n],
            node_flows: vec![0; n],
            dirty: Vec::new(),
            full_resolve: false,
            completions: BinaryHeap::new(),
            transitions: BinaryHeap::new(),
            tx_base: vec![0.0; n],
            rx_base: vec![0.0; n],
            record_events: false,
            events: Vec::new(),
            scratch: Scratch::default(),
            demand_buf: Vec::new(),
            rate_buf: Vec::new(),
            part_idx: Vec::new(),
            uf_parent: vec![0; n],
            uf_epoch: vec![0; n],
            uf_round: 0,
            part_map: vec![0; n],
            part_map_epoch: vec![0; n],
        }
    }

    /// Switch between incremental (default) and full-resolve re-allocation.
    ///
    /// Full-resolve marks every live component dirty on every
    /// [`Network::reallocate`], so each rate is recomputed from scratch each
    /// time — the oracle the incremental engine is golden-tested against.
    /// Both modes share the identical fill path, so their `FlowEnd`
    /// timestamps and rates are bit-identical unless incremental dirty
    /// tracking misses an invalidation.
    pub fn set_full_resolve(&mut self, on: bool) {
        self.full_resolve = on;
    }

    /// True when every re-allocation re-solves every component.
    pub fn full_resolve(&self) -> bool {
        self.full_resolve
    }

    /// Turn the event ledger on or off. While on, every flow start and
    /// completion is appended as a [`NetEvent`] for the caller to drain
    /// with [`Network::drain_events`] — the hook the cross-stack
    /// trace/invariant layer consumes. Off (the default) costs nothing.
    pub fn record_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Take every ledger entry accumulated since the last drain, in
    /// chronological order.
    pub fn drain_events(&mut self) -> Vec<(SimTime, NetEvent)> {
        std::mem::take(&mut self.events)
    }

    /// The transport model in use.
    pub fn tcp(&self) -> TcpModel {
        self.tcp
    }

    /// The topology (capacities may change via [`Network::set_node_spec`]).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Monotone counter bumped on every rate change; callers use it to
    /// invalidate pre-scheduled wake-ups.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of in-flight transfers.
    pub fn active_flows(&self) -> usize {
        self.n_active
    }

    /// Cumulative bytes sent by `node` up to the engine clock (payload
    /// only; handshakes are latency, not volume).
    pub fn tx_bytes(&self, node: NodeId) -> f64 {
        let mut total = self.tx_base[node.0];
        for f in self.slots.iter().flatten() {
            if f.src == node && f.rate > 0.0 {
                total += f.rate * self.clock.saturating_since(f.last_sync).as_secs_f64();
            }
        }
        total
    }

    /// Cumulative bytes received by `node` up to the engine clock.
    pub fn rx_bytes(&self, node: NodeId) -> f64 {
        let mut total = self.rx_base[node.0];
        for f in self.slots.iter().flatten() {
            if f.dst == node && f.rate > 0.0 {
                total += f.rate * self.clock.saturating_since(f.last_sync).as_secs_f64();
            }
        }
        total
    }

    /// Begin a transfer of `bytes` from `src` to `dst` at time `now`.
    ///
    /// `tag` is returned in the eventual [`FlowEnd`] so the caller can map
    /// completions back to its own bookkeeping without a side table.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        self.start_flow_with_warmth(now, src, dst, bytes, tag, false)
    }

    /// [`Network::start_flow`] with explicit connection warmth: a *warm*
    /// message continues an established, recently-active connection — no
    /// setup handshake and no slow-start ramp (the congestion window is
    /// already open). Back-to-back messages on a persistent BytePS
    /// connection are warm; the first message after an idle period, or any
    /// message on a blocking transport that waits for per-message acks,
    /// is cold.
    pub fn start_flow_with_warmth(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
        warm: bool,
    ) -> FlowId {
        debug_assert!(now >= self.clock, "flow started in the past");
        // Advance cannot complete anything the caller hasn't seen: callers
        // drive advance_to() before acting, but be defensive and assert.
        let done = self.advance_to(now);
        debug_assert!(
            done.is_empty(),
            "start_flow raced past unharvested completions"
        );
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let phase = if warm {
            Phase::Steady
        } else {
            self.initial_phase(now)
        };
        let slot = self.alloc_slot();
        self.slots[slot as usize] = Some(FlowState {
            id,
            src,
            dst,
            total: bytes as f64,
            remaining: (bytes as f64).max(0.0),
            rate: 0.0,
            phase,
            started: now,
            tag,
            last_sync: now,
            pred_end: SimTime::MAX,
            comp: NO_COMP,
        });
        self.n_active += 1;
        self.attach_flow(slot);
        if let Some(t) = transition_time(self.slots[slot as usize].as_ref().unwrap()) {
            self.transitions.push(Reverse((t, id.0, slot)));
        }
        if self.record_events {
            self.events.push((
                now,
                NetEvent::FlowStart {
                    tag,
                    src,
                    dst,
                    bytes,
                },
            ));
        }
        // Deliberately NOT re-allocating here: the component is only marked
        // dirty, and the re-fill is deferred to the next rate consumer
        // ([`Network::next_event_time`] or a time-advancing
        // [`Network::advance_to`]). Progressive filling is memoryless — the
        // rates it produces depend only on the topology and the live demand
        // set — so collapsing a burst of same-instant starts into one fill
        // yields bit-identical rates to filling after every start, while
        // turning an O(flows²) wave into a single O(flows) resolve. No time
        // can pass and no prediction can be consumed before the deferred
        // fill runs, so no output of the simulation can observe the
        // difference.
        id
    }

    fn initial_phase(&self, now: SimTime) -> Phase {
        if self.tcp.setup_s > 0.0 {
            Phase::Setup {
                until: now + Duration::from_secs_f64(self.tcp.setup_s),
            }
        } else if self.tcp.rtt_s > 0.0 && self.tcp.init_cwnd_bytes.is_finite() {
            Phase::Ramp {
                cap_bps: self.tcp.init_cwnd_bytes / self.tcp.rtt_s,
                next_double: now + Duration::from_secs_f64(self.tcp.rtt_s),
            }
        } else {
            Phase::Steady
        }
    }

    /// Change a node's NIC capacities at `now` (dynamic / heterogeneous
    /// bandwidth experiments). In-flight flows are re-allocated immediately.
    ///
    /// Any completions that fall at exactly `now` are returned — callers
    /// must handle them just like [`Network::advance_to`] results.
    pub fn set_node_spec(&mut self, now: SimTime, node: NodeId, spec: NodeSpec) -> Vec<FlowEnd> {
        let done = self.advance_to(now);
        self.topo.set_spec(node, spec);
        self.max_cap = self
            .topo
            .iter()
            .map(|(_, s)| s.uplink_bps.max(s.downlink_bps))
            .fold(0.0f64, f64::max);
        // Only the component touching this node sees different capacities;
        // every other component's allocation is unchanged by construction.
        let c = self.node_comp[node.0];
        if c != NO_COMP {
            self.mark_dirty(c);
        }
        self.reallocate();
        done
    }

    /// Kill the in-flight flow carrying `tag` at `now` (a downed link or a
    /// lost message). The bytes it had moved stay in the tx/rx counters —
    /// they *were* on the wire — but the receiver never assembles the
    /// message, so the caller must not credit them to any gradient.
    /// Returns `None` if no in-flight flow carries `tag` (it may have
    /// completed at exactly `now`; drain completions first).
    pub fn kill_flow(&mut self, now: SimTime, tag: u64) -> Option<KilledFlow> {
        let done = self.advance_to(now);
        debug_assert!(
            done.is_empty(),
            "kill_flow raced past unharvested completions"
        );
        // Earliest-started match, as before the slab rewrite.
        let mut best: Option<(u64, u32)> = None;
        for (s, f) in self.slots.iter().enumerate() {
            if let Some(f) = f {
                if f.tag == tag && best.is_none_or(|(id, _)| f.id.0 < id) {
                    best = Some((f.id.0, s as u32));
                }
            }
        }
        let (_, slot) = best?;
        Some(self.remove_killed(now, slot))
    }

    /// Kill every in-flight flow with `node` as source or destination (a
    /// node whose links dropped or whose PS shard crashed), returning the
    /// killed flows in flow-start order. See [`Network::kill_flow`] for the
    /// byte-accounting contract.
    pub fn kill_flows_touching(&mut self, now: SimTime, node: NodeId) -> Vec<KilledFlow> {
        let done = self.advance_to(now);
        debug_assert!(done.is_empty(), "kill raced past unharvested completions");
        let mut victims: Vec<(u64, u32)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(s, f)| {
                f.as_ref()
                    .and_then(|f| (f.src == node || f.dst == node).then_some((f.id.0, s as u32)))
            })
            .collect();
        victims.sort_unstable();
        victims
            .into_iter()
            .map(|(_, s)| self.remove_killed(now, s))
            .collect()
    }

    fn remove_killed(&mut self, now: SimTime, slot: u32) -> KilledFlow {
        self.integrate_flow(slot);
        let f = self.slots[slot as usize].as_ref().unwrap();
        let killed = KilledFlow {
            tag: f.tag,
            src: f.src,
            dst: f.dst,
            delivered: f.total - f.remaining,
        };
        self.detach_flow(slot);
        self.free_slot(slot);
        if self.record_events {
            self.events.push((
                now,
                NetEvent::FlowKilled {
                    tag: killed.tag,
                    src: killed.src,
                    dst: killed.dst,
                    delivered: killed.delivered,
                },
            ));
        }
        self.reallocate();
        killed
    }

    /// The next instant at which rates change or a flow completes; `None`
    /// when nothing is in flight. (`&mut self`: peeking resolves deferred
    /// re-fills and prunes stale entries from the lazy event index.)
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.reallocate();
        let a = self.peek_transition();
        let b = self.peek_completion();
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    /// Evolve the network to `now`, returning every flow whose last byte
    /// arrived at or before `now` (in flow-start order — deterministic).
    ///
    /// Safe for arbitrary jumps: the engine internally breaks `[clock, now]`
    /// into constant-rate segments at phase transitions *and* completions,
    /// so completion timestamps are exact even if the caller overshoots.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowEnd> {
        debug_assert!(now >= self.clock, "network advanced backwards");
        // Time is about to pass: any deferred re-fills must land first so
        // the completion predictions segmenting `[clock, now]` are current.
        // At `now == clock` the deferral can keep riding — deferred dirt
        // only comes from same-instant starts, which push every completion
        // *later*, so nothing can become due at `now` that the index does
        // not already know about.
        if now > self.clock {
            self.reallocate();
        }
        let mut completed = Vec::new();
        loop {
            let mut seg_end = now;
            if let Some(t) = self.peek_transition() {
                seg_end = seg_end.min(t);
            }
            if let Some(t) = self.peek_completion() {
                seg_end = seg_end.min(t);
            }
            debug_assert!(seg_end >= self.clock, "event index went backwards");
            self.clock = seg_end;
            let mut processed = false;
            while let Some(slot) = self.pop_transition_due(seg_end) {
                self.apply_transition(slot, seg_end);
                processed = true;
            }
            if processed {
                self.reallocate();
            }
            let before = completed.len();
            while let Some(slot) = self.pop_completion_due(seg_end) {
                self.harvest(slot, seg_end, &mut completed);
            }
            if completed.len() > before {
                self.reallocate();
                processed = true;
            }
            if seg_end >= now && !processed {
                break;
            }
        }
        completed
    }

    /// Earliest valid transition entry, pruning stale ones.
    fn peek_transition(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, id, slot))) = self.transitions.peek() {
            if self.transition_entry_valid(t, id, slot) {
                return Some(t);
            }
            self.transitions.pop();
        }
        None
    }

    /// Earliest valid completion entry, pruning stale ones.
    fn peek_completion(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, id, slot))) = self.completions.peek() {
            if self.completion_entry_valid(t, id, slot) {
                return Some(t);
            }
            self.completions.pop();
        }
        None
    }

    fn transition_entry_valid(&self, t: SimTime, id: u64, slot: u32) -> bool {
        match self.slots[slot as usize].as_ref() {
            Some(f) if f.id.0 == id => transition_time(f) == Some(t),
            _ => false,
        }
    }

    fn completion_entry_valid(&self, t: SimTime, id: u64, slot: u32) -> bool {
        match self.slots[slot as usize].as_ref() {
            Some(f) if f.id.0 == id => f.pred_end == t,
            _ => false,
        }
    }

    fn pop_transition_due(&mut self, t: SimTime) -> Option<u32> {
        match self.peek_transition() {
            Some(et) if et <= t => {
                let Reverse((_, _, slot)) = self.transitions.pop().unwrap();
                Some(slot)
            }
            _ => None,
        }
    }

    fn pop_completion_due(&mut self, t: SimTime) -> Option<u32> {
        match self.peek_completion() {
            Some(et) if et <= t => {
                let Reverse((_, _, slot)) = self.completions.pop().unwrap();
                Some(slot)
            }
            _ => None,
        }
    }

    /// Apply one setup-completion or window-doubling transition due at `t`.
    fn apply_transition(&mut self, slot: u32, t: SimTime) {
        let rtt = self.tcp.rtt_s;
        let cwnd = self.tcp.init_cwnd_bytes;
        let max_cap = self.max_cap;
        let f = self.slots[slot as usize].as_mut().unwrap();
        // Was the outgoing phase cap actually binding? A Ramp doubling (or
        // Ramp→Steady) only ever *raises* the flow's demand cap. In the
        // fill, a non-binding cap's residual is never the round minimum, so
        // raising it further cannot perturb a single arithmetic step — the
        // re-fill would reproduce every rate bit for bit. Cap-limited flows
        // are pinned to exactly `cap_bps`, so `rate >= cap` is a precise
        // binding test, and skipping the no-op re-fill is what keeps large
        // fan-in components from being re-solved once per flow per RTT.
        let binding = match f.phase {
            Phase::Setup { .. } => true, // demand goes 0 → positive: real change
            Phase::Ramp { cap_bps, .. } => f.rate >= cap_bps,
            Phase::Steady => true,
        };
        match f.phase {
            Phase::Setup { until } => {
                debug_assert!(until == t, "setup transition fired at the wrong time");
                f.phase = if rtt > 0.0 && cwnd.is_finite() {
                    Phase::Ramp {
                        cap_bps: cwnd / rtt,
                        next_double: t + Duration::from_secs_f64(rtt),
                    }
                } else {
                    Phase::Steady
                };
            }
            Phase::Ramp { cap_bps, .. } => {
                let cap = cap_bps * 2.0;
                f.phase = if cap >= max_cap {
                    Phase::Steady
                } else {
                    Phase::Ramp {
                        cap_bps: cap,
                        next_double: t + Duration::from_secs_f64(rtt),
                    }
                };
            }
            Phase::Steady => unreachable!("transition entry for a Steady flow survived"),
        }
        let id = f.id.0;
        let comp = f.comp;
        let next = transition_time(f);
        if let Some(nt) = next {
            self.transitions.push(Reverse((nt, id, slot)));
        }
        // Setup→Ramp releases the flow (demand 0 → positive) and a binding
        // Ramp cap that doubles genuinely frees rate: both need a re-fill.
        // A non-binding cap that rises leaves the fill arithmetic — and so
        // every allocated rate — untouched, bit for bit; skip the re-fill.
        if binding {
            self.mark_dirty(comp);
        }
    }

    /// Complete the flow in `slot` at instant `t`.
    fn harvest(&mut self, slot: u32, t: SimTime, out: &mut Vec<FlowEnd>) {
        self.integrate_flow(slot);
        let f = self.slots[slot as usize].as_ref().unwrap();
        debug_assert!(
            f.remaining <= EPS_BYTES,
            "harvested flow still holds {} bytes",
            f.remaining
        );
        debug_assert!(!matches!(f.phase, Phase::Setup { .. }));
        let end = FlowEnd {
            id: f.id,
            src: f.src,
            dst: f.dst,
            tag: f.tag,
            finished: t,
        };
        let delivered = f.total - f.remaining;
        self.detach_flow(slot);
        self.free_slot(slot);
        if self.record_events {
            self.events.push((
                t,
                NetEvent::FlowEnd {
                    tag: end.tag,
                    src: end.src,
                    dst: end.dst,
                    delivered,
                },
            ));
        }
        out.push(end);
    }

    /// Bring one flow's byte position up to the engine clock.
    fn integrate_flow(&mut self, slot: u32) {
        let clock = self.clock;
        let (moved, src, dst) = {
            let f = self.slots[slot as usize].as_mut().unwrap();
            let dt = clock.saturating_since(f.last_sync).as_secs_f64();
            f.last_sync = clock;
            if dt > 0.0 && f.rate > 0.0 {
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                (moved, f.src.0, f.dst.0)
            } else {
                return;
            }
        };
        self.tx_base[src] += moved;
        self.rx_base[dst] += moved;
    }

    /// Set a flow's rate and refresh its completion prediction.
    fn set_rate(&mut self, slot: u32, rate: f64) {
        let clock = self.clock;
        let (pred, id) = {
            let f = self.slots[slot as usize].as_mut().unwrap();
            f.rate = rate;
            f.pred_end = if rate > 0.0 && !matches!(f.phase, Phase::Setup { .. }) {
                clock + Duration::for_bytes_f64(f.remaining, rate)
            } else {
                SimTime::MAX
            };
            (f.pred_end, f.id.0)
        };
        if pred != SimTime::MAX {
            self.completions.push(Reverse((pred, id, slot)));
        }
    }

    // ------------------------------------------------------------------
    // Component bookkeeping.
    // ------------------------------------------------------------------

    fn alloc_slot(&mut self) -> u32 {
        if let Some(s) = self.free_slots.pop() {
            s
        } else {
            self.slots.push(None);
            (self.slots.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, slot: u32) {
        self.slots[slot as usize] = None;
        self.free_slots.push(slot);
        self.n_active -= 1;
    }

    fn alloc_comp(&mut self) -> u32 {
        if let Some(c) = self.free_comps.pop() {
            let comp = &mut self.comps[c as usize];
            comp.flows.clear();
            comp.live = true;
            comp.dirty = false;
            comp.maybe_split = false;
            c
        } else {
            self.comps.push(Comp {
                flows: Vec::new(),
                live: true,
                dirty: false,
                maybe_split: false,
            });
            (self.comps.len() - 1) as u32
        }
    }

    fn mark_dirty(&mut self, c: u32) {
        let comp = &mut self.comps[c as usize];
        if comp.live && !comp.dirty {
            comp.dirty = true;
            self.dirty.push(c);
        }
    }

    /// Insert a freshly started flow into the component structure,
    /// merging the components of its endpoints if they differ.
    fn attach_flow(&mut self, slot: u32) {
        let (src, dst, in_setup) = {
            let f = self.slots[slot as usize].as_ref().unwrap();
            (f.src.0, f.dst.0, matches!(f.phase, Phase::Setup { .. }))
        };
        let ca = self.node_comp[src];
        let cb = self.node_comp[dst];
        let mut merged = false;
        let comp = match (ca != NO_COMP, cb != NO_COMP) {
            (false, false) => self.alloc_comp(),
            (true, false) => ca,
            (false, true) => cb,
            (true, true) if ca == cb => ca,
            (true, true) => {
                merged = true;
                self.merge_comps(ca, cb)
            }
        };
        // The new flow has the largest id so far, so pushing keeps the
        // member list id-sorted.
        self.comps[comp as usize].flows.push(slot);
        self.slots[slot as usize].as_mut().unwrap().comp = comp;
        self.node_comp[src] = comp;
        self.node_comp[dst] = comp;
        self.node_flows[src] += 1;
        self.node_flows[dst] += 1;
        // A flow still in TCP setup has a zero demand cap: the fill freezes
        // it at rate 0 immediately, and a frozen zero contributes nothing —
        // no counts, no cap terms, no increments — so adding it leaves
        // every other rate bit-identical and the re-fill can be skipped.
        // Its own rate field is already the 0.0 the fill would write. The
        // exception is a start that *bridges* two components: the oracle
        // groups by connectivity regardless of caps, so the merged
        // population must be re-filled as one to keep its delta sequence —
        // and therefore its bits — identical to the oracle's.
        if merged || !in_setup {
            self.mark_dirty(comp);
        }
    }

    /// Merge two components, keeping the larger; returns the survivor.
    fn merge_comps(&mut self, a: u32, b: u32) -> u32 {
        let (keep, gone) =
            if self.comps[a as usize].flows.len() >= self.comps[b as usize].flows.len() {
                (a, b)
            } else {
                (b, a)
            };
        let gone_flows = std::mem::take(&mut self.comps[gone as usize].flows);
        let kept_flows = std::mem::take(&mut self.comps[keep as usize].flows);
        // Two-pointer merge keeps the member list id-sorted.
        let mut merged = Vec::with_capacity(kept_flows.len() + gone_flows.len());
        {
            let slots = &self.slots;
            let fid = |s: u32| slots[s as usize].as_ref().unwrap().id.0;
            let (mut i, mut j) = (0, 0);
            while i < kept_flows.len() && j < gone_flows.len() {
                if fid(kept_flows[i]) < fid(gone_flows[j]) {
                    merged.push(kept_flows[i]);
                    i += 1;
                } else {
                    merged.push(gone_flows[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&kept_flows[i..]);
            merged.extend_from_slice(&gone_flows[j..]);
        }
        self.comps[keep as usize].flows = merged;
        for &s in &gone_flows {
            let (src, dst) = {
                let f = self.slots[s as usize].as_mut().unwrap();
                f.comp = keep;
                (f.src.0, f.dst.0)
            };
            self.node_comp[src] = keep;
            self.node_comp[dst] = keep;
        }
        let gone_comp = &mut self.comps[gone as usize];
        gone_comp.live = false;
        gone_comp.dirty = false;
        let gone_split = std::mem::replace(&mut gone_comp.maybe_split, false);
        self.comps[keep as usize].maybe_split |= gone_split;
        self.free_comps.push(gone);
        keep
    }

    /// Remove a flow from its component and the node bookkeeping.
    fn detach_flow(&mut self, slot: u32) {
        let (id, src, dst, comp) = {
            let f = self.slots[slot as usize].as_ref().unwrap();
            (f.id.0, f.src.0, f.dst.0, f.comp)
        };
        let pos = {
            let slots = &self.slots;
            self.comps[comp as usize]
                .flows
                .binary_search_by(|&s| slots[s as usize].as_ref().unwrap().id.0.cmp(&id))
                .expect("flow missing from its component")
        };
        self.comps[comp as usize].flows.remove(pos);
        for node in [src, dst] {
            self.node_flows[node] -= 1;
            if self.node_flows[node] == 0 {
                self.node_comp[node] = NO_COMP;
            }
        }
        if self.comps[comp as usize].flows.is_empty() {
            let c = &mut self.comps[comp as usize];
            c.live = false;
            c.dirty = false;
            c.maybe_split = false;
            self.free_comps.push(comp);
        } else {
            // The survivors' rates change (they may also have split into
            // disconnected parts — resolved lazily at the next refill).
            self.comps[comp as usize].maybe_split = true;
            self.mark_dirty(comp);
        }
    }

    /// Recompute rates for every dirty component (all components in
    /// full-resolve mode).
    fn reallocate(&mut self) {
        self.version += 1;
        if self.full_resolve {
            for c in 0..self.comps.len() {
                if self.comps[c].live {
                    self.mark_dirty(c as u32);
                }
            }
        }
        if self.dirty.is_empty() {
            return;
        }
        let mut queue = std::mem::take(&mut self.dirty);
        for &c in &queue {
            if !self.comps[c as usize].live || !self.comps[c as usize].dirty {
                continue;
            }
            self.comps[c as usize].dirty = false;
            self.refill(c);
        }
        queue.clear();
        self.dirty = queue;
    }

    /// Re-partition one dirty component (splitting if a departure
    /// disconnected it) and re-fill each resulting part.
    fn refill(&mut self, c: u32) {
        // Only a departure can disconnect a component: attaches and phase
        // transitions never remove an edge. If no member left since the
        // last connectivity check, the component is still connected and
        // the union-find pass would just rediscover a single part.
        if !self.comps[c as usize].maybe_split {
            self.fill_comp(c);
            return;
        }
        self.comps[c as usize].maybe_split = false;
        let list = std::mem::take(&mut self.comps[c as usize].flows);
        self.uf_round += 1;
        let round = self.uf_round;
        for &s in &list {
            let (src, dst) = {
                let f = self.slots[s as usize].as_ref().unwrap();
                (f.src.0, f.dst.0)
            };
            for g in [src, dst] {
                if self.uf_epoch[g] != round {
                    self.uf_parent[g] = g as u32;
                    self.uf_epoch[g] = round;
                }
            }
            let ra = uf_find(&mut self.uf_parent, src as u32);
            let rb = uf_find(&mut self.uf_parent, dst as u32);
            if ra != rb {
                self.uf_parent[ra as usize] = rb;
            }
        }
        self.part_idx.clear();
        let mut nparts: u32 = 0;
        for &s in &list {
            let src = self.slots[s as usize].as_ref().unwrap().src.0;
            let root = uf_find(&mut self.uf_parent, src as u32) as usize;
            if self.part_map_epoch[root] != round {
                self.part_map_epoch[root] = round;
                self.part_map[root] = nparts;
                nparts += 1;
            }
            self.part_idx.push(self.part_map[root]);
        }
        if nparts <= 1 {
            self.comps[c as usize].flows = list;
            self.fill_comp(c);
            return;
        }
        // Split: part 0 stays in `c`, the rest get fresh components. The
        // id-sorted order is preserved because each part takes its members
        // in list order.
        let mut part_comp: Vec<u32> = Vec::with_capacity(nparts as usize);
        part_comp.push(c);
        for _ in 1..nparts {
            part_comp.push(self.alloc_comp());
        }
        for (k, &s) in list.iter().enumerate() {
            let pc = part_comp[self.part_idx[k] as usize];
            self.comps[pc as usize].flows.push(s);
            let (src, dst) = {
                let f = self.slots[s as usize].as_mut().unwrap();
                f.comp = pc;
                (f.src.0, f.dst.0)
            };
            self.node_comp[src] = pc;
            self.node_comp[dst] = pc;
        }
        for &pc in &part_comp.clone() {
            self.fill_comp(pc);
        }
    }

    /// Run progressive filling over one component and apply the resulting
    /// rates, re-predicting completions only for flows whose rate actually
    /// changed (bitwise).
    fn fill_comp(&mut self, c: u32) {
        if self.comps[c as usize].flows.is_empty() {
            return;
        }
        let mut demands = std::mem::take(&mut self.demand_buf);
        let mut rates = std::mem::take(&mut self.rate_buf);
        demands.clear();
        {
            let slots = &self.slots;
            for &s in &self.comps[c as usize].flows {
                let f = slots[s as usize].as_ref().unwrap();
                demands.push(FlowDemand {
                    src: f.src,
                    dst: f.dst,
                    cap_bps: match f.phase {
                        Phase::Setup { .. } => 0.0,
                        Phase::Ramp { cap_bps, .. } => cap_bps,
                        Phase::Steady => f64::INFINITY,
                    },
                });
            }
        }
        rates.clear();
        rates.resize(demands.len(), 0.0);
        maxmin::fill_component(&self.topo, &demands, &mut rates, &mut self.scratch);
        for (k, &new_rate) in rates.iter().enumerate() {
            let s = self.comps[c as usize].flows[k];
            let cur = self.slots[s as usize].as_ref().unwrap().rate;
            if new_rate.to_bits() != cur.to_bits() {
                // Integrate at the old rate up to now, then switch.
                self.integrate_flow(s);
                self.set_rate(s, new_rate);
            }
        }
        self.demand_buf = demands;
        self.rate_buf = rates;
    }

    /// Instantaneous rate of a flow (testing/diagnostics). `&mut self`:
    /// observing a rate resolves any deferred re-fills first.
    pub fn flow_rate(&mut self, id: FlowId) -> Option<f64> {
        self.reallocate();
        self.slots
            .iter()
            .flatten()
            .find(|f| f.id == id)
            .map(|f| f.rate)
    }

    /// Time the flow was started (testing/diagnostics).
    pub fn flow_started(&self, id: FlowId) -> Option<SimTime> {
        self.slots
            .iter()
            .flatten()
            .find(|f| f.id == id)
            .map(|f| f.started)
    }

    /// Run the network by itself until all flows complete, returning every
    /// completion. Only meaningful when the caller has no events of its own
    /// (tests, closed-form validation).
    pub fn run_to_completion(&mut self) -> Vec<FlowEnd> {
        let mut all = Vec::new();
        while let Some(t) = self.next_event_time() {
            all.extend(self.advance_to(t));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_net(n: usize, bps: f64) -> Network {
        Network::new(
            Topology::uniform(n, NodeSpec::symmetric(bps)),
            TcpModel::IDEAL,
        )
    }

    #[test]
    fn single_flow_finishes_at_bytes_over_rate() {
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 5000, 7);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert!((done[0].finished.as_secs_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Two 1000-byte flows into the same sink at 1000 B/s total:
        // both run at 500 B/s and finish together at t=2.
        let mut net = ideal_net(3, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 1000, 0);
        net.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), 1000, 1);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        for d in &done {
            assert!((d.finished.as_secs_f64() - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn late_flow_reallocates_early_flow() {
        // Flow A alone for 1 s (moves 1000 B), then shares for the rest.
        // A: 2000 B total -> 1000 left at t=1, at 500 B/s -> done t=3.
        // B: 500 B at 500 B/s from t=1 -> done t=2, then A speeds back up!
        // Recompute: at t=2 A has 500 left, alone at 1000 B/s -> done t=2.5.
        let mut net = ideal_net(3, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 2000, 0);
        let mut done = Vec::new();
        // Drive manually so we can inject B at t=1.
        let t1 = SimTime::from_secs_f64(1.0);
        done.extend(net.advance_to(t1));
        net.start_flow(t1, NodeId(1), NodeId(2), 500, 1);
        done.extend(net.run_to_completion());
        assert_eq!(done.len(), 2);
        let a = done.iter().find(|d| d.tag == 0).unwrap();
        let b = done.iter().find(|d| d.tag == 1).unwrap();
        assert!((b.finished.as_secs_f64() - 2.0).abs() < 1e-6, "{b:?}");
        assert!((a.finished.as_secs_f64() - 2.5).abs() < 1e-6, "{a:?}");
    }

    #[test]
    fn setup_latency_delays_first_byte() {
        let tcp = TcpModel {
            rtt_s: 0.0,
            setup_s: 0.5,
            init_cwnd_bytes: f64::INFINITY,
        };
        let mut net = Network::new(Topology::uniform(2, NodeSpec::symmetric(1000.0)), tcp);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1000, 0);
        let done = net.run_to_completion();
        assert!((done[0].finished.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn fluid_engine_matches_closed_form_ramp() {
        // The fluid engine with slow-start caps must agree with
        // TcpModel::transfer_time_s for an unshared flow.
        let tcp = TcpModel {
            rtt_s: 1e-3,
            setup_s: 2e-3,
            init_cwnd_bytes: 1000.0,
        };
        let bps = 8e6;
        for bytes in [500u64, 1_500, 15_000, 1_000_000] {
            let mut net = Network::new(Topology::uniform(2, NodeSpec::symmetric(bps)), tcp);
            net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), bytes, 0);
            let done = net.run_to_completion();
            let expect = tcp.transfer_time_s(bytes as f64, bps);
            let got = done[0].finished.as_secs_f64();
            assert!(
                (got - expect).abs() < 1e-5,
                "{bytes} B: fluid {got} vs closed form {expect}"
            );
        }
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 4000, 0);
        net.run_to_completion();
        assert!((net.tx_bytes(NodeId(0)) - 4000.0).abs() < 1.0);
        assert!((net.rx_bytes(NodeId(1)) - 4000.0).abs() < 1.0);
        assert_eq!(net.tx_bytes(NodeId(1)), 0.0);
    }

    #[test]
    fn byte_counters_include_in_flight_accrual() {
        // Reading mid-flow must include the bytes accrued since the flow's
        // last lazy integration, not just the integrated base.
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 4000, 0);
        net.advance_to(SimTime::from_secs_f64(1.5));
        assert!((net.tx_bytes(NodeId(0)) - 1500.0).abs() < 1.0);
        assert!((net.rx_bytes(NodeId(1)) - 1500.0).abs() < 1.0);
    }

    #[test]
    fn version_bumps_on_changes() {
        let mut net = ideal_net(2, 1000.0);
        let v0 = net.version();
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 100, 0);
        // The re-fill is deferred; the version ticks once a rate consumer
        // (here the event-time peek) forces it to land.
        net.next_event_time();
        assert!(net.version() > v0);
    }

    #[test]
    fn capacity_change_mid_flow() {
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 2000, 0);
        // After 1 s (1000 B left), throttle to 100 B/s -> 10 more seconds.
        let t1 = SimTime::from_secs_f64(1.0);
        let done = net.set_node_spec(t1, NodeId(0), NodeSpec::symmetric(100.0));
        assert!(done.is_empty());
        let done = net.run_to_completion();
        assert!((done[0].finished.as_secs_f64() - 11.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_completes_after_setup() {
        let tcp = TcpModel {
            rtt_s: 0.0,
            setup_s: 0.25,
            init_cwnd_bytes: f64::INFINITY,
        };
        let mut net = Network::new(Topology::uniform(2, NodeSpec::symmetric(1000.0)), tcp);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 0, 9);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs_f64() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn many_concurrent_flows_all_complete() {
        let mut net = Network::new(
            Topology::uniform(9, NodeSpec::from_gbps(10.0)),
            TcpModel::EC2,
        );
        for w in 1..9usize {
            net.start_flow(SimTime::ZERO, NodeId(w), NodeId(0), 25_000_000, w as u64);
        }
        let done = net.run_to_completion();
        assert_eq!(done.len(), 8);
        // 8 x 25 MB through a 1.25 GB/s downlink: >= 160 ms + overheads.
        let last = done.iter().map(|d| d.finished).max().unwrap();
        assert!(last.as_secs_f64() > 0.16);
        assert!(last.as_secs_f64() < 0.5, "took {last}");
    }

    #[test]
    fn killed_flow_keeps_partial_bytes_in_counters() {
        let mut net = ideal_net(2, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 2000, 5);
        let t1 = SimTime::from_secs_f64(1.0);
        let killed = net.kill_flow(t1, 5).expect("flow should be in flight");
        assert_eq!(killed.tag, 5);
        assert!((killed.delivered - 1000.0).abs() < 1.0, "{killed:?}");
        assert_eq!(net.active_flows(), 0);
        // The wire carried those bytes even though the message died.
        assert!((net.tx_bytes(NodeId(0)) - 1000.0).abs() < 1.0);
        assert!(net.kill_flow(t1, 5).is_none(), "double kill");
    }

    #[test]
    fn kill_flows_touching_takes_both_directions() {
        let mut net = ideal_net(3, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(1), NodeId(0), 5000, 1);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 5000, 2);
        net.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), 5000, 3);
        let killed = net.kill_flows_touching(SimTime::from_secs_f64(0.5), NodeId(0));
        let tags: Vec<u64> = killed.iter().map(|k| k.tag).collect();
        assert_eq!(tags, vec![1, 2]);
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    fn kill_frees_capacity_for_survivors() {
        // Two flows share a 1000 B/s sink; killing one at t=1 lets the
        // survivor finish at full rate.
        let mut net = ideal_net(3, 1000.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 2000, 0);
        net.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), 2000, 1);
        let t1 = SimTime::from_secs_f64(1.0);
        net.kill_flow(t1, 1).unwrap();
        // Survivor: 1500 B left at 1000 B/s -> done at t=2.5.
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!(
            (done[0].finished.as_secs_f64() - 2.5).abs() < 1e-6,
            "{done:?}"
        );
    }

    #[test]
    fn killed_flow_appears_in_event_ledger() {
        let mut net = ideal_net(2, 1000.0);
        net.record_events(true);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 2000, 9);
        net.kill_flow(SimTime::from_secs_f64(1.0), 9);
        let events = net.drain_events();
        assert!(matches!(
            events.last(),
            Some((_, NetEvent::FlowKilled { tag: 9, .. }))
        ));
    }

    #[test]
    fn flow_rate_visible_while_active() {
        let mut net = ideal_net(2, 1000.0);
        let id = net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 10_000, 0);
        assert!((net.flow_rate(id).unwrap() - 1000.0).abs() < 1e-9);
        assert_eq!(net.flow_started(id), Some(SimTime::ZERO));
        net.run_to_completion();
        assert_eq!(net.flow_rate(id), None);
    }

    // ------------------------------------------------------------------
    // Regressions added with the incremental/indexed engine.
    // ------------------------------------------------------------------

    #[test]
    fn setup_to_ramp_transition_reallocates_rates() {
        // While in Setup the flow's cap is zero; the instant Setup ends the
        // Ramp cap (cwnd/rtt) must be applied — a stale zero rate would
        // stall the flow forever.
        let tcp = TcpModel {
            rtt_s: 0.1,
            setup_s: 0.05,
            init_cwnd_bytes: 100.0,
        };
        let mut net = Network::new(Topology::uniform(2, NodeSpec::symmetric(1e6)), tcp);
        let id = net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000, 0);
        net.advance_to(SimTime::from_secs_f64(0.01));
        assert_eq!(net.flow_rate(id), Some(0.0), "no payload during setup");
        net.advance_to(SimTime::from_secs_f64(0.06));
        let r = net.flow_rate(id).unwrap();
        assert!(
            (r - 1000.0).abs() < 1e-9,
            "rate after Setup→Ramp should be cwnd/rtt = 1000, got {r}"
        );
    }

    #[test]
    fn ramp_doubling_and_steady_transition_reallocate_rates() {
        // The window cap doubles every RTT and the rate must follow at each
        // doubling instant, then hit line rate once the cap clears the
        // bottleneck (Ramp → Steady).
        let tcp = TcpModel {
            rtt_s: 0.1,
            setup_s: 0.0,
            init_cwnd_bytes: 100.0,
        };
        let bps = 3000.0;
        let mut net = Network::new(Topology::uniform(2, NodeSpec::symmetric(bps)), tcp);
        let id = net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000, 0);
        // Ramp caps: 1000, 2000 (t=0.1), 4000 >= 3000 -> Steady (t=0.2).
        assert!((net.flow_rate(id).unwrap() - 1000.0).abs() < 1e-9);
        net.advance_to(SimTime::from_secs_f64(0.15));
        assert!(
            (net.flow_rate(id).unwrap() - 2000.0).abs() < 1e-9,
            "rate stale after window doubling: {:?}",
            net.flow_rate(id)
        );
        net.advance_to(SimTime::from_secs_f64(0.25));
        assert!(
            (net.flow_rate(id).unwrap() - bps).abs() < 1e-9,
            "rate stale after Ramp→Steady: {:?}",
            net.flow_rate(id)
        );
    }

    #[test]
    fn fractional_residual_completes_on_time_without_duplicates() {
        // A mid-flight rate change leaves a fractional residual; the old
        // engine predicted completion from remaining.ceil(), which at a
        // tiny rate lands seconds late. The prediction must use the
        // fractional residue and fire exactly once.
        let mut net = ideal_net(2, 10.0);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 5, 3);
        let t1 = SimTime::from_secs_f64(0.33);
        // delivered 3.3 B -> remaining 1.7 B; throttle to 0.5 B/s.
        let done = net.set_node_spec(t1, NodeId(0), NodeSpec::symmetric(0.5));
        assert!(done.is_empty());
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1, "exactly one completion");
        let finished = done[0].finished.as_secs_f64();
        let expect = 0.33 + 1.7 / 0.5; // 3.73 s
        assert!(
            (finished - expect).abs() < 1e-6,
            "finished {finished}, want {expect}"
        );
        // ceil(1.7) = 2 B would have predicted 0.33 + 4.0 = 4.33 s.
        assert!(finished < 4.0, "late completion from ceil()ed residual");
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn incremental_matches_full_resolve_bitwise() {
        // The same churn on an incremental and a full-resolve engine must
        // produce identical completions (nanosecond timestamps) and rates.
        let run = |full: bool| -> (Vec<(u64, u64)>, Vec<Option<f64>>) {
            let mut net = Network::new(
                Topology::uniform(7, NodeSpec::symmetric(1e9)),
                TcpModel::EC2,
            );
            net.set_full_resolve(full);
            let mut ids = Vec::new();
            for w in 1..7usize {
                ids.push(net.start_flow(
                    SimTime::ZERO,
                    NodeId(w),
                    NodeId(0),
                    1_000_000 * w as u64,
                    w as u64,
                ));
            }
            let mut ends = Vec::new();
            let t1 = SimTime::from_secs_f64(0.001);
            ends.extend(net.advance_to(t1));
            net.kill_flow(t1, 3);
            ids.push(net.start_flow(t1, NodeId(2), NodeId(5), 500_000, 9));
            let t2 = SimTime::from_secs_f64(0.002);
            ends.extend(net.advance_to(t2));
            net.kill_flows_touching(t2, NodeId(4));
            ends.extend(net.run_to_completion());
            let rates = ids.iter().map(|&id| net.flow_rate(id)).collect();
            (ends.iter().map(|e| (e.tag, e.finished.0)).collect(), rates)
        };
        let (ends_inc, rates_inc) = run(false);
        let (ends_full, rates_full) = run(true);
        assert_eq!(ends_inc, ends_full, "FlowEnd timestamps diverged");
        assert_eq!(
            rates_inc
                .iter()
                .map(|r| r.map(f64::to_bits))
                .collect::<Vec<_>>(),
            rates_full
                .iter()
                .map(|r| r.map(f64::to_bits))
                .collect::<Vec<_>>(),
            "rates diverged"
        );
    }

    #[test]
    fn disjoint_flows_do_not_disturb_each_other() {
        // A start/kill in one island must not change the rate (or the
        // prediction) of a flow in another island.
        let mut net = ideal_net(4, 1000.0);
        let a = net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 100_000, 0);
        let ra = net.flow_rate(a).unwrap();
        let t1 = SimTime::from_secs_f64(1.0);
        net.advance_to(t1);
        let b = net.start_flow(t1, NodeId(2), NodeId(3), 50_000, 1);
        assert_eq!(net.flow_rate(a).unwrap().to_bits(), ra.to_bits());
        net.kill_flow(SimTime::from_secs_f64(2.0), 1);
        assert!(net.flow_rate(b).is_none());
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs_f64() - 100.0).abs() < 1e-6);
    }
}
