//! The message-size cost model — the executable form of the paper's Eq. (10).
//!
//! The paper writes the effective bandwidth of a transfer of size `s` on a
//! pipe of capacity `B` as `B(i) = f(s(i), B)` and observes only its shape:
//! `f → 0` as `s → 0` and `f → B` as `s → ∞`. We make `f` concrete with the
//! two mechanisms the paper names in §2.2 ("TCP connection overhead, TCP slow
//! start, and the synchronization between nodes"):
//!
//! * a fixed per-message **setup latency** `L` (connection + PS rendezvous +
//!   scheduler synchronisation), during which no payload moves;
//! * a **slow-start ramp**: the flow's rate cap starts at `w0 / rtt` and
//!   doubles every `rtt` until it reaches the pipe capacity.
//!
//! Total time for an unshared transfer is then
//! `T(s, B) = L + ramp_time(s, B)` and `f(s, B) = s / T(s, B)`.
//!
//! The same parameters drive the live [`crate::Network`] (where the ramp is
//! applied as a growing per-flow cap under fair sharing); this module's
//! closed-form is used by the Prophet planner and by P3/ByteScheduler
//! overhead analyses, and is unit-tested to agree with the fluid engine.

use prophet_sim::Duration;

/// Parameters of the per-message cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpModel {
    /// Round-trip time between any two nodes, seconds. EC2 same-AZ ≈ 100 µs.
    pub rtt_s: f64,
    /// Fixed per-message setup latency, seconds: connection establishment +
    /// the PS-side synchronisation the paper calls the "blocking call".
    pub setup_s: f64,
    /// Initial congestion window, bytes (10 MSS ≈ 14.6 kB per RFC 6928).
    pub init_cwnd_bytes: f64,
}

impl TcpModel {
    /// Defaults calibrated for an EC2-like 10 GbE fabric.
    pub const EC2: TcpModel = TcpModel {
        rtt_s: 150e-6,
        setup_s: 1.2e-3,
        init_cwnd_bytes: 14_600.0,
    };

    /// A frictionless network: no setup cost, no ramp. Useful in tests to
    /// isolate scheduling effects from transport effects.
    pub const IDEAL: TcpModel = TcpModel {
        rtt_s: 0.0,
        setup_s: 0.0,
        init_cwnd_bytes: f64::INFINITY,
    };

    /// Time for the payload of `bytes` to drain at capacity `bps`, including
    /// the slow-start ramp but *excluding* the fixed setup latency.
    ///
    /// The ramp is the discrete doubling process: during round `j`
    /// (each `rtt` long) the flow moves `w0 · 2^j` bytes, until the round
    /// rate `w0 · 2^j / rtt` reaches `bps`; from then on it moves at `bps`.
    pub fn ramp_time_s(&self, bytes: f64, bps: f64) -> f64 {
        debug_assert!(bytes >= 0.0 && bps > 0.0);
        if bytes == 0.0 {
            return 0.0;
        }
        if self.rtt_s <= 0.0 || !self.init_cwnd_bytes.is_finite() {
            return bytes / bps;
        }
        let bdp = bps * self.rtt_s; // bytes per round at full rate
        let mut sent = 0.0;
        let mut round_bytes = self.init_cwnd_bytes;
        let mut t = 0.0;
        // Walk doubling rounds until either the payload is exhausted or the
        // round rate reaches capacity. At most ~60 iterations even for
        // pathological parameters (doubling from 1 byte to f64 max).
        while round_bytes < bdp {
            if sent + round_bytes >= bytes {
                // Finishes inside this round, at the round's rate.
                let frac = (bytes - sent) / round_bytes;
                return t + frac * self.rtt_s;
            }
            sent += round_bytes;
            t += self.rtt_s;
            round_bytes *= 2.0;
        }
        // Remaining payload at full capacity.
        t + (bytes - sent) / bps
    }

    /// Total unshared transfer time: setup + ramp.
    pub fn transfer_time_s(&self, bytes: f64, bps: f64) -> f64 {
        self.setup_s + self.ramp_time_s(bytes, bps)
    }

    /// Total unshared transfer time as a [`Duration`].
    pub fn transfer_time(&self, bytes: u64, bps: f64) -> Duration {
        Duration::from_secs_f64(self.transfer_time_s(bytes as f64, bps))
    }

    /// The paper's `f(s, B)`: achieved throughput of an unshared transfer.
    ///
    /// Monotone in `s`, approaches 0 as `s → 0` (setup dominates) and `B`
    /// as `s → ∞` (overheads amortised) — the exact shape asserted below
    /// Eq. (10).
    pub fn effective_bandwidth(&self, bytes: f64, bps: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / self.transfer_time_s(bytes, bps)
    }

    /// Overhead fraction of a transfer: `1 - f(s,B)/B`. P3's Fig. 3(a)
    /// problem in one number.
    pub fn overhead_fraction(&self, bytes: f64, bps: f64) -> f64 {
        1.0 - self.effective_bandwidth(bytes, bps) / bps
    }

    /// The number of slow-start rounds before a flow reaches `bps`.
    pub fn rounds_to_saturation(&self, bps: f64) -> u32 {
        if self.rtt_s <= 0.0 || !self.init_cwnd_bytes.is_finite() {
            return 0;
        }
        let bdp = bps * self.rtt_s;
        let mut round_bytes = self.init_cwnd_bytes;
        let mut rounds = 0;
        while round_bytes < bdp {
            round_bytes *= 2.0;
            rounds += 1;
        }
        rounds
    }
}

impl Default for TcpModel {
    fn default() -> Self {
        TcpModel::EC2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B10G: f64 = 1.25e9; // 10 Gbps in bytes/sec

    #[test]
    fn ideal_model_is_linear() {
        let m = TcpModel::IDEAL;
        assert_eq!(m.transfer_time_s(1.25e9, B10G), 1.0);
        assert_eq!(m.effective_bandwidth(1e6, B10G), B10G);
    }

    #[test]
    fn effective_bandwidth_vanishes_for_tiny_messages() {
        let m = TcpModel::EC2;
        let f = m.effective_bandwidth(100.0, B10G);
        assert!(f < 0.001 * B10G, "tiny message got {f} B/s");
    }

    #[test]
    fn effective_bandwidth_saturates_for_huge_messages() {
        let m = TcpModel::EC2;
        let f = m.effective_bandwidth(1e9, B10G);
        assert!(f > 0.99 * B10G, "1 GB message got only {f} B/s");
    }

    #[test]
    fn effective_bandwidth_monotone_in_size() {
        let m = TcpModel::EC2;
        let mut prev = 0.0;
        for exp in 0..10 {
            let s = 1e3 * 10f64.powi(exp);
            let f = m.effective_bandwidth(s, B10G);
            assert!(f >= prev, "f({s}) = {f} < {prev}");
            prev = f;
        }
    }

    #[test]
    fn four_mb_partition_overhead_is_substantial_at_10g() {
        // P3's default 4 MB partition: at 10 Gbps the payload drains in
        // 3.2 ms but setup + ramp add >1 ms — the Fig. 3(a) effect.
        let m = TcpModel::EC2;
        let ovh = m.overhead_fraction(4e6, B10G);
        assert!(ovh > 0.2, "4 MB overhead only {ovh}");
        // A 64 MB block amortises it.
        let ovh_big = m.overhead_fraction(64e6, B10G);
        assert!(ovh_big < 0.05, "64 MB overhead {ovh_big}");
    }

    #[test]
    fn ramp_time_matches_manual_computation() {
        // rtt 1 ms, w0 = 1000 B, capacity 8000 B/ms = 8e6 B/s.
        let m = TcpModel {
            rtt_s: 1e-3,
            setup_s: 0.0,
            init_cwnd_bytes: 1000.0,
        };
        let bps = 8e6;
        // Rounds: 1000, 2000, 4000 (all < bdp 8000), then capacity.
        // Payload 15000: 1000+2000+4000 = 7000 after 3 ms; 8000 left at
        // 8e6 B/s = 1 ms. Total 4 ms.
        let t = m.ramp_time_s(15_000.0, bps);
        assert!((t - 4e-3).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn ramp_time_partial_round() {
        let m = TcpModel {
            rtt_s: 1e-3,
            setup_s: 0.0,
            init_cwnd_bytes: 1000.0,
        };
        // 1500 bytes: 1000 in round 0 (1 ms), 500/2000 of round 1 (0.25 ms).
        let t = m.ramp_time_s(1_500.0, 8e6);
        assert!((t - 1.25e-3).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn rounds_to_saturation_counts_doublings() {
        let m = TcpModel {
            rtt_s: 1e-3,
            setup_s: 0.0,
            init_cwnd_bytes: 1000.0,
        };
        // bdp = 8000; 1000 -> 2000 -> 4000 -> 8000: 3 doublings.
        assert_eq!(m.rounds_to_saturation(8e6), 3);
        assert_eq!(TcpModel::IDEAL.rounds_to_saturation(8e6), 0);
    }

    #[test]
    fn transfer_time_includes_setup() {
        let m = TcpModel::EC2;
        let t = m.transfer_time_s(0.0, B10G);
        assert_eq!(t, m.setup_s);
    }

    #[test]
    fn lower_capacity_lower_effective_bandwidth() {
        let m = TcpModel::EC2;
        let f_lo = m.effective_bandwidth(4e6, 1.25e8); // 1 Gbps
        let f_hi = m.effective_bandwidth(4e6, 1.25e9); // 10 Gbps
        assert!(f_lo < f_hi);
        // And the *fraction* of capacity achieved is higher at low capacity
        // (the same message amortises better on a slower pipe).
        assert!(f_lo / 1.25e8 > f_hi / 1.25e9);
    }
}
