//! Retry policy: capped exponential backoff plus a per-message timeout.
//!
//! The policy is *pure data* — `delay(attempt)` is a deterministic function
//! of the attempt number, with no RNG and no clock — so a retried trace is
//! reproducible bit-for-bit from the fault plan alone. Jittered backoff
//! (what production TCP stacks do to avoid thundering herds) would buy
//! nothing here: the simulator's senders already desynchronise through the
//! fluid sharing model, and determinism is worth more than realism in the
//! third decimal.

use prophet_sim::Duration;

/// Capped exponential backoff: attempt `k` (1-based) waits
/// `min(base · 2^(k-1), cap)` before re-sending, and every in-flight
/// message is abandoned (and counted as a failed attempt) after `timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Per-message ack timeout; a message still in flight this long after
    /// its last (re)send is treated as lost.
    pub timeout: Duration,
}

impl RetryPolicy {
    /// Defaults sized for the simulated clusters: 25 ms base (a few RTTs
    /// past the EC2 setup latency), 1.6 s cap, 5 s ack timeout (longer
    /// than any healthy whole-tensor transfer in the paper's cells).
    pub fn paper_default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(25),
            cap: Duration::from_millis(1_600),
            timeout: Duration::from_secs(5),
        }
    }

    /// Backoff before retry `attempt` (1-based). Attempt 0 — the original
    /// send — has no delay.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(63);
        let ns = self.base.as_nanos().saturating_mul(1u64 << shift);
        Duration::from_nanos(ns.min(self.cap.as_nanos()))
    }

    /// Backoff before retry `attempt`, fail-fast aware: when the message's
    /// peer is **permanently** failed there is no outage to outwait, so the
    /// delay collapses to zero and the message can be re-routed to a
    /// surviving node immediately. Backing off against a node that is never
    /// coming back burns the whole capped-exponential schedule (seconds of
    /// simulated stall per message) for nothing — the hazard the elastic
    /// regression test pins.
    pub fn delay_to(&self, attempt: u32, peer_dead: bool) -> Duration {
        if peer_dead {
            return Duration::ZERO;
        }
        self.delay(attempt)
    }

    /// Raise `timeout` so the worst-case whole-message transfer the caller
    /// can configure still completes before the ack deadline.
    ///
    /// The flat default timeout holds only while `bytes / (bps · factor)`
    /// stays under it; a deep [`LinkDegrade`] (factor 0.02 in the regression
    /// cell) pushes a large tensor's transfer past the deadline, and every
    /// send then thrashes through spurious timeout → kill → retry cycles
    /// without the link ever being at fault. This derives the deadline from
    /// the worst case instead: `margin ×` the time `max_message_bytes`
    /// takes on the slowest configured link (`bps` scaled by the smallest
    /// degrade factor), never *lowering* the flat timeout. A `margin` of 2
    /// leaves room for queueing behind one equally slow message.
    ///
    /// [`LinkDegrade`]: prophet_sim::FaultSpec::LinkDegrade
    pub fn adapted_to_link(
        &self,
        max_message_bytes: u64,
        bytes_per_sec: f64,
        min_degrade_factor: f64,
        margin: f64,
    ) -> Self {
        let worst_bps = bytes_per_sec * min_degrade_factor.clamp(f64::MIN_POSITIVE, 1.0);
        let worst = Duration::for_bytes(max_message_bytes, worst_bps);
        let ns = (worst.as_nanos() as f64 * margin.max(1.0)).min(u64::MAX as f64) as u64;
        RetryPolicy {
            timeout: self.timeout.max(Duration::from_nanos(ns)),
            ..*self
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_then_cap() {
        let p = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(75),
            timeout: Duration::from_secs(1),
        };
        assert_eq!(p.delay(0), Duration::ZERO);
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(4), Duration::from_millis(75));
        assert_eq!(p.delay(5), Duration::from_millis(75));
    }

    #[test]
    fn dead_peer_collapses_backoff_to_zero() {
        let p = RetryPolicy::paper_default();
        for attempt in [1, 3, 7, 20] {
            assert!(p.delay_to(attempt, false) > Duration::ZERO);
            assert_eq!(p.delay_to(attempt, true), Duration::ZERO);
        }
        // Attempt 0 (the original send) is free either way.
        assert_eq!(p.delay_to(0, false), Duration::ZERO);
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let p = RetryPolicy::paper_default();
        assert_eq!(p.delay(u32::MAX), p.cap);
        assert_eq!(p.delay(64), p.cap);
    }

    #[test]
    fn adapted_timeout_never_shrinks() {
        // A small message on a fast, healthy link: the flat default wins.
        let p = RetryPolicy::paper_default();
        let a = p.adapted_to_link(1 << 20, 1.25e9, 1.0, 2.0);
        assert_eq!(a, p);
    }

    #[test]
    fn adapted_timeout_covers_a_degraded_whole_tensor() {
        // 400 MB at 1.25 GB/s x 0.02 takes 16 s; the 5 s flat default would
        // thrash. The derived deadline must cover margin x that transfer.
        let p = RetryPolicy::paper_default();
        let a = p.adapted_to_link(400 << 20, 1.25e9, 0.02, 2.0);
        let worst = Duration::for_bytes(400 << 20, 1.25e9 * 0.02);
        assert!(a.timeout >= worst * 2, "{:?} < 2x{worst:?}", a.timeout);
        // Backoff knobs are untouched.
        assert_eq!(a.base, p.base);
        assert_eq!(a.cap, p.cap);
    }

    #[test]
    fn adapted_timeout_survives_zero_factor() {
        // A zero factor would divide by zero; the clamp keeps the result
        // finite (saturating at Duration::MAX is acceptable — a fully dead
        // link is LinkDown's job, not LinkDegrade's).
        let p = RetryPolicy::paper_default();
        let a = p.adapted_to_link(1 << 20, 1.25e9, 0.0, 2.0);
        assert!(a.timeout >= p.timeout);
    }
}
