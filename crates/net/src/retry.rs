//! Retry policy: capped exponential backoff plus a per-message timeout.
//!
//! The policy is *pure data* — `delay(attempt)` is a deterministic function
//! of the attempt number, with no RNG and no clock — so a retried trace is
//! reproducible bit-for-bit from the fault plan alone. Jittered backoff
//! (what production TCP stacks do to avoid thundering herds) would buy
//! nothing here: the simulator's senders already desynchronise through the
//! fluid sharing model, and determinism is worth more than realism in the
//! third decimal.

use prophet_sim::Duration;

/// Capped exponential backoff: attempt `k` (1-based) waits
/// `min(base · 2^(k-1), cap)` before re-sending, and every in-flight
/// message is abandoned (and counted as a failed attempt) after `timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Per-message ack timeout; a message still in flight this long after
    /// its last (re)send is treated as lost.
    pub timeout: Duration,
}

impl RetryPolicy {
    /// Defaults sized for the simulated clusters: 25 ms base (a few RTTs
    /// past the EC2 setup latency), 1.6 s cap, 5 s ack timeout (longer
    /// than any healthy whole-tensor transfer in the paper's cells).
    pub fn paper_default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(25),
            cap: Duration::from_millis(1_600),
            timeout: Duration::from_secs(5),
        }
    }

    /// Backoff before retry `attempt` (1-based). Attempt 0 — the original
    /// send — has no delay.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(63);
        let ns = self.base.as_nanos().saturating_mul(1u64 << shift);
        Duration::from_nanos(ns.min(self.cap.as_nanos()))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_then_cap() {
        let p = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(75),
            timeout: Duration::from_secs(1),
        };
        assert_eq!(p.delay(0), Duration::ZERO);
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(4), Duration::from_millis(75));
        assert_eq!(p.delay(5), Duration::from_millis(75));
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let p = RetryPolicy::paper_default();
        assert_eq!(p.delay(u32::MAX), p.cap);
        assert_eq!(p.delay(64), p.cap);
    }
}
