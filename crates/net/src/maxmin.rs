//! Max-min fair rate allocation with per-flow caps.
//!
//! Given flows that each consume one uplink (at their source) and one
//! downlink (at their destination), progressive filling raises every
//! unfrozen flow's rate uniformly until some constraint saturates, freezes
//! the flows bound by it, and repeats. Per-flow caps (our TCP slow-start
//! state) are just another freezing condition. This is the textbook
//! algorithm; it terminates in at most `#flows + #constraints` rounds.
//!
//! The allocation is the fixed point the real transport stack's AIMD
//! dynamics approximate on shared bottlenecks, which is why flow-level
//! simulators use it as the steady-state rate model.
//!
//! Two things depart from the textbook formulation, both for the sake of
//! the thousand-worker scaling studies:
//!
//! * **Component decomposition.** [`allocate`] partitions the flows into
//!   connected components (union-find over the nodes they touch) and runs
//!   the filling loop per component via [`fill_component`]. Progressive
//!   filling never couples disjoint components — a constraint only freezes
//!   flows that share it — so the split changes nothing semantically, but
//!   it lets the network engine re-solve *only* the components a flow
//!   arrival/departure touches. Within a component the arithmetic (node
//!   visit order ascending by global id, flows in input order, uniform
//!   increments accumulated identically) is exactly the classic global loop
//!   restricted to that component, which is what makes the incremental
//!   engine bit-identical to a full resolve.
//! * **Scratch hoisting.** The filling loop used to allocate four `Vec`s
//!   per round (`up_count`, `down_count`, `saturated_up`,
//!   `saturated_down`); all working state now lives in a reusable
//!   [`Scratch`], so steady-state churn performs no per-round allocation.

use crate::topology::{NodeId, Topology};

/// One flow's demand as seen by the allocator.
#[derive(Debug, Clone, Copy)]
pub struct FlowDemand {
    /// Source node (consumes uplink).
    pub src: NodeId,
    /// Destination node (consumes downlink).
    pub dst: NodeId,
    /// Rate cap in bytes/sec (`f64::INFINITY` when unconstrained).
    pub cap_bps: f64,
}

/// Saturation epsilon, *relative* to each link's own capacity: capacities
/// are bytes/sec (~1e9 for a 10 GbE NIC), where one f64 ulp is ~1e-7 — an
/// absolute threshold is either meaninglessly tight at that scale or
/// sloppily loose for small test capacities.
const REL_EPS: f64 = 1e-9;

/// Reusable working state for [`fill_component`] / [`allocate_with`].
///
/// Holding one of these across calls (the network engine keeps one per
/// [`crate::Network`]) eliminates every per-call and per-round allocation
/// once the buffers have grown to the working-set size. A `Scratch` carries
/// no results between calls — only capacity — so reuse can never change an
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    // fill_component state
    /// Global ids of the nodes the current component touches, ascending.
    nodes: Vec<u32>,
    /// Global node id -> local constraint index; only entries written for
    /// the current component's nodes are ever read back.
    node_local: Vec<u32>,
    up_cap: Vec<f64>,
    down_cap: Vec<f64>,
    up_left: Vec<f64>,
    down_left: Vec<f64>,
    up_count: Vec<u32>,
    down_count: Vec<u32>,
    frozen: Vec<bool>,
    src_local: Vec<u32>,
    dst_local: Vec<u32>,
    /// Indices of still-unfrozen flows, ascending; shrinks as flows freeze
    /// so late rounds stop re-scanning the (majority) frozen population.
    unfrozen: Vec<u32>,
    /// Local indices of nodes that still carry unfrozen flows.
    active_nodes: Vec<u32>,
    /// Epoch marker per global node id for the sort-free node dedup.
    node_epoch: Vec<u64>,
    node_round: u64,
    // partition state (allocate_with)
    uf_parent: Vec<u32>,
    uf_epoch: Vec<u64>,
    uf_round: u64,
    comp_map: Vec<u32>,
    comp_map_epoch: Vec<u64>,
    comp_idx: Vec<u32>,
    comp_offsets: Vec<u32>,
    grouped: Vec<u32>,
    demand_buf: Vec<FlowDemand>,
    rate_buf: Vec<f64>,
}

/// Path-compressing find over an epoch-initialised parent array.
fn uf_find(parent: &mut [u32], x: u32) -> u32 {
    let mut root = x;
    while parent[root as usize] != root {
        root = parent[root as usize];
    }
    let mut cur = x;
    while parent[cur as usize] != root {
        let next = parent[cur as usize];
        parent[cur as usize] = root;
        cur = next;
    }
    root
}

/// Compute max-min fair rates (bytes/sec) for `flows` over `topo`.
///
/// Returns one rate per flow, in input order. Flows with a zero cap get
/// zero. Panics in debug builds if any node id is out of range.
pub fn allocate(topo: &Topology, flows: &[FlowDemand]) -> Vec<f64> {
    allocate_with(topo, flows, &mut Scratch::default())
}

/// [`allocate`] with caller-provided scratch buffers (no allocation once
/// the buffers are warm).
pub fn allocate_with(topo: &Topology, flows: &[FlowDemand], s: &mut Scratch) -> Vec<f64> {
    let mut rates = vec![0.0f64; flows.len()];
    if flows.is_empty() {
        return rates;
    }
    let n = topo.len();
    if s.uf_parent.len() < n {
        s.uf_parent.resize(n, 0);
        s.uf_epoch.resize(n, 0);
        s.comp_map.resize(n, 0);
        s.comp_map_epoch.resize(n, 0);
    }
    s.uf_round += 1;
    let round = s.uf_round;

    // Union the nodes of every flow. Zero-cap (Setup-phase) flows union
    // too: they are real component members that will carry bytes once
    // their handshake completes, and the incremental engine must agree
    // with this grouping.
    for f in flows {
        debug_assert!(f.src.0 < n && f.dst.0 < n, "flow references missing node");
        for g in [f.src.0, f.dst.0] {
            if s.uf_epoch[g] != round {
                s.uf_parent[g] = g as u32;
                s.uf_epoch[g] = round;
            }
        }
        let ra = uf_find(&mut s.uf_parent, f.src.0 as u32);
        let rb = uf_find(&mut s.uf_parent, f.dst.0 as u32);
        if ra != rb {
            s.uf_parent[ra as usize] = rb;
        }
    }

    // Component indices in first-seen flow order (deterministic).
    s.comp_idx.clear();
    let mut comp_count: u32 = 0;
    for f in flows {
        let root = uf_find(&mut s.uf_parent, f.src.0 as u32) as usize;
        if s.comp_map_epoch[root] != round {
            s.comp_map_epoch[root] = round;
            s.comp_map[root] = comp_count;
            comp_count += 1;
        }
        s.comp_idx.push(s.comp_map[root]);
    }

    if comp_count == 1 {
        // The common case for the paper's star-shaped cells: everything is
        // one component, so fill straight into the output.
        fill_component(topo, flows, &mut rates, s);
        return rates;
    }

    // Group flow indices by component; the counting sort keeps input order
    // within each component.
    s.comp_offsets.clear();
    s.comp_offsets.resize(comp_count as usize + 1, 0);
    for &c in &s.comp_idx {
        s.comp_offsets[c as usize + 1] += 1;
    }
    for c in 0..comp_count as usize {
        s.comp_offsets[c + 1] += s.comp_offsets[c];
    }
    s.grouped.clear();
    s.grouped.resize(flows.len(), 0);
    // comp_offsets[c] doubles as the write cursor for component c; after
    // the scatter it holds the component's END offset.
    for (i, &c) in s.comp_idx.iter().enumerate() {
        let slot = s.comp_offsets[c as usize] as usize;
        s.grouped[slot] = i as u32;
        s.comp_offsets[c as usize] += 1;
    }

    let mut demands = std::mem::take(&mut s.demand_buf);
    let mut comp_rates = std::mem::take(&mut s.rate_buf);
    let mut start = 0usize;
    for c in 0..comp_count as usize {
        let end = s.comp_offsets[c] as usize;
        demands.clear();
        for &fi in &s.grouped[start..end] {
            demands.push(flows[fi as usize]);
        }
        comp_rates.clear();
        comp_rates.resize(demands.len(), 0.0);
        fill_component(topo, &demands, &mut comp_rates, s);
        for (j, &fi) in s.grouped[start..end].iter().enumerate() {
            rates[fi as usize] = comp_rates[j];
        }
        start = end;
    }
    s.demand_buf = demands;
    s.rate_buf = comp_rates;
    rates
}

/// Progressive filling over one connected component.
///
/// `flows` must all belong to a single connected component (callers that
/// can't guarantee this use [`allocate`], which partitions first); passing
/// a disconnected set still yields a valid max-min allocation, but one
/// whose floating-point rounding couples the groups. Rates are written to
/// `rates` (same length as `flows`, input order).
///
/// Invariants the incremental engine relies on (see `network.rs`):
/// the result is a pure function of `(topo restricted to touched nodes,
/// flows in order)`; cross-node reductions are all minima, so constraint
/// visit order never reaches the output; flows accumulate the identical
/// uniform increments in input order. Restricted to a single component
/// this reproduces the pre-decomposition global loop bit for bit.
pub fn fill_component(topo: &Topology, flows: &[FlowDemand], rates: &mut [f64], s: &mut Scratch) {
    debug_assert_eq!(flows.len(), rates.len());
    rates.fill(0.0);
    if flows.is_empty() {
        return;
    }
    let n = topo.len();

    // Touched nodes in first-seen order, plus the local remap. The local
    // numbering is pure bookkeeping — capacities, residuals, and counts are
    // keyed by it but every cross-node reduction is a min, so the order
    // nodes are discovered in cannot steer a single float bit (the old
    // sort-by-global-id pass bought determinism it turned out nothing
    // consumed, at O(F log F) per fill).
    s.nodes.clear();
    if s.node_local.len() < n {
        s.node_local.resize(n, 0);
        s.node_epoch.resize(n, 0);
    }
    s.node_round += 1;
    let node_round = s.node_round;
    for f in flows {
        debug_assert!(f.src.0 < n && f.dst.0 < n, "flow references missing node");
        for g in [f.src.0, f.dst.0] {
            if s.node_epoch[g] != node_round {
                s.node_epoch[g] = node_round;
                s.node_local[g] = s.nodes.len() as u32;
                s.nodes.push(g as u32);
            }
        }
    }
    let k = s.nodes.len();

    // Remaining capacity per constraint: uplinks then downlinks. The
    // original capacities are kept so saturation can be tested with an
    // epsilon relative to each link's scale (see [`REL_EPS`]).
    s.up_cap.clear();
    s.down_cap.clear();
    for &g in &s.nodes {
        let spec = topo.spec(NodeId(g as usize));
        s.up_cap.push(spec.uplink_bps);
        s.down_cap.push(spec.downlink_bps);
    }
    s.up_left.clear();
    s.up_left.extend_from_slice(&s.up_cap);
    s.down_left.clear();
    s.down_left.extend_from_slice(&s.down_cap);
    s.up_count.clear();
    s.up_count.resize(k, 0);
    s.down_count.clear();
    s.down_count.resize(k, 0);

    s.frozen.clear();
    s.frozen.resize(flows.len(), false);
    s.src_local.clear();
    s.dst_local.clear();
    for (i, f) in flows.iter().enumerate() {
        s.src_local.push(s.node_local[f.src.0]);
        s.dst_local.push(s.node_local[f.dst.0]);
        // Freeze zero-cap flows immediately.
        if f.cap_bps <= 0.0 {
            s.frozen[i] = true;
        }
    }

    // Compacted iteration state. Every float operation below is the same
    // op, on the same values, as the original scan-everything loop — the
    // compaction only skips flows and nodes whose contribution to a round
    // was provably nothing (frozen flows add no counts, no cap terms, no
    // increments; nodes without unfrozen flows contribute no delta terms
    // and their saturation state is never read). Per-round additions and
    // subtractions apply the identical `delta` the same number of times to
    // the same cells, so every output bit survives the rewrite.
    s.unfrozen.clear();
    for i in 0..flows.len() {
        if !s.frozen[i] {
            s.unfrozen.push(i as u32);
            s.up_count[s.src_local[i] as usize] += 1;
            s.down_count[s.dst_local[i] as usize] += 1;
        }
    }
    s.active_nodes.clear();
    for li in 0..k as u32 {
        if s.up_count[li as usize] > 0 || s.down_count[li as usize] > 0 {
            s.active_nodes.push(li);
        }
    }

    while !s.unfrozen.is_empty() {
        // The uniform increment every unfrozen flow can still take: the
        // tightest of (a) equal split of remaining capacity on any loaded
        // constraint, (b) any unfrozen flow's remaining headroom to its cap.
        let mut delta = f64::INFINITY;
        for &li in &s.active_nodes {
            let li = li as usize;
            if s.up_count[li] > 0 {
                delta = delta.min(s.up_left[li] / s.up_count[li] as f64);
            }
            if s.down_count[li] > 0 {
                delta = delta.min(s.down_left[li] / s.down_count[li] as f64);
            }
        }
        for &i in &s.unfrozen {
            let f = &flows[i as usize];
            if f.cap_bps.is_finite() {
                delta = delta.min(f.cap_bps - rates[i as usize]);
            }
        }
        // Accumulated rounding can leave a residual (or cap headroom) a few
        // ulps below zero; clamp instead of handing a negative increment to
        // every flow.
        let delta = delta.max(0.0);
        debug_assert!(delta.is_finite(), "bad increment {delta}");

        // Apply the increment. Residuals are clamped at zero: a constraint
        // can end up an ulp negative after repeated subtraction, and a
        // negative residual must read as "saturated", never as headroom.
        for &i in &s.unfrozen {
            let i = i as usize;
            rates[i] += delta;
            let u = s.src_local[i] as usize;
            let d = s.dst_local[i] as usize;
            s.up_left[u] = (s.up_left[u] - delta).max(0.0);
            s.down_left[d] = (s.down_left[d] - delta).max(0.0);
        }

        // Freeze flows at their cap or on a saturated constraint, dropping
        // them from the compacted index (and their nodes' counts).
        let sat = |left: f64, cap: f64| left <= cap * REL_EPS + f64::MIN_POSITIVE;
        let mut progress = false;
        let (up_count, down_count) = (&mut s.up_count, &mut s.down_count);
        let (up_left, up_cap) = (&s.up_left, &s.up_cap);
        let (down_left, down_cap) = (&s.down_left, &s.down_cap);
        let (src_local, dst_local) = (&s.src_local, &s.dst_local);
        s.unfrozen.retain(|&i| {
            let i = i as usize;
            let f = &flows[i];
            let u = src_local[i] as usize;
            let d = dst_local[i] as usize;
            let at_cap = f.cap_bps.is_finite() && rates[i] >= f.cap_bps * (1.0 - REL_EPS);
            if at_cap {
                // Pin exactly to the cap so rounding never reports a rate
                // above what the transport window allows.
                rates[i] = f.cap_bps;
            }
            if at_cap || sat(up_left[u], up_cap[u]) || sat(down_left[d], down_cap[d]) {
                up_count[u] -= 1;
                down_count[d] -= 1;
                progress = true;
                false
            } else {
                true
            }
        });
        // With delta > 0 something always freezes; with delta == 0 the
        // freezing rule above must fire (a constraint is already
        // saturated). Guard against float pathology anyway.
        if !progress {
            break;
        }
        s.active_nodes
            .retain(|&li| up_count[li as usize] > 0 || down_count[li as usize] > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    fn topo(n: usize, bps: f64) -> Topology {
        Topology::uniform(n, NodeSpec::symmetric(bps))
    }

    fn flow(src: usize, dst: usize) -> FlowDemand {
        FlowDemand {
            src: NodeId(src),
            dst: NodeId(dst),
            cap_bps: f64::INFINITY,
        }
    }

    fn capped(src: usize, dst: usize, cap: f64) -> FlowDemand {
        FlowDemand {
            src: NodeId(src),
            dst: NodeId(dst),
            cap_bps: cap,
        }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let t = topo(2, 100.0);
        let r = allocate(&t, &[flow(0, 1)]);
        assert!((r[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_a_downlink() {
        // Both flows converge on node 2's downlink.
        let t = topo(3, 100.0);
        let r = allocate(&t, &[flow(0, 2), flow(1, 2)]);
        assert!((r[0] - 50.0).abs() < 1e-6);
        assert!((r[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn cap_frees_bandwidth_for_others() {
        let t = topo(3, 100.0);
        let r = allocate(&t, &[capped(0, 2, 20.0), flow(1, 2)]);
        assert!((r[0] - 20.0).abs() < 1e-6);
        assert!((r[1] - 80.0).abs() < 1e-6);
    }

    #[test]
    fn uplink_bottleneck() {
        // Node 0 fans out to two destinations: its uplink is the bottleneck.
        let t = topo(3, 100.0);
        let r = allocate(&t, &[flow(0, 1), flow(0, 2)]);
        assert!((r[0] - 50.0).abs() < 1e-6);
        assert!((r[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_node_is_the_bottleneck() {
        // §5.3: one slow worker. Flows from w1 (fast) and w2 (slow) to PS.
        let mut t = Topology::new();
        let _ps = t.add_node(NodeSpec::from_gbps(10.0));
        let _w1 = t.add_node(NodeSpec::from_gbps(10.0));
        let _w2 = t.add_node(NodeSpec::from_mbps(500.0));
        let r = allocate(&t, &[flow(1, 0), flow(2, 0)]);
        // w2 frozen at 62.5 MB/s, w1 takes the rest of the PS downlink.
        assert!((r[1] - 62.5e6).abs() < 1.0, "slow worker got {}", r[1]);
        assert!(
            (r[0] - (1.25e9 - 62.5e6)).abs() < 1.0,
            "fast worker got {}",
            r[0]
        );
    }

    #[test]
    fn zero_cap_flow_gets_nothing() {
        let t = topo(2, 100.0);
        let r = allocate(&t, &[capped(0, 1, 0.0), flow(0, 1)]);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn empty_flow_set() {
        let t = topo(2, 100.0);
        assert!(allocate(&t, &[]).is_empty());
    }

    #[test]
    fn many_flows_fair_split() {
        let t = topo(5, 120.0);
        // 4 workers push to node 0.
        let flows: Vec<_> = (1..5).map(|w| flow(w, 0)).collect();
        let r = allocate(&t, &flows);
        for &rate in &r {
            assert!((rate - 30.0).abs() < 1e-6, "rate {rate}");
        }
    }

    #[test]
    fn high_capacity_split_is_exact() {
        // 8 Tb/s in bytes/sec: one ulp here is ~1e-4, far above any
        // absolute epsilon. Three-way splits of such capacities are not
        // exactly representable, so this exercises the relative-epsilon
        // saturation path.
        let cap = 1e12;
        let t = topo(4, cap);
        let flows: Vec<_> = (1..4).map(|w| flow(w, 0)).collect();
        let r = allocate(&t, &flows);
        let share = cap / 3.0;
        let total: f64 = r.iter().sum();
        for &rate in &r {
            assert!((rate - share).abs() <= share * 1e-9, "rate {rate}");
        }
        assert!(total <= cap * (1.0 + 1e-9), "oversubscribed: {total}");
    }

    #[test]
    fn awkward_caps_never_exceed_capacity() {
        // Caps engineered to leave ulp-scale residuals after each round.
        let cap = 6.626115377326036e9;
        let t = topo(5, cap);
        let flows = [
            capped(1, 0, cap / 7.0),
            capped(2, 0, cap / 3.0),
            flow(3, 0),
            flow(4, 0),
        ];
        let r = allocate(&t, &flows);
        let total: f64 = r.iter().sum();
        assert!(total <= cap * (1.0 + 1e-9), "oversubscribed: {total}");
        assert!(r[0] <= cap / 7.0, "capped flow exceeds its cap: {}", r[0]);
        assert!(r[1] <= cap / 3.0, "capped flow exceeds its cap: {}", r[1]);
        // Work conservation: the sink downlink is the only bottleneck.
        assert!(total >= cap * (1.0 - 1e-9), "idle capacity: {total}");
    }

    #[test]
    fn self_loop_consumes_both_directions() {
        // Loopback-style flow uses the node's own up and down links.
        let t = topo(1, 100.0);
        let r = allocate(&t, &[flow(0, 0)]);
        assert!((r[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_components_allocate_independently() {
        // Two islands: {0,1,2} and {3,4,5}. The joint allocation must be
        // bitwise what each island gets when allocated alone.
        let t = topo(6, 1000.0);
        let island_a = [flow(1, 0), capped(2, 0, 100.0)];
        let island_b = [flow(4, 3), flow(5, 3), capped(4, 5, 700.0)];
        let joint: Vec<FlowDemand> = island_a.iter().chain(&island_b).copied().collect();
        let joint_rates = allocate(&t, &joint);
        let a = allocate(&t, &island_a);
        let b = allocate(&t, &island_b);
        let expect: Vec<f64> = a.into_iter().chain(b).collect();
        for (i, (&got, &want)) in joint_rates.iter().zip(&expect).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "flow {i}: {got} vs {want}");
        }
    }

    #[test]
    fn interleaved_components_keep_input_order() {
        // Flows alternate between islands; rates must still come back in
        // input order.
        let t = topo(4, 100.0);
        let r = allocate(&t, &[flow(0, 1), flow(2, 3), flow(0, 1), flow(2, 3)]);
        for &rate in &r {
            assert!((rate - 50.0).abs() < 1e-6, "rate {rate}");
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // The same Scratch across different inputs must give the same
        // answers as fresh scratch each time.
        let mut s = Scratch::default();
        let t1 = topo(3, 100.0);
        let t2 = topo(6, 1000.0);
        let f1 = [flow(0, 2), flow(1, 2)];
        let f2 = [flow(1, 0), capped(2, 0, 100.0), flow(4, 3), flow(5, 3)];
        for _ in 0..3 {
            let r1 = allocate_with(&t1, &f1, &mut s);
            let r2 = allocate_with(&t2, &f2, &mut s);
            let fresh1 = allocate(&t1, &f1);
            let fresh2 = allocate(&t2, &f2);
            assert_eq!(
                r1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                fresh1.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(
                r2.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                fresh2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
