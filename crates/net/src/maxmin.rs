//! Max-min fair rate allocation with per-flow caps.
//!
//! Given flows that each consume one uplink (at their source) and one
//! downlink (at their destination), progressive filling raises every
//! unfrozen flow's rate uniformly until some constraint saturates, freezes
//! the flows bound by it, and repeats. Per-flow caps (our TCP slow-start
//! state) are just another freezing condition. This is the textbook
//! algorithm; it terminates in at most `#flows + #constraints` rounds.
//!
//! The allocation is the fixed point the real transport stack's AIMD
//! dynamics approximate on shared bottlenecks, which is why flow-level
//! simulators use it as the steady-state rate model.

use crate::topology::{NodeId, Topology};

/// One flow's demand as seen by the allocator.
#[derive(Debug, Clone, Copy)]
pub struct FlowDemand {
    /// Source node (consumes uplink).
    pub src: NodeId,
    /// Destination node (consumes downlink).
    pub dst: NodeId,
    /// Rate cap in bytes/sec (`f64::INFINITY` when unconstrained).
    pub cap_bps: f64,
}

/// Compute max-min fair rates (bytes/sec) for `flows` over `topo`.
///
/// Returns one rate per flow, in input order. Flows with a zero cap get
/// zero. Panics in debug builds if any node id is out of range.
pub fn allocate(topo: &Topology, flows: &[FlowDemand]) -> Vec<f64> {
    let n = topo.len();
    let mut rates = vec![0.0f64; flows.len()];
    if flows.is_empty() {
        return rates;
    }

    // Remaining capacity per constraint: uplinks then downlinks. The
    // original capacities are kept so saturation can be tested with an
    // epsilon *relative* to each link's scale: capacities here are bytes/sec
    // (~1e9 for a 10 GbE NIC), where one f64 ulp is ~1e-7 — an absolute
    // threshold is either meaninglessly tight at that scale or sloppily
    // loose for small test capacities.
    let up_cap: Vec<f64> = (0..n).map(|i| topo.spec(NodeId(i)).uplink_bps).collect();
    let down_cap: Vec<f64> = (0..n).map(|i| topo.spec(NodeId(i)).downlink_bps).collect();
    let mut up_left = up_cap.clone();
    let mut down_left = down_cap.clone();

    let mut frozen = vec![false; flows.len()];
    // Freeze zero-cap flows immediately.
    for (i, f) in flows.iter().enumerate() {
        debug_assert!(f.src.0 < n && f.dst.0 < n, "flow references missing node");
        if f.cap_bps <= 0.0 {
            frozen[i] = true;
        }
    }

    loop {
        // Count unfrozen flows per constraint.
        let mut up_count = vec![0u32; n];
        let mut down_count = vec![0u32; n];
        let mut any_unfrozen = false;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                any_unfrozen = true;
                up_count[f.src.0] += 1;
                down_count[f.dst.0] += 1;
            }
        }
        if !any_unfrozen {
            break;
        }

        // The uniform increment every unfrozen flow can still take: the
        // tightest of (a) equal split of remaining capacity on any loaded
        // constraint, (b) any unfrozen flow's remaining headroom to its cap.
        let mut delta = f64::INFINITY;
        for i in 0..n {
            if up_count[i] > 0 {
                delta = delta.min(up_left[i] / up_count[i] as f64);
            }
            if down_count[i] > 0 {
                delta = delta.min(down_left[i] / down_count[i] as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] && f.cap_bps.is_finite() {
                delta = delta.min(f.cap_bps - rates[i]);
            }
        }
        // Accumulated rounding can leave a residual (or cap headroom) a few
        // ulps below zero; clamp instead of handing a negative increment to
        // every flow.
        let delta = delta.max(0.0);
        debug_assert!(delta.is_finite(), "bad increment {delta}");

        // Apply the increment. Residuals are clamped at zero: a constraint
        // can end up an ulp negative after repeated subtraction, and a
        // negative residual must read as "saturated", never as headroom.
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                rates[i] += delta;
                up_left[f.src.0] = (up_left[f.src.0] - delta).max(0.0);
                down_left[f.dst.0] = (down_left[f.dst.0] - delta).max(0.0);
            }
        }

        // Freeze flows at their cap or on a saturated constraint. The
        // saturation epsilon is relative to each constraint's own capacity
        // (with a tiny absolute floor for zero/denormal capacities).
        const REL_EPS: f64 = 1e-9;
        let sat = |left: f64, cap: f64| left <= cap * REL_EPS + f64::MIN_POSITIVE;
        let saturated_up: Vec<bool> = up_left
            .iter()
            .zip(&up_cap)
            .map(|(&l, &c)| sat(l, c))
            .collect();
        let saturated_down: Vec<bool> = down_left
            .iter()
            .zip(&down_cap)
            .map(|(&l, &c)| sat(l, c))
            .collect();
        let mut progress = false;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let at_cap = f.cap_bps.is_finite() && rates[i] >= f.cap_bps * (1.0 - REL_EPS);
            if at_cap {
                // Pin exactly to the cap so rounding never reports a rate
                // above what the transport window allows.
                rates[i] = f.cap_bps;
            }
            if at_cap || saturated_up[f.src.0] || saturated_down[f.dst.0] {
                frozen[i] = true;
                progress = true;
            }
        }
        // With delta > 0 something always freezes; with delta == 0 the
        // freezing rule above must fire (a constraint is already
        // saturated). Guard against float pathology anyway.
        if !progress {
            break;
        }
    }

    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    fn topo(n: usize, bps: f64) -> Topology {
        Topology::uniform(n, NodeSpec::symmetric(bps))
    }

    fn flow(src: usize, dst: usize) -> FlowDemand {
        FlowDemand {
            src: NodeId(src),
            dst: NodeId(dst),
            cap_bps: f64::INFINITY,
        }
    }

    fn capped(src: usize, dst: usize, cap: f64) -> FlowDemand {
        FlowDemand {
            src: NodeId(src),
            dst: NodeId(dst),
            cap_bps: cap,
        }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let t = topo(2, 100.0);
        let r = allocate(&t, &[flow(0, 1)]);
        assert!((r[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_a_downlink() {
        // Both flows converge on node 2's downlink.
        let t = topo(3, 100.0);
        let r = allocate(&t, &[flow(0, 2), flow(1, 2)]);
        assert!((r[0] - 50.0).abs() < 1e-6);
        assert!((r[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn cap_frees_bandwidth_for_others() {
        let t = topo(3, 100.0);
        let r = allocate(&t, &[capped(0, 2, 20.0), flow(1, 2)]);
        assert!((r[0] - 20.0).abs() < 1e-6);
        assert!((r[1] - 80.0).abs() < 1e-6);
    }

    #[test]
    fn uplink_bottleneck() {
        // Node 0 fans out to two destinations: its uplink is the bottleneck.
        let t = topo(3, 100.0);
        let r = allocate(&t, &[flow(0, 1), flow(0, 2)]);
        assert!((r[0] - 50.0).abs() < 1e-6);
        assert!((r[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_node_is_the_bottleneck() {
        // §5.3: one slow worker. Flows from w1 (fast) and w2 (slow) to PS.
        let mut t = Topology::new();
        let _ps = t.add_node(NodeSpec::from_gbps(10.0));
        let _w1 = t.add_node(NodeSpec::from_gbps(10.0));
        let _w2 = t.add_node(NodeSpec::from_mbps(500.0));
        let r = allocate(&t, &[flow(1, 0), flow(2, 0)]);
        // w2 frozen at 62.5 MB/s, w1 takes the rest of the PS downlink.
        assert!((r[1] - 62.5e6).abs() < 1.0, "slow worker got {}", r[1]);
        assert!(
            (r[0] - (1.25e9 - 62.5e6)).abs() < 1.0,
            "fast worker got {}",
            r[0]
        );
    }

    #[test]
    fn zero_cap_flow_gets_nothing() {
        let t = topo(2, 100.0);
        let r = allocate(&t, &[capped(0, 1, 0.0), flow(0, 1)]);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn empty_flow_set() {
        let t = topo(2, 100.0);
        assert!(allocate(&t, &[]).is_empty());
    }

    #[test]
    fn many_flows_fair_split() {
        let t = topo(5, 120.0);
        // 4 workers push to node 0.
        let flows: Vec<_> = (1..5).map(|w| flow(w, 0)).collect();
        let r = allocate(&t, &flows);
        for &rate in &r {
            assert!((rate - 30.0).abs() < 1e-6, "rate {rate}");
        }
    }

    #[test]
    fn high_capacity_split_is_exact() {
        // 8 Tb/s in bytes/sec: one ulp here is ~1e-4, far above any
        // absolute epsilon. Three-way splits of such capacities are not
        // exactly representable, so this exercises the relative-epsilon
        // saturation path.
        let cap = 1e12;
        let t = topo(4, cap);
        let flows: Vec<_> = (1..4).map(|w| flow(w, 0)).collect();
        let r = allocate(&t, &flows);
        let share = cap / 3.0;
        let total: f64 = r.iter().sum();
        for &rate in &r {
            assert!((rate - share).abs() <= share * 1e-9, "rate {rate}");
        }
        assert!(total <= cap * (1.0 + 1e-9), "oversubscribed: {total}");
    }

    #[test]
    fn awkward_caps_never_exceed_capacity() {
        // Caps engineered to leave ulp-scale residuals after each round.
        let cap = 6.626115377326036e9;
        let t = topo(5, cap);
        let flows = [
            capped(1, 0, cap / 7.0),
            capped(2, 0, cap / 3.0),
            flow(3, 0),
            flow(4, 0),
        ];
        let r = allocate(&t, &flows);
        let total: f64 = r.iter().sum();
        assert!(total <= cap * (1.0 + 1e-9), "oversubscribed: {total}");
        assert!(r[0] <= cap / 7.0, "capped flow exceeds its cap: {}", r[0]);
        assert!(r[1] <= cap / 3.0, "capped flow exceeds its cap: {}", r[1]);
        // Work conservation: the sink downlink is the only bottleneck.
        assert!(total >= cap * (1.0 - 1e-9), "idle capacity: {total}");
    }

    #[test]
    fn self_loop_consumes_both_directions() {
        // Loopback-style flow uses the node's own up and down links.
        let t = topo(1, 100.0);
        let r = allocate(&t, &[flow(0, 0)]);
        assert!((r[0] - 100.0).abs() < 1e-6);
    }
}
