//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's registry mirror is unreachable from the build
//! environment. This crate keeps the `benches/` targets compiling and
//! *useful* — each `bench_function` runs a short warm-up, then measures
//! `sample_size` samples and prints min/mean/max wall-clock time — without
//! criterion's statistics machinery, plotting, or baselines.
//!
//! Two extensions beyond the bare stub:
//!
//! * **`--test` mode** — like real criterion, a bench binary invoked with
//!   `--test` on its command line (what `cargo test --benches` passes, and
//!   what the CI smoke tier passes explicitly) runs every benchmark exactly
//!   once with no sampling. [`Criterion::is_quick`] lets bench code also
//!   shrink its parameter grid and skip artifact emission in that mode.
//! * **Programmatic stats** — every measurement is recorded as a
//!   [`BenchStats`] retrievable via [`Criterion::stats`], so bench targets
//!   can emit machine-readable `BENCH_*.json` trajectories themselves
//!   ([`stats_to_json`] formats them without a serde dependency).

use std::time::{Duration, Instant};

/// Summary of one `bench_function` measurement, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Group name (first path component of criterion's `group/id`).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Measured samples (warm-up excluded).
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (midpoint mean for even sample counts).
    pub median_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// Render stats as a JSON array (plus caller-supplied derived scalars),
/// matching the `BENCH_*.json` layout the repro tooling consumes:
/// `{"benchmarks": [...], "derived": {...}}`.
pub fn stats_to_json(stats: &[BenchStats], derived: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"samples\": {}, \
             \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"max_ns\": {:.1}}}{}\n",
            s.group,
            s.id,
            s.samples,
            s.min_ns,
            s.mean_ns,
            s.median_ns,
            s.max_ns,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"derived\": {");
    for (i, (k, v)) in derived.iter().enumerate() {
        out.push_str(&format!(
            "{}\"{}\": {:.3}",
            if i == 0 { "" } else { ", " },
            k,
            v
        ));
    }
    out.push_str("}\n}\n");
    out
}

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
    stats: Vec<BenchStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("PROPHET_BENCH_QUICK").is_some();
        Criterion {
            quick,
            stats: Vec::new(),
        }
    }
}

impl Criterion {
    /// `--test` / smoke mode: benchmarks run once, artifacts are skipped.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Every measurement recorded so far, in execution order.
    pub fn stats(&self) -> &[BenchStats] {
        &self.stats
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 20,
            c: self,
        }
    }
}

/// A named group; holds per-group settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Advisory measurement budget; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measure one closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = if self.c.quick { 1 } else { self.sample_size };
        let mut b = Bencher {
            samples: Vec::with_capacity(budget),
            budget,
        };
        f(&mut b);
        let (min, mean, max) = b.summary();
        println!(
            "  {}/{id}: min {min:?}  mean {mean:?}  max {max:?}  ({} samples)",
            self.name,
            b.samples.len()
        );
        let mut ns: Vec<f64> = b.samples.iter().map(|d| d.as_nanos() as f64).collect();
        ns.sort_by(f64::total_cmp);
        let median_ns = if ns.is_empty() {
            0.0
        } else if ns.len() % 2 == 1 {
            ns[ns.len() / 2]
        } else {
            (ns[ns.len() / 2 - 1] + ns[ns.len() / 2]) / 2.0
        };
        self.c.stats.push(BenchStats {
            group: self.name.clone(),
            id: id.to_owned(),
            samples: b.samples.len(),
            min_ns: min.as_nanos() as f64,
            mean_ns: mean.as_nanos() as f64,
            median_ns,
            max_ns: max.as_nanos() as f64,
        });
        self
    }

    /// End the group (formatting no-op here).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `routine`, once as warm-up and then `sample_size` measured runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, result discarded
        for _ in 0..self.budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let min = *self.samples.iter().min().unwrap();
        let max = *self.samples.iter().max().unwrap();
        let total: Duration = self.samples.iter().sum();
        (min, total / self.samples.len() as u32, max)
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(quick: bool) -> Criterion {
        Criterion {
            quick,
            stats: Vec::new(),
        }
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = harness(false);
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(runs, 4, "warm-up + 3 samples");
        let s = &c.stats()[0];
        assert_eq!(
            (s.group.as_str(), s.id.as_str(), s.samples),
            ("t", "count", 3)
        );
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn quick_mode_runs_each_bench_once() {
        let mut c = harness(true);
        assert!(c.is_quick());
        let mut g = c.benchmark_group("t");
        g.sample_size(50);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(runs, 2, "warm-up + 1 sample in --test mode");
        assert_eq!(c.stats()[0].samples, 1);
    }

    #[test]
    fn json_layout_is_stable() {
        let stats = vec![BenchStats {
            group: "g".into(),
            id: "b".into(),
            samples: 2,
            min_ns: 1.0,
            mean_ns: 2.0,
            median_ns: 2.0,
            max_ns: 3.0,
        }];
        let j = stats_to_json(&stats, &[("speedup", 12.5)]);
        assert!(j.contains("\"benchmarks\""));
        assert!(j.contains("\"group\": \"g\""));
        assert!(j.contains("\"speedup\": 12.500"));
    }
}
