//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's registry mirror is unreachable from the build
//! environment. This crate keeps the `benches/` targets compiling and
//! *useful* — each `bench_function` runs a short warm-up, then measures
//! `sample_size` samples and prints min/mean/max wall-clock time — without
//! criterion's statistics machinery, plotting, or baselines.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 20,
        }
    }
}

/// A named group; holds per-group settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Advisory measurement budget; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measure one closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut b);
        let (min, mean, max) = b.summary();
        println!(
            "  {}/{id}: min {min:?}  mean {mean:?}  max {max:?}  ({} samples)",
            self.name,
            b.samples.len()
        );
        self
    }

    /// End the group (formatting no-op here).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `routine`, once as warm-up and then `sample_size` measured runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, result discarded
        for _ in 0..self.budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let min = *self.samples.iter().min().unwrap();
        let max = *self.samples.iter().max().unwrap();
        let total: Duration = self.samples.iter().sum();
        (min, total / self.samples.len() as u32, max)
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(runs, 4, "warm-up + 3 samples");
    }
}
