//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A vector whose length is uniform in `len` (half-open, like the real
/// crate's `SizeRange` from a `Range`) and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty vec length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span.max(1)) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(1u64..4, 0..5);
        let mut max_len = 0;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| (1..4).contains(&x)));
            max_len = max_len.max(v.len());
        }
        assert_eq!(max_len, 4, "length range never reached its top");
    }
}
