//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values. Unlike the real crate there is no value
/// tree and no shrinking: `generate` draws one value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// A strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_covers_span() {
        let mut rng = TestRng::from_seed(1);
        let s = 5u64..8;
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((5..8).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "values not covered: {seen:?}");
    }

    #[test]
    fn signed_range_includes_negatives() {
        let mut rng = TestRng::from_seed(2);
        let s = -3i32..3;
        let mut saw_negative = false;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((-3..3).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::from_seed(3);
        let s = (0u32..10).prop_map(|v| v as f64 + 0.5);
        let v = s.generate(&mut rng);
        assert_eq!(v.fract(), 0.5);
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::from_seed(4);
        assert_eq!(Just(42).generate(&mut rng), 42);
    }
}
