//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`, `Some` with probability one half.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some(inner)` half the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
