//! Offline stand-in for the `proptest` crate.
//!
//! This workspace pins its registry to an internal mirror that is not
//! reachable from the build environment, so the real `proptest` cannot be
//! fetched. This crate reimplements exactly the API surface the workspace's
//! property tests use — `proptest!`, `prop_assert*!`, range/tuple/vec/option
//! strategies, `prop_map`, and `ProptestConfig::with_cases` — on top of a
//! deterministic splitmix64 generator.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics immediately with the fully
//!   rendered inputs; minimal counterexamples are pinned as ordinary
//!   deterministic tests instead (see `tests/regression_cell.rs` at the
//!   workspace root).
//! * **No persistence.** `*.proptest-regressions` seed files are kept in
//!   the tree as documentation of historical counterexamples, but the seeds
//!   are implementation-specific to the real crate and are not replayed;
//!   every historical counterexample must therefore also exist as a
//!   deterministic test.
//! * **Deterministic by construction.** Case `i` of test `t` always sees
//!   the same inputs (seeded from `module_path!::t` and `i`), so CI failures
//!   reproduce locally without seed plumbing.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn my_prop(x in 0u64..100, ys in prop::collection::vec(0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ($($strat,)*);
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($arg,)*) = {
                        let ($(ref $arg,)*) = __strategies;
                        ($($crate::strategy::Strategy::generate($arg, &mut __rng),)*)
                    };
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest {}: case {}/{} failed: {}\n  inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// `prop_assert_ne!(a, b)` / `prop_assert_ne!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..17,
            y in -5i64..5,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            xs in prop::collection::vec(0u64..10, 2..6),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u32..4, 10u32..14),
            mapped in (0u64..100).prop_map(|v| v * 2),
        ) {
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
            prop_assert_eq!(mapped % 2, 0);
        }

        #[test]
        fn option_of_produces_both_variants(
            opts in prop::collection::vec(prop::option::of(0u64..5), 32..33),
        ) {
            // With 32 draws at p=0.5, both variants appear with overwhelming
            // probability; determinism makes this a fixed fact per seed.
            prop_assert!(opts.iter().any(|o| o.is_some()));
            prop_assert!(opts.iter().any(|o| o.is_none()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(TestRng::for_case("t", 0).next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_case_reports_inputs() {
        // No inner #[test] attribute: nested test items can't be collected
        // by the harness, so the generated fn is called directly instead.
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
