//! Deterministic case generation and failure reporting.

use std::fmt;

/// Per-test configuration. Only the knob the workspace uses.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// The real crate defaults to 256 cases; property bodies here drive
    /// whole discrete-event cluster runs in debug builds, so the default is
    /// kept small enough for a fast tier-1 gate. Heavier properties lower it
    /// further via `with_cases`.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a case failed. Mirrors the real crate's type loosely.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case was rejected (unused here, kept for API shape).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A splitmix64 generator, seeded per `(test name, case index)` so every
/// case is reproducible without external seed files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from raw state.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The canonical per-case seeding used by the `proptest!` macro.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name, mixed with the case
        // index by one splitmix64 round.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        };
        rng.next_u64(); // decorrelate nearby seeds
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_stays_below() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let a = TestRng::for_case("x::a", 0).next_u64();
        let b = TestRng::for_case("x::b", 0).next_u64();
        assert_ne!(a, b);
    }
}
