//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the PS wire protocol uses: an immutable,
//! cheaply-cloneable [`Bytes`] (shared `Arc<[u8]>`), a growable
//! [`BytesMut`] builder, and the [`BufMut`] little-endian put methods.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer. Clones share the allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static slice (copied here; the real crate borrows, but the
    /// observable behaviour is identical for readers).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes(Arc::from(slice))
    }

    /// Copy from a slice.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes(Arc::from(slice))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side trait: the little-endian put methods the wire format uses.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append an `f32`, little-endian.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_f32_le(1.5);
        b.put_u32_le(7);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        assert_eq!(
            f32::from_le_bytes([frozen[0], frozen[1], frozen[2], frozen[3]]),
            1.5
        );
        assert_eq!(
            u32::from_le_bytes([frozen[4], frozen[5], frozen[6], frozen[7]]),
            7
        );
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    fn from_static_reads_back() {
        let s = Bytes::from_static(&[9, 8]);
        assert_eq!(s.chunks_exact(2).count(), 1);
    }
}
