//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the PS wire protocol and its buffer pool use: an
//! immutable, cheaply-cloneable [`Bytes`] (a shared `Arc<Vec<u8>>` plus an
//! offset/length window), zero-copy [`Bytes::slice`] sub-views, uniqueness
//! reclaim via [`Bytes::try_into_mut`] (the real crate's API for recycling
//! a buffer nobody else holds), a growable [`BytesMut`] builder, and the
//! [`BufMut`] little-endian put methods.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer. Clones and [`Bytes::slice`] sub-views
/// share the allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wrap a static slice (copied here; the real crate borrows, but the
    /// observable behaviour is identical for readers).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Copy from a slice.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view of `range` (indices relative to this view).
    /// The returned `Bytes` shares the allocation. Panics when the range
    /// is out of bounds or decreasing, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(lo <= hi, "slice range reversed: {lo}..{hi}");
        assert!(
            hi <= self.len,
            "slice {lo}..{hi} out of bounds ({})",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + lo,
            len: hi - lo,
        }
    }

    /// Reclaim the underlying storage for reuse when this handle is the
    /// only one left (no clones or sub-views outstanding): the buffer
    /// pool's recycle path. Returns the storage as a [`BytesMut`] without
    /// copying, or `Err(self)` unchanged when the allocation is shared.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        match Arc::try_unwrap(self.data) {
            Ok(v) => Ok(BytesMut(v)),
            Err(data) => Err(Bytes { data, ..self }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Drop the contents, keeping the allocation (the recycle path).
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Reserve room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Append a copy of `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    /// Shorten to `len` bytes, keeping the allocation. No-op when already
    /// shorter.
    pub fn truncate(&mut self, len: usize) {
        self.0.truncate(len);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Write-side trait: the little-endian put methods the wire format uses.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append an `f32`, little-endian.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_f32_le(1.5);
        b.put_u32_le(7);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        assert_eq!(
            f32::from_le_bytes([frozen[0], frozen[1], frozen[2], frozen[3]]),
            1.5
        );
        assert_eq!(
            u32::from_le_bytes([frozen[4], frozen[5], frozen[6], frozen[7]]),
            7
        );
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    fn from_static_reads_back() {
        let s = Bytes::from_static(&[9, 8]);
        assert_eq!(s.chunks_exact(2).count(), 1);
    }

    #[test]
    fn slice_is_a_zero_copy_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&*ss, &[3, 4]);
        assert_eq!(s.slice(..0).len(), 0);
        // Equality and hashing see contents, not the window bookkeeping.
        assert_eq!(ss, Bytes::from(vec![3, 4]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rejects_out_of_range() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }

    #[test]
    fn try_into_mut_reclaims_only_unique_buffers() {
        let b = Bytes::from(vec![1, 2, 3]);
        let clone = b.clone();
        let b = b
            .try_into_mut()
            .expect_err("shared buffer must not reclaim");
        drop(clone);
        let mut m = b.try_into_mut().expect("unique buffer must reclaim");
        assert_eq!(&*m, &[1, 2, 3]);
        m.clear();
        m.put_u8(9);
        assert_eq!(&*m.freeze(), &[9]);
    }

    #[test]
    fn outstanding_slice_blocks_reclaim() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let window = b.slice(1..3);
        assert!(b.try_into_mut().is_err(), "slice still references storage");
        assert_eq!(&*window, &[2, 3]);
        assert!(window.try_into_mut().is_ok(), "last handle reclaims");
    }
}
