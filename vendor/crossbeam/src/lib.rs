//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace's registry mirror is unreachable from the build
//! environment, so this crate provides the one piece of crossbeam the
//! threaded PS runtime uses — `crossbeam::channel::{unbounded, Sender,
//! Receiver}` — implemented over `std::sync::mpsc`. Semantics match for
//! this usage: multi-producer (cloneable senders), single consumer,
//! unbounded, FIFO per sender, blocking `recv` that errors once every
//! sender is dropped.

pub mod channel {
    //! MPSC channels with the crossbeam method surface.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Cloneable sending half.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send, failing only when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Block until a message arrives, all senders are dropped, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterate until all senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_per_sender_and_multi_producer() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..10 {
                    tx2.send(i).unwrap();
                }
            });
            h.join().unwrap();
            drop(tx);
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
