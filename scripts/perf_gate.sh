#!/usr/bin/env bash
# Throughput regression gate over the committed threaded-PS bench artifact.
#
# Reads the derived metrics of BENCH_threaded.json (or the file given as
# $1) and fails if either pinned floor is broken:
#
#   speedup_8w_4s_vgg           >= 4.3   end-to-end speedup of the
#                                        8-worker 4-shard VGG cell over
#                                        the single-threaded seed rate
#   shard_scaling_8w_4s_over_1s >  1.0   4 shards must out-run 1 shard —
#                                        shard count stays a positive
#                                        scaling knob
#
# The floors are pinned here, not derived from a previous run: a bench
# regeneration that lands slower numbers in the artifact fails CI loudly
# instead of silently re-baselining. Bump them deliberately, with the
# optimisation that earns it, in the same commit.
set -euo pipefail
cd "$(dirname "$0")/.."

artifact="${1:-BENCH_threaded.json}"
speedup_floor="4.3"
scaling_floor="1.0"

if [[ ! -f "$artifact" ]]; then
    echo "perf gate: $artifact missing (run: cargo bench -p prophet-bench --bench threaded)" >&2
    exit 1
fi

speedup=$(jq -r '.derived.speedup_8w_4s_vgg // empty' "$artifact")
scaling=$(jq -r '.derived.shard_scaling_8w_4s_over_1s // empty' "$artifact")

if [[ -z "$speedup" || -z "$scaling" ]]; then
    echo "perf gate: $artifact lacks derived.speedup_8w_4s_vgg / derived.shard_scaling_8w_4s_over_1s" >&2
    exit 1
fi

fail=0
if ! awk -v v="$speedup" -v f="$speedup_floor" 'BEGIN { exit !(v >= f) }'; then
    echo "perf gate FAIL: speedup_8w_4s_vgg = $speedup < floor $speedup_floor" >&2
    fail=1
fi
if ! awk -v v="$scaling" -v f="$scaling_floor" 'BEGIN { exit !(v > f) }'; then
    echo "perf gate FAIL: shard_scaling_8w_4s_over_1s = $scaling <= floor $scaling_floor" >&2
    fail=1
fi
if [[ "$fail" -ne 0 ]]; then
    exit 1
fi

echo "perf gate OK: speedup_8w_4s_vgg = $speedup (floor $speedup_floor), shard_scaling_8w_4s_over_1s = $scaling (floor $scaling_floor)"
