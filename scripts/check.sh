#!/usr/bin/env bash
# The tier-1 gate, exactly as CI runs it. Everything is offline: external
# dependencies are vendored under vendor/ as path crates, so no registry
# access is needed (or attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test"
cargo test --offline -q

echo "==> OK"
