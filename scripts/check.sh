#!/usr/bin/env bash
# The tier-1 gate, exactly as CI runs it. Everything is offline: external
# dependencies are vendored under vendor/ as path crates, so no registry
# access is needed (or attempted).
#
# Usage: check.sh [all|debug|release]
#   debug    fmt + clippy + debug-profile tests (invariant checking on; the
#            slowest simulation suites are `#[cfg_attr(debug_assertions,
#            ignore)]` so this tier stays fast)
#   release  release build + release-profile tests with `--include-ignored`
#            (the trimmed suites at full iteration counts)
#   all      both tiers (default)
set -euo pipefail
cd "$(dirname "$0")/.."

tier="${1:-all}"

if [[ "$tier" == "all" || "$tier" == "debug" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (-D warnings)"
    cargo clippy --offline --workspace --all-targets -- -D warnings

    echo "==> cargo test (debug tier)"
    cargo test --offline -q

    echo "==> chaos smoke (seed 42, 2 plans per strategy)"
    # PROPHET_RESULTS_DIR: don't clobber the committed 200-plan artifact.
    PROPHET_RESULTS_DIR="$(mktemp -d)" \
        cargo run --offline -q -p prophet-bench --bin repro -- ext_chaos 42 2 > /dev/null

    echo "==> elastic churn smoke (seed 42, 2 plans per strategy)"
    PROPHET_RESULTS_DIR="$(mktemp -d)" \
        cargo run --offline -q -p prophet-bench --bin repro -- ext_elastic 42 2 > /dev/null

    echo "==> integrity corruption smoke (seed 42, 2 plans per strategy)"
    PROPHET_RESULTS_DIR="$(mktemp -d)" \
        cargo run --offline -q -p prophet-bench --bin repro -- ext_integrity 42 2 > /dev/null

    echo "==> bench smoke (criterion --test mode, no artifacts)"
    # Single-sample pass over the first scale point: compiles the bench
    # harnesses and exercises both engines without touching BENCH_*.json.
    cargo bench --offline -q -p prophet-bench --bench maxmin_scale -- --test > /dev/null
    cargo bench --offline -q -p prophet-bench --bench sim_scale -- --test > /dev/null
    cargo bench --offline -q -p prophet-bench --bench threaded -- --test > /dev/null
    cargo bench --offline -q -p prophet-bench --bench plan_cost -- --test > /dev/null

    echo "==> perf gate (pinned floors over BENCH_threaded.json)"
    ./scripts/perf_gate.sh
fi

if [[ "$tier" == "all" || "$tier" == "release" ]]; then
    echo "==> cargo build --release"
    cargo build --offline --release

    echo "==> cargo test --release (full tier)"
    # --lib/--bins/--tests: `--include-ignored` must not reach doctests
    # (vendored crates mark non-compiling examples `ignore`); doctests
    # already ran in the debug tier. This tier also picks up the fuller
    # chaos sweep (full scheduler lineup x 25 plans) behind its
    # `#[cfg_attr(debug_assertions, ignore)]` gates.
    cargo test --offline --release -q --lib --bins --tests -- --include-ignored

    echo "==> chaos sweep (seed 42, 50 plans per strategy)"
    PROPHET_RESULTS_DIR="$(mktemp -d)" \
        cargo run --offline --release -q -p prophet-bench --bin repro -- ext_chaos 42 50 > /dev/null

    echo "==> elastic churn sweep (seed 42, 50 plans per strategy)"
    PROPHET_RESULTS_DIR="$(mktemp -d)" \
        cargo run --offline --release -q -p prophet-bench --bin repro -- ext_elastic 42 50 > /dev/null

    echo "==> integrity corruption sweep (seed 42, 50 plans per strategy)"
    PROPHET_RESULTS_DIR="$(mktemp -d)" \
        cargo run --offline --release -q -p prophet-bench --bin repro -- ext_integrity 42 50 > /dev/null
fi

echo "==> OK ($tier)"
