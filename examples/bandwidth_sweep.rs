//! The Table 2 experiment: ResNet-50 (batch 64) training rate as worker
//! bandwidth sweeps from 1 to 10 Gb/s, for every strategy.
//!
//! ```text
//! cargo run --release --example bandwidth_sweep [model] [batch]
//! ```

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};

fn main() {
    let model = std::env::args().nth(1).unwrap_or_else(|| "resnet50".into());
    let batch: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    let mbps_list = [1000.0, 2000.0, 3000.0, 4000.0, 4500.0, 6000.0, 10000.0];
    println!("== bandwidth sweep: {model}, batch {batch}, 1 PS + 3 workers ==");
    println!("rates in samples/s/worker (Table 2's layout)\n");
    print!("{:>12}", "Mbps");
    let kinds = SchedulerKind::paper_lineup(1e9);
    for kind in &kinds {
        print!(" {:>14}", kind.label());
    }
    println!();

    for &mbps in &mbps_list {
        print!("{mbps:>12}");
        for kind in SchedulerKind::paper_lineup(mbps * 1e6 / 8.0) {
            let job = TrainingJob::paper_setup(&model, batch);
            let mut cfg = ClusterConfig::paper_cell(3, mbps / 1000.0, job, kind);
            cfg.warmup_iters = 5;
            let result = run_cluster(&cfg, 15);
            print!(" {:>14.2}", result.rate);
        }
        println!();
    }

    println!("\nShapes to expect (paper, Table 2): every strategy converges at");
    println!("10 Gb/s where compute dominates; P3 and FIFO fall away as the");
    println!("network tightens; Prophet tracks the best of them throughout.");
}
