//! The Fig. 5 story, live: run the four strategies on the same small
//! workload with a full span trace and render ASCII Gantt charts of worker
//! 0's GPU, uplink, and downlink — the illustrative comparison the paper
//! uses to motivate Prophet.
//!
//! ```text
//! cargo run --release --example compare_schedulers
//! ```

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};
use prophet::sim::TraceRecorder;

fn main() {
    let gbps = 3.0;
    for kind in SchedulerKind::paper_lineup(gbps * 1e9 / 8.0) {
        let label = kind.label();
        let job = TrainingJob::paper_setup("resnet18", 64);
        let mut cfg = ClusterConfig::paper_cell(2, gbps, job, kind);
        cfg.trace = true;
        cfg.warmup_iters = 2;
        cfg.compute_jitter = 0.0;
        let result = run_cluster(&cfg, 6);

        // Clip the trace to one steady iteration for a readable chart.
        let t0 = result.iter_starts[4];
        let t1 = result.iter_starts[5];
        let mut clipped = TraceRecorder::enabled();
        for span in result.trace.spans() {
            if span.start >= t0 && span.end <= t1 {
                clipped.record(&span.lane, &span.label, span.key, span.start, span.end);
            }
        }
        println!(
            "== {label}: {:.1} samples/s/worker, iteration {:.0} ms ==",
            result.rate,
            result.iter_times[4].as_millis_f64()
        );
        println!("legend: b=backward f=forward, p<g>=push q<g>=pull (g = top gradient)");
        print!("{}", clipped.to_ascii_gantt(100));
        println!();
    }
    println!("Watch the w0.gpu lane: the gap between the end of `b` and the");
    println!("first `f` is the wait the paper's Eq. (2) charges — Prophet's");
    println!("should be the shortest, FIFO's the longest.");
}
