//! Real training through the schedulers: worker threads train a genuine
//! MLP on synthetic data, every gradient byte crossing channels in the
//! order the communication scheduler dictates, aggregated on a real PS
//! thread. Shows loss convergence and that all strategies compute the
//! same model.
//!
//! ```text
//! cargo run --release --example threaded_training
//! ```

use prophet::core::SchedulerKind;
use prophet::ps::threaded::{run_threaded_training, ThreadedConfig};

fn main() {
    let workers = 4;
    println!("== threaded BSP training: {workers} workers, MLP 8-24-4 on Gaussian blobs ==\n");

    let mut finals: Vec<(String, Vec<Vec<f32>>)> = Vec::new();
    for kind in SchedulerKind::paper_lineup(100e6) {
        let label = kind.label().to_string();
        let mut cfg = ThreadedConfig::small(workers, kind);
        cfg.iterations = 30;
        let result = run_threaded_training(&cfg);
        println!(
            "{:<24} loss {:.4} -> {:.4}, accuracy {:.1}%, {:.1} kB pushed, {:?}",
            label,
            result.losses.first().unwrap(),
            result.losses.last().unwrap(),
            result.accuracy * 100.0,
            result.bytes_pushed as f64 / 1e3,
            result.wall
        );
        assert!(
            result.losses.last().unwrap() < &(result.losses[0] * 0.6),
            "{label}: training failed to converge"
        );
        finals.push((label, result.final_params));
    }

    // Communication scheduling must never change *what* is computed: every
    // strategy aggregates the same per-iteration gradients in the same
    // worker order on the PS, so the final models agree bitwise.
    let reference = &finals[0];
    for (label, params) in &finals[1..] {
        assert_eq!(
            params, &reference.1,
            "{label} diverged from {}",
            reference.0
        );
    }
    println!(
        "\nall {} strategies produced bit-identical final models ✓",
        finals.len()
    );
}
