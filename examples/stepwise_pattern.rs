//! Reproduce the paper's §2.2 observation: gradients are released to the
//! communication layer in *bursts* (the stepwise pattern of Fig. 4), and
//! the Training Job Profiler can recover that block structure from noisy
//! observations.
//!
//! ```text
//! cargo run --release --example stepwise_pattern [model]
//! ```

use prophet::core::detect_blocks;
use prophet::dnn::{GenerationModel, TrainingJob};

fn main() {
    let model = std::env::args().nth(1).unwrap_or_else(|| "resnet50".into());
    let job = TrainingJob::paper_setup(&model, 64);

    println!("== stepwise gradient-release pattern: {model}, batch 64 ==");
    println!(
        "{} gradients, {:.1} MB per iteration, backward {:.1} ms",
        job.num_gradients(),
        job.total_bytes() as f64 / 1e6,
        job.backward_duration().as_millis_f64()
    );

    let events = job.generation_events();
    let blocks = GenerationModel::blocks(events);
    println!("\nrelease staircase ({} blocks):", blocks.len());
    println!(
        "{:>10} {:>18} {:>8} {:>10}",
        "time (ms)", "gradients", "count", "bytes (MB)"
    );
    for block in &blocks {
        let t = events
            .iter()
            .find(|e| e.id == block[0])
            .map(|e| e.ready_at.as_millis_f64())
            .unwrap_or(0.0);
        let bytes: u64 = block.iter().map(|&g| job.size(g)).sum();
        let ids = format!(
            "{}..{}",
            block.iter().min().unwrap(),
            block.iter().max().unwrap()
        );
        println!(
            "{:>10.2} {:>18} {:>8} {:>10.2}",
            t,
            ids,
            block.len(),
            bytes as f64 / 1e6
        );
    }

    // The profiler must recover this structure from the offsets alone.
    let c = job.c_offsets();
    let recovered = detect_blocks(&c);
    println!(
        "\nprofiler recovers {} blocks from the release offsets (ground truth: {})",
        recovered.len(),
        blocks.len()
    );
    assert_eq!(
        recovered.len(),
        blocks.len(),
        "profiler missed the staircase"
    );

    // VGG19 is the paper's sharpest anchor: 38 gradients in 4-ish blocks.
    if model == "vgg19" {
        println!("\n(paper, Fig. 4: VGG19 shows gradients 0-37 in four blocks)");
    }
}
