//! Quickstart: simulate the paper's standard testbed — 1 PS + 3 workers
//! training ResNet-50 (batch 64) — under each communication scheduling
//! strategy, and print the training rates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};

fn main() {
    let gbps = 4.0;
    let workers = 3;
    let iterations = 20;

    println!("== Prophet reproduction quickstart ==");
    println!("cluster: 1 PS + {workers} workers, {gbps} Gb/s, ResNet-50 batch 64");
    println!(
        "{:<24} {:>14} {:>12} {:>14}",
        "strategy", "samples/s/wkr", "GPU util", "mean wait (ms)"
    );

    for kind in SchedulerKind::paper_lineup(gbps * 1e9 / 8.0) {
        let job = TrainingJob::paper_setup("resnet50", 64);
        let label = kind.label();
        let mut cfg = ClusterConfig::paper_cell(workers, gbps, job, kind);
        cfg.warmup_iters = 5;
        let result = run_cluster(&cfg, iterations);
        let last = result.transfer_logs.len() - 1;
        println!(
            "{:<24} {:>14.1} {:>11.1}% {:>14.1}",
            label,
            result.rate,
            result.avg_gpu_util * 100.0,
            result.mean_wait_ms(last),
        );
    }

    println!();
    println!("The compute-bound ceiling for this job is ~73 samples/s/worker;");
    println!("Prophet should sit closest to it, with MXNet's FIFO trailing.");
}
