//! Elastic membership end to end: permanent worker/shard failures, worker
//! admission, checkpoint/restore and live re-sharding — under the
//! **deterministic recovery contract**: a run under any permanent-fault
//! plan computes exactly the model that membership timetable prescribes,
//! bit for bit, on both the discrete-event simulator and the real threaded
//! runtime.

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::minidnn::{Adam, Dataset, Mlp, Sgd};
use prophet::ps::sim::{run_cluster, ClusterConfig};
use prophet::ps::threaded::{run_threaded_training, PsOptimizer, ThreadedConfig};
use prophet::ps::{check_churn_plan, run_sim_checked, OracleBudget};
use prophet::sim::{ChaosGen, ChaosProfile, Duration, FaultPlan, FaultSpec};

// ---------------------------------------------------------------------------
// Threaded runtime: bit-exact parity with a membership-aware reference
// ---------------------------------------------------------------------------

/// The permanent-plan matrix. Node ids: shard `s < ps_shards`, worker
/// `ps_shards + w`; joiners take dense ids from `workers`.
fn permanent_plans(workers: usize, shards: usize) -> Vec<(&'static str, FaultPlan)> {
    let mut plans = vec![
        (
            "worker_fail",
            FaultPlan::new(vec![FaultSpec::WorkerFail {
                worker: workers - 1,
                at_iter: 4,
            }]),
        ),
        (
            "worker_join",
            FaultPlan::new(vec![FaultSpec::WorkerJoin {
                worker: workers,
                at_iter: 3,
            }]),
        ),
        (
            "churn_swap",
            FaultPlan::new(vec![
                FaultSpec::WorkerFail {
                    worker: 0,
                    at_iter: 6,
                },
                FaultSpec::WorkerJoin {
                    worker: workers,
                    at_iter: 2,
                },
            ]),
        ),
    ];
    if shards >= 2 {
        plans.push((
            "shard_fail",
            FaultPlan::new(vec![FaultSpec::ShardFail {
                shard: shards - 1,
                at_iter: 5,
            }]),
        ));
        plans.push((
            "full_churn",
            FaultPlan::new(vec![
                FaultSpec::WorkerFail {
                    worker: 0,
                    at_iter: 6,
                },
                FaultSpec::ShardFail {
                    shard: 0,
                    at_iter: 4,
                },
                FaultSpec::WorkerJoin {
                    worker: workers,
                    at_iter: 2,
                },
            ]),
        ));
    }
    if shards >= 3 {
        // Two shards dying at the same boundary: the re-balance must fold
        // both evictions into one epoch and re-home every tensor in a
        // single hop.
        plans.push((
            "double_shard_fail",
            FaultPlan::new(vec![
                FaultSpec::ShardFail {
                    shard: 0,
                    at_iter: 4,
                },
                FaultSpec::ShardFail {
                    shard: 2,
                    at_iter: 4,
                },
            ]),
        ));
    }
    plans
}

/// Membership-aware single-process reference: per iteration, average the
/// gradients of exactly the member workers (ascending id, matching the
/// PS's fixed fold order), step per-tensor optimisers. Shard deaths are
/// invisible here — that is the point: checkpoint restore is bit-exact, so
/// re-sharding must never change the computation.
fn elastic_reference(cfg: &ThreadedConfig) -> Vec<Vec<f32>> {
    let features = cfg.widths[0];
    let classes = *cfg.widths.last().unwrap();
    let data = Dataset::blobs(cfg.samples, features, classes, cfg.noise, cfg.seed);
    let model = Mlp::new(&cfg.widths, cfg.seed ^ 0xABCD);
    enum Opt {
        Sgd(Sgd),
        Adam(Adam),
    }
    let mut opt = match cfg.optimizer {
        PsOptimizer::Sgd { momentum } => {
            Opt::Sgd(Sgd::new(cfg.lr, momentum, &model.tensor_sizes()))
        }
        PsOptimizer::Adam => Opt::Adam(Adam::new(cfg.lr, &model.tensor_sizes())),
    };
    let mut params: Vec<Vec<f32>> = model.param_slices().iter().map(|p| p.to_vec()).collect();
    let total = cfg.workers + cfg.fault_plan.joined_workers();
    let per = cfg.global_batch / cfg.workers;
    for iter in 0..cfg.iterations {
        let members: Vec<usize> = (0..total)
            .filter(|&w| {
                let from = if w < cfg.workers {
                    0
                } else {
                    cfg.fault_plan.worker_join_at(w).expect("dense joiner ids")
                };
                let until = cfg.fault_plan.worker_fail_at(w).unwrap_or(u64::MAX);
                from <= iter && iter < until
            })
            .collect();
        let mut acc: Vec<Vec<f32>> = model.tensor_sizes().iter().map(|&n| vec![0.0; n]).collect();
        for &w in &members {
            // Data windows are a pure function of (absolute id, iter) —
            // identical to the runtime's, membership notwithstanding.
            let lo = ((iter as usize * cfg.global_batch) + w * per) % data.len();
            let hi = (lo + per).min(data.len()).max(lo + 1);
            let (x, labels) = data.batch(lo, hi);
            let mut replica = Mlp::new(&cfg.widths, cfg.seed ^ 0xABCD);
            for (id, p) in params.iter().enumerate() {
                replica.set_param(id, p);
            }
            replica.zero_grads();
            let _ = replica.forward_backward(&x, &labels);
            for (a, g) in acc.iter_mut().zip(replica.grad_slices()) {
                for (av, &gv) in a.iter_mut().zip(g) {
                    *av += gv;
                }
            }
        }
        let inv = 1.0 / members.len() as f32;
        for (id, a) in acc.iter_mut().enumerate() {
            for v in a.iter_mut() {
                *v *= inv;
            }
            match &mut opt {
                Opt::Sgd(o) => o.step(id, &mut params[id], a),
                Opt::Adam(o) => o.step(id, &mut params[id], a),
            }
        }
    }
    params
}

fn elastic_cfg(shards: usize, kind: SchedulerKind) -> ThreadedConfig {
    let mut cfg = ThreadedConfig::small(3, kind);
    cfg.ps_shards = shards;
    cfg.global_batch = 48;
    cfg.iterations = 10;
    cfg
}

#[test]
fn threaded_permanent_plans_match_membership_reference_bitwise() {
    // {plan kind} x {shard count} under FIFO: every cell's final model must
    // equal the membership-aware reference bit for bit. Checkpoint periods
    // of 1, 3 and 4 exercise restore-from-snapshot, snapshot+ledger replay
    // and the default cadence.
    for shards in [1usize, 2, 4] {
        for (label, plan) in permanent_plans(3, shards) {
            for period in [1u64, 3] {
                let mut cfg = elastic_cfg(shards, SchedulerKind::Fifo);
                cfg.checkpoint_period = period;
                cfg.fault_plan = plan.clone();
                let r = run_threaded_training(&cfg);
                assert!(
                    r.events_checked > 0,
                    "{label}/{shards} shards: checker not wired"
                );
                assert_eq!(
                    r.membership_epochs,
                    plan.faults.len() as u64,
                    "{label}/{shards} shards: wrong epoch count"
                );
                assert_eq!(
                    r.final_params,
                    elastic_reference(&cfg),
                    "{label}/{shards} shards/period {period}: \
                     permanent plan changed the computed model"
                );
            }
        }
    }
}

#[test]
fn threaded_permanent_plans_hold_across_the_scheduler_lineup() {
    // The full churn plan against every scheduling strategy: membership
    // reconfiguration is transport-level, schedulers must be oblivious.
    for kind in SchedulerKind::paper_lineup(100e6) {
        let label = kind.label();
        let mut cfg = elastic_cfg(2, kind.clone());
        cfg.fault_plan = FaultPlan::new(vec![
            FaultSpec::WorkerFail {
                worker: 0,
                at_iter: 6,
            },
            FaultSpec::ShardFail {
                shard: 0,
                at_iter: 4,
            },
            FaultSpec::WorkerJoin {
                worker: 3,
                at_iter: 2,
            },
        ]);
        let r = run_threaded_training(&cfg);
        assert!(r.events_checked > 0, "{label}: checker not wired");
        assert!(r.restore_bytes > 0, "{label}: shard death restored nothing");
        assert_eq!(
            r.final_params,
            elastic_reference(&cfg),
            "{label}: churn changed the computed model"
        );
    }
}

#[test]
fn threaded_elastic_runs_are_deterministic() {
    // Two runs of the same churned configuration must agree bitwise —
    // params, losses, and the recovery accounting.
    let mut cfg = elastic_cfg(2, SchedulerKind::Fifo);
    cfg.fault_plan = FaultPlan::new(vec![
        FaultSpec::ShardFail {
            shard: 1,
            at_iter: 3,
        },
        FaultSpec::WorkerFail {
            worker: 2,
            at_iter: 7,
        },
        FaultSpec::WorkerJoin {
            worker: 3,
            at_iter: 4,
        },
    ]);
    let a = run_threaded_training(&cfg);
    let b = run_threaded_training(&cfg);
    assert_eq!(a.final_params, b.final_params, "nondeterministic params");
    assert_eq!(a.losses, b.losses, "loss traces differ");
    assert_eq!(a.restore_bytes, b.restore_bytes, "restore cost differs");
    assert_eq!(a.membership_epochs, b.membership_epochs);
}

#[test]
fn threaded_joiner_past_horizon_stays_silent() {
    // A join scheduled at/after the horizon never fires: the run must be
    // bit-identical to its fault-free twin with zero epochs.
    let clean = run_threaded_training(&elastic_cfg(2, SchedulerKind::Fifo));
    let mut cfg = elastic_cfg(2, SchedulerKind::Fifo);
    cfg.fault_plan = FaultPlan::new(vec![FaultSpec::WorkerJoin {
        worker: 3,
        at_iter: cfg.iterations + 5,
    }]);
    let r = run_threaded_training(&cfg);
    assert_eq!(r.membership_epochs, 0, "phantom epoch opened");
    assert_eq!(
        r.final_params, clean.final_params,
        "phantom joiner changed the model"
    );
    assert_eq!(r.losses, clean.losses);
}

#[test]
fn threaded_checkpoint_cadence_trades_restore_bytes() {
    // A tighter checkpoint period must not change the model, and must not
    // read back MORE bytes at restore (shorter ledgers to replay).
    let plan = FaultPlan::new(vec![FaultSpec::ShardFail {
        shard: 1,
        at_iter: 7,
    }]);
    let run = |period: u64| {
        let mut cfg = elastic_cfg(2, SchedulerKind::Fifo);
        cfg.checkpoint_period = period;
        cfg.fault_plan = plan.clone();
        run_threaded_training(&cfg)
    };
    let tight = run(1);
    let loose = run(8);
    assert_eq!(
        tight.final_params, loose.final_params,
        "cadence changed the model"
    );
    assert!(tight.restore_bytes > 0 && loose.restore_bytes > 0);
    assert!(
        tight.restore_bytes <= loose.restore_bytes,
        "period 1 restored {} bytes, period 8 restored {}",
        tight.restore_bytes,
        loose.restore_bytes
    );
}

// ---------------------------------------------------------------------------
// Simulator: completion, determinism, and the chaos sweep
// ---------------------------------------------------------------------------

fn sim_cell(kind: SchedulerKind) -> ClusterConfig {
    let mut cfg =
        ClusterConfig::paper_cell(3, 10.0, TrainingJob::paper_setup("resnet18", 16), kind);
    cfg.ps_shards = 2;
    cfg.warmup_iters = 1;
    cfg.check_invariants = true;
    cfg
}

#[test]
fn sim_every_permanent_kind_completes_for_every_strategy() {
    let plans = [
        FaultPlan::new(vec![FaultSpec::WorkerFail {
            worker: 2,
            at_iter: 3,
        }]),
        FaultPlan::new(vec![FaultSpec::ShardFail {
            shard: 1,
            at_iter: 2,
        }]),
        FaultPlan::new(vec![FaultSpec::WorkerJoin {
            worker: 3,
            at_iter: 2,
        }]),
    ];
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label();
        for (i, plan) in plans.iter().enumerate() {
            let mut cfg = sim_cell(kind.clone());
            cfg.fault_plan = plan.clone();
            let r = run_cluster(&cfg, 6);
            assert_eq!(r.iterations, 6, "{label}/plan {i}: incomplete run");
            assert_eq!(r.elastic.epochs, 1, "{label}/plan {i}: wrong epoch count");
            if plan.has_shard_fail() {
                assert!(
                    r.elastic.restore_bytes > 0,
                    "{label}/plan {i}: restore moved no bytes"
                );
                assert!(
                    r.elastic.recovery_ns > 0,
                    "{label}/plan {i}: zero recovery time"
                );
            }
            assert!(
                r.elastic.replans >= 1,
                "{label}/plan {i}: no re-plan after the epoch"
            );
        }
    }
}

#[test]
fn sim_churn_replays_bit_identically() {
    let plan = FaultPlan::new(vec![
        FaultSpec::ShardFail {
            shard: 0,
            at_iter: 2,
        },
        FaultSpec::WorkerFail {
            worker: 0,
            at_iter: 4,
        },
        FaultSpec::WorkerJoin {
            worker: 3,
            at_iter: 3,
        },
    ]);
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label();
        let mut cfg = sim_cell(kind);
        cfg.fault_plan = plan.clone();
        let a = run_cluster(&cfg, 6);
        let b = run_cluster(&cfg, 6);
        assert_eq!(a.duration, b.duration, "{label}: durations diverged");
        assert_eq!(
            a.iter_times, b.iter_times,
            "{label}: iteration times diverged"
        );
        assert_eq!(a.elastic, b.elastic, "{label}: elastic counters diverged");
    }
}

/// The acceptance sweep: >= 200 churn plans x the 4-scheduler lineup, every
/// plan judged by the safety/liveness/accounting/recovery-contract oracles,
/// zero violations tolerated. Release tier only — the debug tier runs the
/// same loop at a smoke budget below.
fn churn_sweep(plans_per_scheduler: usize) {
    let budget = OracleBudget::paper_default();
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label().to_string();
        let base = sim_cell(kind);
        let golden = run_cluster(&base, 6);
        let horizon = Duration::from_nanos(golden.duration.as_nanos());
        let profile = ChaosProfile::churn(base.workers, base.ps_shards, horizon, 6);
        let mut gen = ChaosGen::new(0xE1A5);
        for i in 0..plans_per_scheduler {
            let plan = gen.next_plan(&profile);
            let mut churned = base.clone();
            churned.fault_plan = plan.clone();
            let outcome = run_sim_checked(&churned, 6);
            let rerun = run_sim_checked(&churned, 6);
            let verdict = check_churn_plan(&golden, &outcome, &rerun, &budget);
            assert!(
                verdict.ok(),
                "{label}: plan {i} violated the recovery contract: {:?}\nplan: {:?}",
                verdict.violations,
                plan
            );
        }
    }
}

#[test]
fn churn_sweep_smoke() {
    churn_sweep(5);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-tier: 200 plans x 4 schedulers x 2 runs"
)]
fn churn_sweep_full() {
    churn_sweep(200);
}
