//! Property tests for the fault/retry layer.
//!
//! Two families: (1) the backoff schedule is pure arithmetic — monotone,
//! capped, deterministic — for *any* policy, including degenerate ones;
//! (2) the cross-stack byte ledger reconciles: every extra byte a faulted
//! run puts on the wire relative to its fault-free twin is accounted for
//! by the waste counters, and the run is bit-reproducible per seed.

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::net::RetryPolicy;
use prophet::ps::sim::{run_cluster, ClusterConfig, RunResult};
use prophet::sim::{Duration, FaultPlan, FaultSpec, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `delay` is pure data: zero for the original send, then doubling from
    /// `base`, monotone nondecreasing, and clamped at `cap` — even when
    /// `base > cap` or the attempt number is far past the shift width.
    #[test]
    fn backoff_is_monotone_capped_and_deterministic(
        base_ns in 1u64..2_000_000_000,
        cap_ns in 1u64..10_000_000_000,
        probe in 1u32..1_000_000,
    ) {
        let p = RetryPolicy {
            base: Duration::from_nanos(base_ns),
            cap: Duration::from_nanos(cap_ns),
            timeout: Duration::from_secs(5),
        };
        prop_assert_eq!(p.delay(0), Duration::ZERO);
        prop_assert_eq!(p.delay(1), Duration::from_nanos(base_ns.min(cap_ns)));
        let mut prev = Duration::ZERO;
        for k in 1..=66u32 {
            let d = p.delay(k);
            prop_assert!(d >= prev, "attempt {}: {:?} < {:?}", k, d, prev);
            prop_assert!(d <= p.cap, "attempt {}: {:?} above cap {:?}", k, d, p.cap);
            prop_assert_eq!(d, p.delay(k), "delay must be a pure function");
            prev = d;
        }
        // Far past the shift width the doubling saturates at the cap (any
        // base ≥ 1 ns shifted by 63 overflows u64, so `min` picks the cap).
        prop_assert_eq!(p.delay(64 + probe), p.cap);
    }
}

fn faulted(kind: SchedulerKind, plan: FaultPlan, seed: u64) -> RunResult {
    let mut cfg = ClusterConfig::paper_cell(2, 5.0, TrainingJob::paper_setup("resnet18", 32), kind);
    cfg.seed = seed;
    cfg.warmup_iters = 1;
    cfg.fault_plan = plan;
    run_cluster(&cfg, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For a random (scheduler, seed, loss rate, crash time) cell: the
    /// faulted run still finishes; it is bit-reproducible under the same
    /// seed; and its byte ledger reconciles with the fault-free twin —
    /// extra wire bytes equal the recorded waste, waste never exceeds the
    /// retransmitted volume, and lost messages waste exactly what they
    /// retried.
    #[test]
    fn retried_bytes_reconcile_with_flow_ledger(
        kind_idx in 0usize..4,
        seed in 0u64..1000,
        loss in 0.02f64..0.20,
        crash_at_ms in 40u64..120,
    ) {
        let kind = SchedulerKind::paper_lineup(5.0 * 1e9 / 8.0)[kind_idx].clone();
        let plan = FaultPlan::new(vec![
            FaultSpec::MsgLoss {
                rate: loss,
                at: SimTime::ZERO + Duration::from_millis(10),
                dur: Duration::from_millis(25),
            },
            FaultSpec::ShardCrash {
                shard: 0,
                at: SimTime::ZERO + Duration::from_millis(crash_at_ms),
                restart_after: Duration::from_millis(30),
            },
        ]);

        let clean = faulted(kind.clone(), FaultPlan::empty(), seed);
        let a = faulted(kind.clone(), plan.clone(), seed);
        let b = faulted(kind, plan, seed);

        prop_assert_eq!(clean.iter_times.len(), 3);
        prop_assert_eq!(a.iter_times.len(), 3, "faulted run hung");
        prop_assert_eq!(&a.iter_times, &b.iter_times, "nondeterministic per seed");
        prop_assert_eq!(a.duration, b.duration);
        prop_assert_eq!(&a.fault_stats, &b.fault_stats);

        let s = &a.fault_stats;
        let c = &clean.fault_stats;
        prop_assert_eq!(c.retries, 0);
        prop_assert_eq!(c.retried_bytes, 0);
        prop_assert!(c.wasted_bytes == 0.0);
        prop_assert!(s.recoveries <= s.retries, "{:?}", s);
        prop_assert!(s.retries == 0 || s.recoveries > 0, "dropped gradient: {:?}", s);
        prop_assert!(s.retries == 0 || s.retried_bytes > 0, "{:?}", s);
        prop_assert!(s.messages_lost <= s.retries, "{:?}", s);

        // Waste is bounded by what was retransmitted: a killed flow wastes
        // only the bytes it had delivered, a doomed message its full size.
        prop_assert!(
            s.wasted_bytes <= s.retried_bytes as f64 + 1.0,
            "waste {} exceeds retransmissions {}", s.wasted_bytes, s.retried_bytes
        );
        // Conservation: the extra wire bytes of the faulted run are the
        // recorded waste plus any replayed slices (a replay re-sends bytes
        // that DID arrive — the crash wiped their aggregation — so it adds
        // wire volume without adding waste). Replayed bytes are a subset of
        // `retried_bytes`, giving a sandwich that is exact when replays = 0.
        let extra = s.wire_bytes - c.wire_bytes;
        prop_assert!(
            extra >= s.wasted_bytes - 64.0,
            "extra wire {:.1} below recorded waste {:.1}", extra, s.wasted_bytes
        );
        prop_assert!(
            extra <= s.wasted_bytes + s.retried_bytes as f64 + 64.0,
            "extra wire {:.1} exceeds waste {:.1} + retransmissions {}",
            extra, s.wasted_bytes, s.retried_bytes
        );
        if s.replays == 0 {
            prop_assert!(
                (extra - s.wasted_bytes).abs() <= 64.0,
                "no replays, yet extra {:.1} != wasted {:.1}", extra, s.wasted_bytes
            );
        }
    }
}
