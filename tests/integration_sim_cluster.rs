//! Cross-crate integration: full cluster simulations exercising every
//! substrate together (workload model → schedulers → network → PS).

use prophet::core::{ProphetConfig, SchedulerKind};
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};
use prophet::sim::Duration;

fn cell(model: &str, batch: u32, workers: usize, gbps: f64, kind: SchedulerKind) -> ClusterConfig {
    ClusterConfig::paper_cell(workers, gbps, TrainingJob::paper_setup(model, batch), kind)
}

/// Debug builds simulate ~20x slower; shrink long runs there (assertions
/// are qualitative orderings, so fewer iterations only add noise).
fn iters(n: u64) -> u64 {
    if cfg!(debug_assertions) {
        (n / 2).max(4)
    } else {
        n
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under the debug profile; the release tier runs it"
)]
fn every_strategy_completes_every_evaluated_model() {
    for model in ["resnet18", "resnet50", "inception_v3"] {
        for kind in SchedulerKind::paper_lineup(1.25e9) {
            let label = kind.label();
            let r = run_cluster(&cell(model, 16, 2, 10.0, kind), 4);
            assert_eq!(r.iter_times.len(), 4, "{model}/{label}");
            assert!(r.rate > 0.0, "{model}/{label}: zero rate");
            assert!(
                r.rate <= r.iter_times.len() as f64 * 1e4,
                "{model}/{label}: absurd rate {}",
                r.rate
            );
        }
    }
}

#[test]
fn rates_never_exceed_compute_ceiling() {
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let cfg = cell("resnet50", 64, 3, 10.0, kind);
        let ceiling = cfg.job.compute_rate_ceiling();
        let label = cfg.scheduler.label();
        let r = run_cluster(&cfg, 6);
        // Small tolerance: compute jitter lets short windows slightly
        // beat the nominal (jitter-free) ceiling.
        assert!(
            r.rate <= ceiling * 1.08,
            "{label}: {:.1} exceeds ceiling {:.1}",
            r.rate,
            ceiling
        );
    }
}

#[test]
fn transfer_conservation_every_gradient_every_iteration() {
    // Every gradient must be pushed and pulled exactly once per iteration,
    // for every strategy (the BSP contract).
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label();
        let r = run_cluster(&cell("resnet18", 32, 3, 10.0, kind), 4);
        for (it, logs) in r.transfer_logs.iter().enumerate() {
            assert_eq!(logs.len(), 62, "{label} iter {it}: wrong gradient count");
            for log in logs {
                assert!(
                    log.push_end > log.push_start,
                    "{label} iter {it} grad {}: empty push window",
                    log.grad
                );
                assert!(
                    log.pull_end >= log.push_end,
                    "{label} iter {it} grad {}: pulled before aggregated",
                    log.grad
                );
            }
        }
    }
}

#[test]
fn online_prophet_switches_out_of_profiling() {
    // With a short profiling window, the online Prophet must first behave
    // like FIFO, then improve once planned.
    let mut pc = ProphetConfig::paper_default(1.25e9 / 8.0 * 3.0); // 3 Gb/s-ish
    pc.profile_iters = 4;
    let kind = SchedulerKind::Prophet(pc);
    let mut cfg = cell("resnet50", 64, 3, 3.0, kind);
    cfg.warmup_iters = 1;
    let r = run_cluster(&cfg, 16); // fixed: indices below address iterations
    let early: f64 = r.iter_times[1..4]
        .iter()
        .map(|d| d.as_secs_f64())
        .sum::<f64>()
        / 3.0;
    let late: f64 = r.iter_times[10..16]
        .iter()
        .map(|d| d.as_secs_f64())
        .sum::<f64>()
        / 6.0;
    assert!(
        late < early * 0.95,
        "planned phase not faster: early {early:.3}s late {late:.3}s"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under the debug profile; the release tier runs it"
)]
fn prophet_beats_fifo_and_p3_in_paper_regime() {
    // The paper's headline ordering at a mid-band bandwidth.
    let gbps = 4.0;
    let rate = |kind: SchedulerKind| {
        let mut cfg = cell("resnet50", 64, 3, gbps, kind);
        cfg.warmup_iters = 4;
        run_cluster(&cfg, iters(15)).rate
    };
    let fifo = rate(SchedulerKind::Fifo);
    let p3 = rate(SchedulerKind::P3 {
        partition_bytes: 4 << 20,
    });
    let prophet = rate(SchedulerKind::ProphetOracle(ProphetConfig::paper_default(
        gbps * 1e9 / 8.0,
    )));
    assert!(
        prophet > p3 && p3 > fifo,
        "ordering violated: prophet {prophet:.1}, p3 {p3:.1}, fifo {fifo:.1}"
    );
    assert!(
        prophet > fifo * 1.05,
        "prophet's edge over FIFO too small: {prophet:.1} vs {fifo:.1}"
    );
}

#[test]
fn all_strategies_converge_on_fast_networks() {
    // §5.3: at 10 Gb/s "the optimization space ... is marginal".
    let rates: Vec<f64> = SchedulerKind::paper_lineup(1.25e9)
        .into_iter()
        .map(|kind| {
            let mut cfg = cell("resnet18", 64, 3, 10.0, kind);
            cfg.warmup_iters = 3;
            run_cluster(&cfg, iters(12)).rate
        })
        .collect();
    let max = rates.iter().cloned().fold(0.0, f64::max);
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        (max - min) / max < 0.08,
        "strategies should converge at 10G: {rates:?}"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under the debug profile; the release tier runs it"
)]
fn gpu_idle_dip_visible_under_fifo() {
    // Fig. 2: under default MXNet the GPU goes fully idle while waiting
    // for pulls at least once per iteration on a constrained network.
    let mut cfg = cell("resnet152", 32, 3, 3.0, SchedulerKind::Fifo);
    cfg.sample_window = Duration::from_millis(100);
    let r = run_cluster(&cfg, 6);
    let idle_windows = r.gpu_util.iter().filter(|&&(_, u)| u < 0.05).count();
    assert!(
        idle_windows >= 3,
        "expected idle valleys in the GPU series, got {idle_windows}"
    );
}

#[test]
fn heterogeneous_slow_worker_drags_the_cluster() {
    // §5.3: one worker capped at 500 Mb/s.
    let kind = || SchedulerKind::ProphetOracle(ProphetConfig::paper_default(1.25e9));
    let uniform = cell("resnet50", 64, 3, 10.0, kind());
    let mut hetero = uniform.clone();
    hetero.worker_bps_overrides.push((2, 62.5e6));
    let ru = run_cluster(&uniform, 6);
    let rh = run_cluster(&hetero, 6);
    assert!(
        rh.rate < ru.rate * 0.7,
        "500 Mb/s worker should hurt: {:.1} vs {:.1}",
        rh.rate,
        ru.rate
    );
}
