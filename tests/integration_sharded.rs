//! The sharded threaded runtime's load-bearing guarantee: the shard count
//! is a pure deployment knob. For every shard count and under every fault
//! kind, the computed model is **bit-identical** to the fault-free
//! single-shard run — and the zero-copy buffer pool really does stop
//! allocating after warm-up.

use prophet::core::SchedulerKind;
use prophet::minidnn::Mlp;
use prophet::net::RetryPolicy;
use prophet::ps::threaded::{run_threaded_training, ThreadedConfig};
use prophet::sim::{Duration, FaultPlan, FaultSpec, SimTime};

/// Shard counts the matrix sweeps. The small model has 4 tensors, so 4
/// shards is the one-tensor-per-shard extreme.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn base_cfg(seed: u64, shards: usize) -> ThreadedConfig {
    let mut cfg = ThreadedConfig::small(3, SchedulerKind::Fifo);
    cfg.ps_shards = shards;
    cfg.seed = seed;
    cfg.global_batch = 48;
    cfg.iterations = 10;
    cfg
}

/// The oracle every cell is held to: same config, one shard, no faults.
fn fault_free_single_shard(seed: u64) -> Vec<Vec<f32>> {
    run_threaded_training(&base_cfg(seed, 1)).final_params
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(2),
        cap: Duration::from_millis(10),
        timeout: Duration::from_millis(40),
    }
}

#[test]
fn shard_count_never_changes_the_computation() {
    // Fault-free first: sharding only re-homes tensors; aggregation stays
    // in fixed worker order per tensor, and per-shard optimisers keep
    // per-tensor state, so every shard count must agree bitwise — for
    // every scheduling strategy.
    for kind in SchedulerKind::paper_lineup(100e6) {
        let label = kind.label();
        let mut oracle: Option<Vec<Vec<f32>>> = None;
        for shards in SHARD_COUNTS {
            let mut cfg = base_cfg(7, shards);
            cfg.scheduler = kind.clone();
            let r = run_threaded_training(&cfg);
            assert!(r.events_checked > 0, "{label}/{shards}: checker not wired");
            match &oracle {
                None => oracle = Some(r.final_params),
                Some(o) => assert_eq!(
                    &r.final_params, o,
                    "{label}: {shards} shards diverged from single-shard"
                ),
            }
        }
    }
}

/// The five fault kinds, each parameterised by the topology it must be
/// injected into (node ids shift with the shard count: node `s < shards`
/// is PS shard `s`, node `shards + w` is worker `w`).
fn plan_for(kind: &str, shards: usize) -> FaultPlan {
    let spec = match kind {
        // Crash the *last* shard so multi-shard runs exercise a non-zero
        // shard id end to end (epoch broadcast, targeted re-push).
        "shard_crash" => FaultSpec::ShardCrash {
            shard: shards - 1,
            at: SimTime::ZERO + Duration::from_millis(10),
            restart_after: Duration::from_millis(15),
        },
        // Window opens at t=0 so the first iteration is guaranteed to hit
        // it (no vacuous pass on a fast run).
        "worker_stall" => FaultSpec::WorkerStall {
            worker: 0,
            at: SimTime::ZERO,
            dur: Duration::from_millis(30),
        },
        "msg_loss" => FaultSpec::MsgLoss {
            rate: 0.3,
            at: SimTime::ZERO,
            dur: Duration::from_secs(60),
        },
        // Node 0 is PS shard 0 in every topology: the degrade/outage hits
        // every worker's transfers.
        "link_degrade" => FaultSpec::LinkDegrade {
            node: 0,
            at: SimTime::ZERO,
            factor: 0.3,
            dur: Duration::from_millis(40),
        },
        "link_down" => FaultSpec::LinkDown {
            node: 0,
            at: SimTime::ZERO,
            dur: Duration::from_millis(15),
        },
        other => panic!("unknown fault kind {other}"),
    };
    FaultPlan::new(vec![spec])
}

#[test]
fn every_fault_kind_is_bit_transparent_at_every_shard_count() {
    // The stress matrix: {fault kind} x {shard count} x {seed}, every cell
    // compared bitwise against the fault-free single-shard oracle for its
    // seed. Faults may cost wall clock; they may never change the model.
    for seed in [7u64, 1234] {
        let oracle = fault_free_single_shard(seed);
        for kind in [
            "shard_crash",
            "worker_stall",
            "msg_loss",
            "link_degrade",
            "link_down",
        ] {
            for shards in SHARD_COUNTS {
                let mut cfg = base_cfg(seed, shards);
                cfg.retry = fast_retry();
                cfg.fault_plan = plan_for(kind, shards);
                match kind {
                    // The timed crash needs a slow enough wire that the
                    // run is still in flight at t=10 ms.
                    "shard_crash" => cfg.link_bps = Some(5e5),
                    "link_degrade" => cfg.link_bps = Some(2e6),
                    _ => {}
                }
                let r = run_threaded_training(&cfg);
                assert!(
                    r.events_checked > 0,
                    "{kind}/{shards} shards/seed {seed}: checker not wired"
                );
                match kind {
                    "shard_crash" => assert!(
                        r.wall >= std::time::Duration::from_millis(25),
                        "{kind}/{shards}: 15 ms downtime missing from wall {:?}",
                        r.wall
                    ),
                    "worker_stall" => assert!(
                        r.wall >= std::time::Duration::from_millis(30),
                        "{kind}/{shards}: stall missing from wall {:?}",
                        r.wall
                    ),
                    "msg_loss" => {
                        assert!(r.messages_lost > 0, "{kind}/{shards}: nothing dropped");
                        assert!(r.retries > 0, "{kind}/{shards}: losses never retried");
                    }
                    "link_down" => assert!(
                        r.wall >= std::time::Duration::from_millis(15),
                        "{kind}/{shards}: outage missing from wall {:?}",
                        r.wall
                    ),
                    _ => {}
                }
                assert_eq!(
                    r.final_params, oracle,
                    "{kind}/{shards} shards/seed {seed}: fault changed the computed model"
                );
            }
        }
    }
}

#[test]
fn steady_state_push_path_allocates_nothing_after_warmup() {
    // The zero-copy contract, asserted through the pool counters: every
    // worker allocates exactly ONE arena for the whole run, every shard
    // allocates exactly one pull-cache buffer per owned tensor, and every
    // later iteration is served entirely from recycled storage. Doubling
    // the iteration count must leave the allocation count untouched.
    let n_tensors = Mlp::new(&ThreadedConfig::small(1, SchedulerKind::Fifo).widths, 0)
        .tensor_sizes()
        .len();
    for shards in SHARD_COUNTS {
        let mut cfg = ThreadedConfig::small(4, SchedulerKind::Fifo);
        cfg.ps_shards = shards;
        cfg.iterations = 30;
        let r = run_threaded_training(&cfg);
        let fixed = cfg.workers as u64 + n_tensors as u64;
        assert_eq!(
            r.arena_allocs, fixed,
            "{shards} shards: allocations are not flat in the iteration count"
        );
        assert_eq!(
            r.arena_recycles,
            (cfg.iterations - 1) * fixed,
            "{shards} shards: steady-state iterations not fully served from the pool"
        );

        let mut longer = cfg.clone();
        longer.iterations = 60;
        let r2 = run_threaded_training(&longer);
        assert_eq!(
            r2.arena_allocs, fixed,
            "{shards} shards: more iterations allocated more arenas"
        );
    }
}

#[test]
fn acks_are_batched_not_per_slice() {
    // Many small P3 partitions produce many push slices per iteration;
    // inbox-drain batching must acknowledge them in far fewer messages.
    // (Only runs with live fault machinery track acks, so inject a
    // zero-rate loss window to arm it without dropping anything.)
    let mut cfg = ThreadedConfig::small(
        2,
        SchedulerKind::P3 {
            partition_bytes: 1 << 8,
        },
    );
    cfg.iterations = 10;
    cfg.fault_plan = FaultPlan::new(vec![FaultSpec::MsgLoss {
        rate: 0.0,
        at: SimTime::ZERO,
        dur: Duration::from_secs(60),
    }]);
    let r = run_threaded_training(&cfg);
    assert_eq!(r.messages_lost, 0, "a zero-rate window dropped messages");
    // Every accepted slice is acked, so per-slice acking would produce
    // exactly one batch per slice: ceil(tensor_bytes / 256) summed over
    // the 4 tensors of the [8, 24, 4] model is 3 + 1 + 2 + 1 = 7 slices
    // per worker per iteration. Batch sizes depend on how many messages
    // pile up in the inbox between drains — under CPU contention drains
    // come smaller and more often — so the only load-independent claim
    // is strictly fewer batches than slices.
    let slices = cfg.iterations * cfg.workers as u64 * 7;
    assert!(
        r.ack_batches > 0,
        "armed fault machinery produced no ack batches"
    );
    assert!(
        r.ack_batches < slices,
        "acks are not batched: {} batches for {} slices",
        r.ack_batches,
        slices
    );
}

#[test]
fn armed_ack_path_stays_zero_alloc_in_steady_state() {
    // Arming the fault machinery (zero-rate loss window: acks tracked,
    // nothing actually dropped) turns on the ack-batch path and the
    // retry bookkeeping. Neither may cost arena allocations: acks ride
    // their own message type and retransmissions — never triggered here —
    // would re-slice the existing arena. The exact-counter contract of
    // the fault-free run must hold unchanged.
    let n_tensors = Mlp::new(&ThreadedConfig::small(1, SchedulerKind::Fifo).widths, 0)
        .tensor_sizes()
        .len();
    for shards in SHARD_COUNTS {
        let mut cfg = ThreadedConfig::small(4, SchedulerKind::Fifo);
        cfg.ps_shards = shards;
        cfg.iterations = 20;
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::MsgLoss {
            rate: 0.0,
            at: SimTime::ZERO,
            dur: Duration::from_secs(60),
        }]);
        let r = run_threaded_training(&cfg);
        assert_eq!(r.messages_lost, 0, "zero-rate window dropped messages");
        assert!(r.ack_batches > 0, "{shards} shards: ack path never armed");
        let fixed = cfg.workers as u64 + n_tensors as u64;
        assert_eq!(
            r.arena_allocs, fixed,
            "{shards} shards: armed ack path allocated beyond warm-up"
        );
        assert_eq!(
            r.arena_recycles,
            (cfg.iterations - 1) * fixed,
            "{shards} shards: armed steady state not fully pool-served"
        );
    }
}

#[test]
fn nack_retransmits_come_from_pooled_copies() {
    // Under an aggressive corruption window every tampered frame is a
    // *pooled copy* of the clean payload (the clean arena slice stays
    // untouched for the bit-exact retransmit), and every NACK-driven
    // retransmission is a fresh zero-copy slice of that same arena. The
    // arena counters must therefore stay the exact warm-up constant of a
    // fault-free run: corruption may never leak allocations into the
    // wire-buffer pool, no matter how many frames it damages.
    let n_tensors = Mlp::new(&ThreadedConfig::small(1, SchedulerKind::Fifo).widths, 0)
        .tensor_sizes()
        .len();
    let mut cfg = ThreadedConfig::small(3, SchedulerKind::Fifo);
    cfg.ps_shards = 2;
    cfg.iterations = 12;
    cfg.global_batch = 48;
    cfg.retry = fast_retry();
    cfg.fault_plan = FaultPlan::new(vec![FaultSpec::PayloadCorrupt {
        rate: 0.05,
        at: SimTime::ZERO,
        dur: Duration::from_secs(60),
    }]);
    let r = run_threaded_training(&cfg);
    assert!(
        r.corrupt_frames_detected > 0,
        "corruption window never damaged a frame — the assertion is vacuous"
    );
    let fixed = cfg.workers as u64 + n_tensors as u64;
    assert_eq!(
        r.arena_allocs, fixed,
        "corruption recovery allocated wire buffers outside the warm-up set"
    );
    // Recovery must also not starve the recycler: every steady-state
    // iteration still round-trips each arena through the pool.
    assert_eq!(
        r.arena_recycles,
        (cfg.iterations - 1) * fixed,
        "corruption recovery broke steady-state pool recycling"
    );
    // And the computation itself stays bit-transparent (the matrix test
    // covers this broadly; repeating it here ties it to the exact-alloc
    // claim on the same run shape).
    let clean = {
        let mut c = cfg.clone();
        c.fault_plan = FaultPlan::default();
        c.retry = RetryPolicy::paper_default();
        run_threaded_training(&c)
    };
    assert_eq!(
        r.final_params, clean.final_params,
        "corruption recovery changed the computed model"
    );
}

#[test]
fn sharded_runs_are_deterministic() {
    for shards in SHARD_COUNTS {
        let cfg = base_cfg(42, shards);
        let a = run_threaded_training(&cfg);
        let b = run_threaded_training(&cfg);
        assert_eq!(
            a.final_params, b.final_params,
            "{shards} shards: nondeterministic params"
        );
        assert_eq!(a.losses, b.losses, "{shards} shards: loss traces differ");
    }
}
