//! Shape-level assertions for the paper's headline claims. These are the
//! load-bearing statements EXPERIMENTS.md reports numbers for; each test
//! checks the *direction and rough magnitude*, not EC2-exact values.

use prophet::core::{detect_blocks, ProphetConfig, SchedulerKind};
use prophet::dnn::{GenerationModel, TrainingJob};
use prophet::net::TcpModel;
use prophet::ps::sim::{run_cluster, ClusterConfig};

/// Debug builds run the simulator ~20x slower than release; scale the
/// iteration counts down so `cargo test` stays pleasant while `cargo test
/// --release` exercises the full configurations. Assertions are
/// qualitative (orderings with margins), so fewer iterations only widen
/// the noise, never the semantics.
fn iters(n: u64) -> u64 {
    if cfg!(debug_assertions) {
        (n * 2 / 3).max(6)
    } else {
        n
    }
}

fn rate(model: &str, batch: u32, gbps: f64, kind: SchedulerKind, n: u64) -> f64 {
    let mut cfg = ClusterConfig::paper_cell(3, gbps, TrainingJob::paper_setup(model, batch), kind);
    cfg.warmup_iters = 4;
    run_cluster(&cfg, iters(n).max(cfg.warmup_iters + 2)).rate
}

fn prophet(gbps: f64) -> SchedulerKind {
    SchedulerKind::ProphetOracle(ProphetConfig::paper_default(gbps * 1e9 / 8.0))
}

/// §2.2 / Fig. 4: the stepwise pattern exists for every evaluated model
/// and is independent of the model (the paper: "independent of the DDNN
/// training frameworks, DNN models, datasets and hardware").
#[test]
fn stepwise_pattern_for_every_model() {
    for model in ["resnet18", "resnet50", "resnet152", "inception_v3"] {
        let job = TrainingJob::paper_setup(model, 64);
        let blocks = GenerationModel::blocks(job.generation_events());
        assert!(
            blocks.len() >= 3,
            "{model}: no staircase ({} blocks)",
            blocks.len()
        );
        assert!(
            blocks.len() * 2 < job.num_gradients(),
            "{model}: no aggregation visible"
        );
        // And the profiler recovers it from the offsets alone.
        let recovered = detect_blocks(&job.c_offsets());
        assert_eq!(recovered.len(), blocks.len(), "{model}: profiler mismatch");
    }
    // VGG19 is the paper's TensorFlow observation (Fig. 4 right): its 38
    // gradients group into a handful of coarse blocks under TF-style
    // bucketing. (VGG's per-layer backward is so long that MXNet-style
    // 40 ms flushing would release almost every tensor individually.)
    let vgg = TrainingJob::new(
        prophet::dnn::zoo::vgg19(),
        prophet::dnn::GpuSpec::m60_pair("vgg19"),
        64,
        GenerationModel::tensorflow_like(),
    );
    let blocks = GenerationModel::blocks(vgg.generation_events());
    assert!(
        (3..=10).contains(&blocks.len()),
        "vgg19/TF: expected a coarse staircase, got {} blocks",
        blocks.len()
    );
    // The final block ends at gradient 0, like the paper's {0, 1} block.
    assert!(blocks.last().unwrap().contains(&0));
}

/// Fig. 3(a): P3's training rate degrades as partitions shrink (the
/// per-partition blocking overhead).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under the debug profile; the release tier runs it"
)]
fn fig3a_small_partitions_hurt_p3() {
    let r_4m = rate(
        "resnet50",
        64,
        4.0,
        SchedulerKind::P3 {
            partition_bytes: 4 << 20,
        },
        8,
    );
    let r_512k = rate(
        "resnet50",
        64,
        4.0,
        SchedulerKind::P3 {
            partition_bytes: 512 << 10,
        },
        8,
    );
    assert!(
        r_512k < r_4m,
        "partition overhead not monotone: 4M {r_4m:.1}, 512k {r_512k:.1}"
    );
    // The really fine partitions explode the event count; keep that cell
    // for release runs (and `repro fig3a` covers the full sweep).
    if !cfg!(debug_assertions) {
        let r_128k = rate(
            "resnet50",
            64,
            4.0,
            SchedulerKind::P3 {
                partition_bytes: 128 << 10,
            },
            8,
        );
        assert!(r_128k < r_512k, "128k {r_128k:.1} vs 512k {r_512k:.1}");
        assert!(
            r_128k < r_4m * 0.7,
            "tiny partitions should hurt badly: {r_128k:.1} vs {r_4m:.1}"
        );
    }
}

/// Fig. 3(b): the ByteScheduler credit auto-tuner makes the rate fluctuate
/// and the credit wander over a wide range.
#[test]
fn fig3b_autotuner_fluctuates() {
    use prophet::core::{AutoTuneConfig, ByteSchedulerConfig};
    let kind = SchedulerKind::ByteScheduler(ByteSchedulerConfig {
        autotune: Some(AutoTuneConfig {
            interval_iters: 2,
            ..AutoTuneConfig::default()
        }),
        ..ByteSchedulerConfig::default()
    });
    let mut cfg = ClusterConfig::paper_cell(3, 3.0, TrainingJob::paper_setup("resnet50", 64), kind);
    cfg.warmup_iters = 1;
    // Not debug-scaled: the tuner needs enough measurement intervals for
    // its exploration to be visible.
    let r = run_cluster(&cfg, 24);
    let credits: Vec<u64> = r.credit_trace.iter().map(|&(_, c)| c).collect();
    let cmin = *credits.iter().min().unwrap();
    let cmax = *credits.iter().max().unwrap();
    assert!(cmax > cmin * 2, "credit barely moved: {cmin}..{cmax}");
    let times: Vec<f64> = r.iter_times.iter().map(|t| t.as_secs_f64()).collect();
    let tmin = times[2..].iter().cloned().fold(f64::INFINITY, f64::min);
    let tmax = times[2..].iter().cloned().fold(0.0, f64::max);
    assert!(
        tmax > tmin * 1.05,
        "auto-tuning should make iteration times fluctuate: {tmin:.3}..{tmax:.3}"
    );
}

/// Table 2's two endpoints: at 10 Gb/s everything converges; in the
/// constrained mid-band Prophet leads FIFO by a double-digit margin and
/// never trails P3.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under the debug profile; the release tier runs it"
)]
fn table2_shape() {
    // Mid-band.
    let fifo = rate("resnet50", 64, 4.0, SchedulerKind::Fifo, 10);
    let p3 = rate(
        "resnet50",
        64,
        4.0,
        SchedulerKind::P3 {
            partition_bytes: 4 << 20,
        },
        10,
    );
    let pr = rate("resnet50", 64, 4.0, prophet(4.0), 10);
    assert!(pr > fifo * 1.08, "prophet {pr:.1} vs fifo {fifo:.1}");
    assert!(pr >= p3 * 0.98, "prophet {pr:.1} vs p3 {p3:.1}");
    // Fast end: within a few percent of each other.
    let fifo10 = rate("resnet50", 64, 10.0, SchedulerKind::Fifo, 8);
    let pr10 = rate("resnet50", 64, 10.0, prophet(10.0), 8);
    assert!(
        (pr10 - fifo10).abs() / pr10 < 0.06,
        "no convergence at 10G: {pr10:.1} vs {fifo10:.1}"
    );
}

/// Table 3's trend: Prophet's edge over the baselines grows with batch
/// size (larger batches stretch the stepwise intervals).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under the debug profile; the release tier runs it"
)]
fn table3_batch_size_trend() {
    // Not debug-scaled: the trend between two close ratios needs the full
    // measurement window to be stable.
    let edge = |batch: u32| {
        let run = |kind: SchedulerKind| {
            let mut cfg = ClusterConfig::paper_cell(
                3,
                4.0,
                TrainingJob::paper_setup("resnet50", batch),
                kind,
            );
            cfg.warmup_iters = 4;
            run_cluster(&cfg, 12).rate
        };
        run(prophet(4.0)) / run(SchedulerKind::Fifo)
    };
    let e16 = edge(16);
    let e64 = edge(64);
    assert!(
        e64 > e16,
        "edge should grow with batch size: x{e16:.3} at 16 vs x{e64:.3} at 64"
    );
}

/// §5.2: Prophet lifts GPU utilisation substantially over FIFO in the
/// constrained regime (the paper reports 91.15% vs 67.85% against
/// ByteScheduler; we assert the conservative FIFO comparison).
#[test]
fn gpu_utilisation_gap() {
    let util = |kind: SchedulerKind| {
        let mut cfg =
            ClusterConfig::paper_cell(3, 4.0, TrainingJob::paper_setup("resnet50", 64), kind);
        cfg.warmup_iters = 2;
        run_cluster(&cfg, iters(12)).avg_gpu_util
    };
    let fifo = util(SchedulerKind::Fifo);
    let pr = util(prophet(4.0));
    assert!(
        pr > fifo + 0.05,
        "GPU util gap too small: prophet {:.1}% vs fifo {:.1}%",
        pr * 100.0,
        fifo * 100.0
    );
    assert!(
        pr > 0.85,
        "prophet util {:.1}% below the paper's ballpark",
        pr * 100.0
    );
}

/// Eq. (10)'s shape, end to end: effective bandwidth vanishes for tiny
/// messages and saturates for huge ones.
#[test]
fn eq10_effective_bandwidth_shape() {
    let m = TcpModel::EC2;
    let b = 1.25e9;
    assert!(m.effective_bandwidth(1e3, b) < 0.01 * b);
    assert!(m.effective_bandwidth(1e9, b) > 0.98 * b);
}

/// Fig. 12: with a sharded PS (BytePS-style co-location), per-worker rate
/// stays roughly flat from 2 to 8 workers.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow under the debug profile; the release tier runs it"
)]
fn fig12_scaling_roughly_flat() {
    let per_worker = |workers: usize| {
        let job = TrainingJob::paper_setup("resnet50", 64);
        let mut cfg = ClusterConfig::paper_cell(workers, 10.0, job, prophet(10.0));
        cfg.ps_shards = workers;
        cfg.warmup_iters = 2;
        run_cluster(&cfg, iters(6)).rate
    };
    let r2 = per_worker(2);
    let r8 = per_worker(8);
    assert!(
        r8 > r2 * 0.93,
        "per-worker rate collapsed with scale: {r2:.1} -> {r8:.1}"
    );
}
