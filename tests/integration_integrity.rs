//! End-to-end data integrity: silent payload corruption on the wire,
//! NaN-poisoned gradients, corrupted checkpoint snapshots — under the
//! **byte-level integrity contract**: detection plus targeted retransmit
//! plus verified multi-generation restore means no corrupt byte ever
//! reaches the accumulator or the restored parameters, so a run under any
//! corruption plan computes a model **bit-identical** to its fault-free
//! twin, on both engines.

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::net::RetryPolicy;
use prophet::ps::sim::{run_cluster, ClusterConfig};
use prophet::ps::threaded::{run_threaded_training, ThreadedConfig, ThreadedResult};
use prophet::ps::{
    check_corruption_plan, check_threaded_bit_identity, run_sim_checked, OracleBudget,
};
use prophet::sim::{ChaosGen, ChaosProfile, Duration, FaultPlan, FaultSpec, SimTime};

/// A retry policy tuned for test wall-clock, mirroring the fault tests.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(2),
        cap: Duration::from_millis(10),
        timeout: Duration::from_millis(40),
    }
}

/// Run `cfg` twice — once as given, once with an empty fault plan — and
/// assert the byte-level oracle: bit-identical final model.
fn assert_bit_identical_to_fault_free(cfg: &ThreadedConfig, label: &str) -> ThreadedResult {
    let corrupted = run_threaded_training(cfg);
    let mut clean_cfg = cfg.clone();
    clean_cfg.fault_plan = FaultPlan::empty();
    let clean = run_threaded_training(&clean_cfg);
    let violations = check_threaded_bit_identity(&clean, &corrupted);
    assert!(
        violations.is_empty(),
        "{label}: corruption reached the computed model: {violations:?}"
    );
    corrupted
}

/// A whole-run corruption window aggressive enough to hit pushes, pulls
/// and ack batches many times in a short run.
fn corruption_window(rate: f64) -> FaultSpec {
    FaultSpec::PayloadCorrupt {
        rate,
        at: SimTime::ZERO,
        dur: Duration::from_secs(60),
    }
}

#[test]
fn payload_corruption_recovers_bit_exactly_across_the_lineup() {
    // Every scheduling strategy under a lossy-integrity wire: damaged
    // frames must be detected by checksum verify (or the NaN guard),
    // NACKed, and retransmitted from clean storage until the model comes
    // out bit-identical to the fault-free twin.
    for kind in SchedulerKind::paper_lineup(100e6) {
        let label = kind.label();
        let mut cfg = ThreadedConfig::small(2, kind);
        cfg.iterations = 8;
        cfg.retry = fast_retry();
        cfg.fault_plan = FaultPlan::new(vec![corruption_window(0.10)]);
        let r = assert_bit_identical_to_fault_free(&cfg, label);
        assert!(
            r.corrupt_frames_detected + r.nan_quarantined > 0,
            "{label}: the corruption window never fired — vacuous run"
        );
        assert!(r.events_checked > 0, "{label}: checker not wired");
    }
}

#[test]
fn nack_retransmits_pay_for_corrupted_pushes() {
    // Small P3 partitions multiply the slice count, so a sustained window
    // reliably damages pushes (NACK + targeted retransmit), pulls
    // (re-request) and ack batches (deadline stretch) in one run.
    let mut cfg = ThreadedConfig::small(
        3,
        SchedulerKind::P3 {
            partition_bytes: 1 << 9,
        },
    );
    cfg.global_batch = 48;
    cfg.iterations = 10;
    cfg.retry = fast_retry();
    cfg.fault_plan = FaultPlan::new(vec![corruption_window(0.15)]);
    let r = assert_bit_identical_to_fault_free(&cfg, "p3-small-slices");
    assert!(r.corrupt_frames_detected > 0, "no frame ever failed verify");
    assert!(
        r.nack_retransmit_bytes > 0,
        "corrupted pushes were never NACK-retransmitted"
    );
    assert!(r.events_checked > 0, "checker not wired");
}

#[test]
fn corrupted_runs_compute_one_model() {
    // Wall-clock corruption windows make the *detection counts* timing-
    // dependent (like `messages_lost` under `MsgLoss`), but the computed
    // model never is: every damaged byte is recovered, so repeated runs —
    // whatever corruption pattern each one drew — agree bit for bit.
    let mut cfg = ThreadedConfig::small(2, SchedulerKind::Fifo);
    cfg.iterations = 8;
    cfg.retry = fast_retry();
    cfg.fault_plan = FaultPlan::new(vec![
        corruption_window(0.12),
        FaultSpec::CheckpointCorrupt {
            shard: 0,
            at_iter: 2,
        },
    ]);
    let a = run_threaded_training(&cfg);
    let b = run_threaded_training(&cfg);
    assert_eq!(a.final_params, b.final_params, "nondeterministic model");
    assert_eq!(a.losses, b.losses, "loss traces differ");
}

#[test]
fn restore_falls_back_past_a_corrupted_newest_snapshot() {
    // The forced-fallback leg of the acceptance: shard 0's newest snapshot
    // before its death is poisoned, so the restore must detect the bad
    // generation, fall back to the previous intact one, replay the longer
    // ledger suffix — and still hand the adopters a bit-exact model.
    let mut cfg = ThreadedConfig::small(3, SchedulerKind::Fifo);
    cfg.ps_shards = 2;
    cfg.global_batch = 48;
    cfg.iterations = 8;
    cfg.checkpoint_period = 4; // snapshots close iters 3 and 7
    cfg.fault_plan = FaultPlan::new(vec![
        FaultSpec::CheckpointCorrupt {
            shard: 0,
            at_iter: 2, // fires at the iter-3 snapshot: newest before death
        },
        FaultSpec::ShardFail {
            shard: 0,
            at_iter: 6,
        },
    ]);
    let r = assert_bit_identical_to_fault_free(&cfg, "forced-fallback");
    assert!(
        r.restore_fallbacks > 0,
        "the poisoned snapshot was never detected at restore"
    );
    assert!(
        r.fallback_depth >= r.restore_fallbacks,
        "every fallback skips at least one generation"
    );
    assert!(r.restore_bytes > 0, "shard death restored nothing");
    assert!(r.events_checked > 0, "checker not wired");
}

#[test]
fn deeper_retention_survives_repeated_checkpoint_corruption() {
    // With retention 3 the store keeps enough history that even when the
    // newest generation is poisoned the fallback never has to walk off the
    // end — and GC, which prefers evicting corrupt generations, never
    // collects the only intact one.
    let mut cfg = ThreadedConfig::small(2, SchedulerKind::Fifo);
    cfg.ps_shards = 2;
    cfg.iterations = 12;
    cfg.checkpoint_period = 2;
    cfg.checkpoint_retention = 3;
    cfg.fault_plan = FaultPlan::new(vec![
        FaultSpec::CheckpointCorrupt {
            shard: 1,
            at_iter: 10, // poisons the iter-9 snapshot: newest before death
        },
        FaultSpec::ShardFail {
            shard: 1,
            at_iter: 11,
        },
    ]);
    let r = assert_bit_identical_to_fault_free(&cfg, "retention-3");
    assert!(r.restore_fallbacks > 0, "fallback never exercised");
}

// ---------------------------------------------------------------------------
// Simulator: corruption chaos sweep under the integrity oracles
// ---------------------------------------------------------------------------

fn sim_cell(kind: SchedulerKind) -> ClusterConfig {
    let mut cfg =
        ClusterConfig::paper_cell(3, 10.0, TrainingJob::paper_setup("resnet18", 16), kind);
    cfg.ps_shards = 2;
    cfg.warmup_iters = 1;
    cfg.check_invariants = true;
    cfg
}

/// The acceptance sweep: corruption plans x the 4-scheduler lineup, every
/// plan run twice and judged by the safety/liveness/integrity-accounting/
/// deterministic-detection oracles, zero violations tolerated. Release
/// tier runs 200 plans per scheduler; the debug tier runs the same loop at
/// a smoke budget below.
fn corruption_sweep(plans_per_scheduler: usize) {
    let budget = OracleBudget::paper_default();
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label().to_string();
        let base = sim_cell(kind);
        let golden = run_cluster(&base, 6);
        let horizon = Duration::from_nanos(golden.duration.as_nanos());
        let profile = ChaosProfile::corruption(base.workers, base.ps_shards, horizon, 6);
        let mut gen = ChaosGen::new(0xC0DE);
        for i in 0..plans_per_scheduler {
            let plan = gen.next_plan(&profile);
            let mut corrupted = base.clone();
            corrupted.fault_plan = plan.clone();
            let outcome = run_sim_checked(&corrupted, 6);
            let rerun = run_sim_checked(&corrupted, 6);
            let verdict = check_corruption_plan(&golden, &outcome, &rerun, &budget);
            assert!(
                verdict.ok(),
                "{label}: plan {i} violated the integrity contract: {:?}\nplan: {:?}",
                verdict.violations,
                plan
            );
        }
    }
}

#[test]
fn corruption_sweep_smoke() {
    corruption_sweep(5);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-tier: 200 plans x 4 schedulers x 2 runs"
)]
fn corruption_sweep_full() {
    corruption_sweep(200);
}
