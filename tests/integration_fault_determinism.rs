//! The fault layer's two determinism contracts.
//!
//! 1. **An empty `FaultPlan` is inert**: the durations and iteration times
//!    below were captured on the commit *before* the fault layer landed —
//!    this file asserts the instrumented engine reproduces them to the
//!    nanosecond, for every scheduler in the paper lineup.
//! 2. **A non-empty plan is replayable**: the same plan plus the same seed
//!    reproduces the same run bit-for-bit, and every scheduler completes
//!    all iterations (no hang, no dropped gradient) under each fault class.

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};
use prophet::sim::{Duration, FaultPlan, FaultSpec, SimTime};

fn cell(kind: SchedulerKind) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cell(2, 10.0, TrainingJob::paper_setup("resnet18", 16), kind);
    c.warmup_iters = 1;
    c
}

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + Duration::from_millis(v)
}

/// `(label, total duration ns, per-iteration ns)` captured on a
/// fault-free engine build. Floats in the simulator are
/// IEEE-deterministic across debug and release, so exact equality is the
/// right assertion.
///
/// Provenance: originally captured on the commit before the fault layer
/// landed; re-captured (shifts of tens of ns per iteration) when the fluid
/// engine moved to fractional-residual completion predictions — the old
/// `remaining.ceil()` rounding quantised completions up to a whole byte.
/// The inertness contract is unchanged: both tests below compare
/// plan-free, empty-plan, and intensity-0 runs against this same table,
/// so they must all agree with each other to the nanosecond.
const GOLDEN: &[(&str, u64, [u64; 3])] = &[
    (
        "mxnet-fifo",
        426_122_152,
        [132_616_298, 131_769_018, 131_736_836],
    ),
    ("p3", 635_785_127, [201_428_944, 201_863_257, 202_492_529]),
    (
        "bytescheduler",
        361_216_402,
        [111_092_508, 109_969_958, 110_153_936],
    ),
    (
        "prophet-oracle",
        366_815_320,
        [112_979_927, 111_832_524, 112_002_869],
    ),
];

#[test]
fn empty_fault_plan_reproduces_pre_fault_layer_goldens() {
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label().to_string();
        let Some(&(_, duration, iters)) = GOLDEN.iter().find(|(l, _, _)| *l == label) else {
            panic!("no golden for scheduler {label}");
        };
        let r = run_cluster(&cell(kind), 3);
        assert_eq!(
            r.duration,
            SimTime::ZERO + Duration::from_nanos(duration),
            "{label}: total duration drifted — the fault layer is not inert"
        );
        let got: Vec<u64> = r.iter_times.iter().map(|d| d.as_nanos()).collect();
        assert_eq!(got, iters.to_vec(), "{label}: iteration times drifted");
        assert_eq!(r.fault_stats.retries, 0, "{label}");
        assert_eq!(r.fault_stats.flows_killed, 0, "{label}");
    }
}

#[test]
fn intensity_zero_chaos_profile_is_provably_inert() {
    // An intensity-0 profile generates `FaultPlan::empty()` without a single
    // RNG draw, so a chaos run configured with it must hit the engine's
    // fault-free fast path and reproduce the pre-fault-layer goldens to the
    // nanosecond — not merely "be statistically similar".
    use prophet::sim::{ChaosGen, ChaosProfile};
    let mut profile = ChaosProfile::for_cluster(2, 1, Duration::from_millis(500));
    profile.intensity = 0.0;
    let plan = ChaosGen::new(42).next_plan(&profile);
    assert_eq!(plan, FaultPlan::empty());
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label().to_string();
        let Some(&(_, duration, _)) = GOLDEN.iter().find(|(l, _, _)| *l == label) else {
            panic!("no golden for scheduler {label}");
        };
        let mut cfg = cell(kind);
        cfg.fault_plan = plan.clone();
        let r = run_cluster(&cfg, 3);
        assert_eq!(
            r.duration,
            SimTime::ZERO + Duration::from_nanos(duration),
            "{label}: an intensity-0 chaos plan perturbed the simulation"
        );
    }
}

fn storm() -> FaultPlan {
    FaultPlan::new(vec![
        FaultSpec::LinkDown {
            node: 2,
            at: ms(30),
            dur: Duration::from_millis(50),
        },
        FaultSpec::MsgLoss {
            rate: 0.15,
            at: ms(100),
            dur: Duration::from_millis(120),
        },
        FaultSpec::ShardCrash {
            shard: 0,
            at: ms(290),
            restart_after: Duration::from_millis(40),
        },
        FaultSpec::WorkerStall {
            worker: 0,
            at: ms(420),
            dur: Duration::from_millis(60),
        },
    ])
}

#[test]
fn same_plan_same_seed_same_trace() {
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label();
        let mut cfg = cell(kind.clone());
        cfg.fault_plan = storm();
        cfg.typed_trace = true;
        let a = run_cluster(&cfg, 4);
        let b = run_cluster(&cfg, 4);
        assert_eq!(a.iter_times, b.iter_times, "{label}: iteration times");
        assert_eq!(a.duration, b.duration, "{label}: duration");
        assert_eq!(a.fault_stats, b.fault_stats, "{label}: fault stats");
        assert_eq!(a.grad_spans, b.grad_spans, "{label}: typed spans");
    }
}

#[test]
fn every_scheduler_completes_under_each_fault_class() {
    let classes: Vec<(&str, FaultPlan)> = vec![
        (
            "link_down",
            FaultPlan::new(vec![FaultSpec::LinkDown {
                node: 2,
                at: ms(40),
                dur: Duration::from_millis(60),
            }]),
        ),
        (
            "link_degrade",
            FaultPlan::new(vec![FaultSpec::LinkDegrade {
                node: 0,
                at: ms(20),
                factor: 0.2,
                dur: Duration::from_millis(300),
            }]),
        ),
        (
            "msg_loss",
            FaultPlan::new(vec![FaultSpec::MsgLoss {
                rate: 0.2,
                at: ms(0),
                dur: Duration::from_millis(200),
            }]),
        ),
        (
            "shard_crash",
            FaultPlan::new(vec![FaultSpec::ShardCrash {
                shard: 0,
                at: ms(45),
                restart_after: Duration::from_millis(50),
            }]),
        ),
        (
            "worker_stall",
            FaultPlan::new(vec![FaultSpec::WorkerStall {
                worker: 1,
                at: ms(15),
                dur: Duration::from_millis(120),
            }]),
        ),
    ];
    for (class, plan) in &classes {
        for kind in SchedulerKind::paper_lineup(1.25e9) {
            let label = kind.label().to_string();
            let mut cfg = cell(kind);
            cfg.fault_plan = plan.clone();
            let r = run_cluster(&cfg, 3);
            assert_eq!(
                r.iter_times.len(),
                3,
                "{label} under {class}: incomplete run"
            );
            assert!(
                r.fault_stats.retries == 0 || r.fault_stats.recoveries > 0,
                "{label} under {class}: retried but never recovered: {:?}",
                r.fault_stats
            );
        }
    }
}
