//! Chaos search end-to-end: generator → oracles → shrinker, plus the two
//! crafted-plan directions the oracle deliberately leaves to dedicated
//! tests — "Prophet's degraded mode actually engages" and "the adapted
//! retry timeout prevents degrade-induced retry thrash".

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};
use prophet::ps::{check_plan, run_sim_checked, OracleBudget};
use prophet::sim::{
    plan_to_rust, shrink, ChaosGen, ChaosProfile, Duration, FaultPlan, FaultSpec, SimTime,
};

fn cell(kind: SchedulerKind) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cell(2, 10.0, TrainingJob::paper_setup("resnet18", 16), kind);
    c.warmup_iters = 1;
    c.check_invariants = true;
    c
}

/// Golden run + matching chaos profile for a scheduler: the horizon is the
/// fault-free duration, so every generated window can land mid-run.
fn search_setup(kind: SchedulerKind) -> (ClusterConfig, prophet::ps::sim::RunResult, ChaosProfile) {
    let base = cell(kind);
    let golden = run_cluster(&base, 3);
    let profile = ChaosProfile::for_cluster(
        base.workers,
        base.ps_shards,
        Duration::from_nanos(golden.duration.as_nanos()),
    );
    (base, golden, profile)
}

fn judge(base: &ClusterConfig, golden: &prophet::ps::sim::RunResult, plan: &FaultPlan) -> bool {
    let mut faulted = base.clone();
    faulted.fault_plan = plan.clone();
    let outcome = run_sim_checked(&faulted, 3);
    check_plan(golden, &outcome, plan, &OracleBudget::paper_default()).ok()
}

#[test]
fn chaos_smoke_is_violation_free() {
    // The debug-tier smoke: a handful of generated plans against the full
    // oracle set on FIFO. The release-tier sweep covers the whole lineup.
    let (base, golden, profile) = search_setup(SchedulerKind::Fifo);
    let mut gen = ChaosGen::new(42);
    for i in 0..4 {
        let plan = gen.next_plan(&profile);
        assert!(
            judge(&base, &golden, &plan),
            "plan {i} violated an oracle:\n{}",
            plan_to_rust(&plan)
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-tier: full lineup x 25 plans")]
fn chaos_sweep_full_lineup_is_violation_free() {
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label();
        let (base, golden, profile) = search_setup(kind.clone());
        let mut gen = ChaosGen::new(42);
        for i in 0..25 {
            let plan = gen.next_plan(&profile);
            assert!(
                judge(&base, &golden, &plan),
                "{label}: plan {i} violated an oracle:\n{}",
                plan_to_rust(&plan)
            );
        }
    }
}

#[test]
fn deliberately_broken_budget_demonstrates_the_shrinker() {
    // Tighten liveness to 1.0x — any slowdown at all is now a "violation" —
    // and feed the first multi-fault plan that trips it to the shrinker.
    // This is the end-to-end path a real chaos finding takes.
    let (base, golden, profile) = search_setup(SchedulerKind::Fifo);
    let broken = OracleBudget {
        liveness_multiple: 1.0,
        ..OracleBudget::paper_default()
    };
    let fails = |plan: &FaultPlan| {
        let mut faulted = base.clone();
        faulted.fault_plan = plan.clone();
        let outcome = run_sim_checked(&faulted, 3);
        !check_plan(&golden, &outcome, plan, &broken).ok()
    };
    let mut gen = ChaosGen::new(42);
    let plan = (0..64)
        .map(|_| gen.next_plan(&profile))
        .find(|p| p.faults.len() >= 2 && fails(p))
        .expect("no multi-fault plan tripped a 1.0x liveness budget in 64 draws");

    let small = shrink(&plan, fails);
    assert!(
        small.faults.len() < plan.faults.len(),
        "shrinker failed to drop any of {} specs: {small:?}",
        plan.faults.len()
    );
    assert!(fails(&small), "shrunk plan no longer reproduces");
    // Deterministic: the same plan and predicate shrink to the same output.
    assert_eq!(small, shrink(&plan, fails));
    // And the reproducer renders as pinned-test source.
    let src = plan_to_rust(&small);
    assert!(src.contains("FaultSpec::"), "not copy-pasteable: {src}");
}

#[test]
fn prophet_enters_and_exits_degraded_mode_under_a_fault_burst() {
    // The oracle only rejects *stuck* degraded mode — a gentle plan that
    // never trips it also passes. This crafted plan checks the other
    // direction: killed transfers during planned mode must put Prophet into
    // degraded mode, and stable post-fault bandwidth estimates must bring
    // it back out.
    // prophet-oracle is the last lineup entry. One monitor window ≈ one
    // iteration (~112 ms), so each estimate averages a full push phase.
    // Shorter windows beat against the iteration period and the estimates
    // never stabilize within the 10% re-plan tolerance — by design, that
    // keeps Prophet degraded.
    let lineup = SchedulerKind::paper_lineup(1.25e9);
    let mut cfg = cell(lineup.into_iter().last().unwrap());
    cfg.monitor_period = Duration::from_millis(115);
    cfg.fault_plan = FaultPlan::new(vec![FaultSpec::LinkDown {
        // Worker 0's link (the transition log samples worker 0's scheduler).
        node: 1,
        at: SimTime::ZERO + Duration::from_millis(150),
        dur: Duration::from_millis(60),
    }]);
    let r = run_cluster(&cfg, 10);
    assert!(
        r.degraded_transitions.iter().any(|&(_, d)| d),
        "killed transfers never put Prophet in degraded mode: {:?}",
        r.degraded_transitions
    );
    assert_eq!(
        r.degraded_transitions.last().map(|&(_, d)| d),
        Some(false),
        "Prophet never recovered planned mode: {:?}",
        r.degraded_transitions
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-tier: ~30 simulated seconds of VGG19"
)]
fn adapted_retry_timeout_prevents_degrade_induced_thrash() {
    // VGG19's fc6 is ~411 MB; at 10 Gb/s x a 0.02 degrade factor the push
    // takes ~16 s — far past the flat 5 s ack deadline. Without adaptation
    // every send times out, is killed, and retries against the same slow
    // link: pure thrash with the wire never at fault. The link-adapted
    // deadline (satellite of the chaos PR) sizes itself to the worst-case
    // whole-tensor transfer and rides the window out.
    let mk = |adapt: bool| {
        let mut c = ClusterConfig::paper_cell(
            2,
            10.0,
            TrainingJob::paper_setup("vgg19", 16),
            SchedulerKind::Fifo,
        );
        c.warmup_iters = 1;
        c.adapt_retry_timeout = adapt;
        c.fault_plan = FaultPlan::new(vec![FaultSpec::LinkDegrade {
            node: 2,
            at: SimTime::ZERO + Duration::from_millis(100),
            factor: 0.02,
            dur: Duration::from_secs(30),
        }]);
        c
    };
    let thrash = run_cluster(&mk(false), 2);
    assert!(
        thrash.fault_stats.retries > 0,
        "flat 5 s timeout should thrash on a 16 s transfer: {:?}",
        thrash.fault_stats
    );
    let adapted = run_cluster(&mk(true), 2);
    assert_eq!(
        adapted.fault_stats.retries, 0,
        "adapted deadline still killed healthy-but-slow transfers: {:?}",
        adapted.fault_stats
    );
    assert!(
        adapted.duration < thrash.duration,
        "not thrashing should finish sooner: {:?} vs {:?}",
        adapted.duration,
        thrash.duration
    );
}
