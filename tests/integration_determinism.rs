//! Determinism of the simulation stack: identical seeds reproduce entire
//! runs bit-for-bit; different seeds genuinely perturb them.

use prophet::core::{ProphetConfig, SchedulerKind};
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};

fn cfg(seed: u64, kind: SchedulerKind) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cell(3, 4.0, TrainingJob::paper_setup("resnet18", 32), kind);
    c.seed = seed;
    c
}

#[test]
fn identical_seeds_identical_runs() {
    for kind in SchedulerKind::paper_lineup(0.5e9) {
        let label = kind.label();
        let a = run_cluster(&cfg(7, kind.clone()), 5);
        let b = run_cluster(&cfg(7, kind), 5);
        assert_eq!(a.iter_times, b.iter_times, "{label}: iteration times");
        assert_eq!(a.duration, b.duration, "{label}: total duration");
        assert_eq!(a.gpu_util, b.gpu_util, "{label}: GPU series");
        assert_eq!(a.net_throughput, b.net_throughput, "{label}: net series");
        for (la, lb) in a.transfer_logs.iter().zip(&b.transfer_logs) {
            assert_eq!(la, lb, "{label}: transfer logs");
        }
    }
}

#[test]
fn different_seeds_different_runs() {
    let a = run_cluster(&cfg(1, SchedulerKind::Fifo), 5);
    let b = run_cluster(&cfg(2, SchedulerKind::Fifo), 5);
    assert_ne!(a.iter_times, b.iter_times, "seed had no effect");
}

#[test]
fn zero_jitter_makes_workers_symmetric() {
    let mut c = cfg(
        3,
        SchedulerKind::ProphetOracle(ProphetConfig::paper_default(0.5e9)),
    );
    c.compute_jitter = 0.0;
    let r = run_cluster(&c, 4);
    // With no jitter all workers march in lockstep: iteration times are
    // identical across iterations too (steady state from iteration 1).
    let t1 = r.iter_times[1];
    for &t in &r.iter_times[2..] {
        let rel = (t.as_secs_f64() - t1.as_secs_f64()).abs() / t1.as_secs_f64();
        assert!(
            rel < 1e-6,
            "jitter-free run not periodic: {:?}",
            r.iter_times
        );
    }
}

#[test]
fn jitter_perturbs_iteration_times() {
    let mut c = cfg(3, SchedulerKind::Fifo);
    c.compute_jitter = 0.05;
    let r = run_cluster(&c, 6);
    let t1 = r.iter_times[1].as_secs_f64();
    let spread = r.iter_times[1..]
        .iter()
        .map(|t| (t.as_secs_f64() - t1).abs() / t1)
        .fold(0.0f64, f64::max);
    assert!(spread > 0.005, "5% jitter produced no spread");
}
