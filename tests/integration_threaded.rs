//! The threaded PS runtime's two load-bearing guarantees, across every
//! scheduling strategy: (1) distributed training computes the same model
//! as single-process training; (2) runs are deterministic despite real
//! threads.

use prophet::core::SchedulerKind;
use prophet::minidnn::{Adam, Dataset, Mlp, Sgd};
use prophet::net::RetryPolicy;
use prophet::ps::threaded::{run_threaded_training, PsOptimizer, ThreadedConfig};
use prophet::sim::{Duration, FaultPlan, FaultSpec, SimTime};

/// Single-process reference: whole-batch training with the same PS-side
/// optimiser placement (gradients averaged, SGD with momentum applied to a
/// central copy).
fn reference_params(cfg: &ThreadedConfig) -> Vec<Vec<f32>> {
    let features = cfg.widths[0];
    let classes = *cfg.widths.last().unwrap();
    let data = Dataset::blobs(cfg.samples, features, classes, cfg.noise, cfg.seed);
    let model = Mlp::new(&cfg.widths, cfg.seed ^ 0xABCD);
    enum Opt {
        Sgd(Sgd),
        Adam(Adam),
    }
    let mut opt = match cfg.optimizer {
        PsOptimizer::Sgd { momentum } => {
            Opt::Sgd(Sgd::new(cfg.lr, momentum, &model.tensor_sizes()))
        }
        PsOptimizer::Adam => Opt::Adam(Adam::new(cfg.lr, &model.tensor_sizes())),
    };
    let mut params: Vec<Vec<f32>> = model.param_slices().iter().map(|p| p.to_vec()).collect();
    for iter in 0..cfg.iterations {
        // The threaded runtime averages per-shard mean gradients; with
        // equal shards that is NOT identical in f32 to the whole-batch
        // mean, so the reference replicates the sharded computation.
        let per = cfg.global_batch / cfg.workers;
        let mut acc: Vec<Vec<f32>> = model.tensor_sizes().iter().map(|&n| vec![0.0; n]).collect();
        for w in 0..cfg.workers {
            let lo = ((iter as usize * cfg.global_batch) + w * per) % data.len();
            let hi = (lo + per).min(data.len()).max(lo + 1);
            let (x, labels) = data.batch(lo, hi);
            let mut shard_model = Mlp::new(&cfg.widths, cfg.seed ^ 0xABCD);
            for (id, p) in params.iter().enumerate() {
                shard_model.set_param(id, p);
            }
            shard_model.zero_grads();
            let _ = shard_model.forward_backward(&x, &labels);
            for (a, g) in acc.iter_mut().zip(shard_model.grad_slices()) {
                for (av, &gv) in a.iter_mut().zip(g) {
                    *av += gv;
                }
            }
        }
        let inv = 1.0 / cfg.workers as f32;
        for (id, a) in acc.iter_mut().enumerate() {
            for v in a.iter_mut() {
                *v *= inv;
            }
            match &mut opt {
                Opt::Sgd(o) => o.step(id, &mut params[id], a),
                Opt::Adam(o) => o.step(id, &mut params[id], a),
            }
        }
    }
    params
}

#[test]
fn threaded_training_matches_single_process_bitwise() {
    for kind in SchedulerKind::paper_lineup(100e6) {
        let label = kind.label();
        let mut cfg = ThreadedConfig::small(3, kind);
        cfg.global_batch = 48;
        cfg.iterations = 8;
        let result = run_threaded_training(&cfg);
        let reference = reference_params(&cfg);
        assert_eq!(
            result.final_params, reference,
            "{label}: distributed result diverged from single-process"
        );
    }
}

#[test]
fn threaded_runs_are_deterministic() {
    for kind in SchedulerKind::paper_lineup(100e6) {
        let label = kind.label();
        let cfg = ThreadedConfig::small(4, kind);
        let a = run_threaded_training(&cfg);
        let b = run_threaded_training(&cfg);
        assert_eq!(a.final_params, b.final_params, "{label}: nondeterministic");
        assert_eq!(a.losses, b.losses, "{label}: loss traces differ");
    }
}

#[test]
fn adam_on_the_ps_matches_reference_and_learns() {
    let mut cfg = ThreadedConfig::small(3, SchedulerKind::Fifo);
    cfg.global_batch = 48;
    cfg.iterations = 25;
    cfg.lr = 0.02;
    cfg.optimizer = PsOptimizer::Adam;
    let result = run_threaded_training(&cfg);
    assert_eq!(
        result.final_params,
        reference_params(&cfg),
        "Adam-on-PS diverged from single-process Adam"
    );
    assert!(
        result.losses.last().unwrap() < &(result.losses[0] * 0.5),
        "Adam failed to learn: {:?}",
        result.losses
    );
}

#[test]
fn threaded_training_learns() {
    let mut cfg = ThreadedConfig::small(4, SchedulerKind::Fifo);
    cfg.iterations = 40;
    let r = run_threaded_training(&cfg);
    assert!(
        r.accuracy > 0.9,
        "distributed training failed to learn: accuracy {:.3}",
        r.accuracy
    );
    assert!(r.losses.last().unwrap() < &(r.losses[0] * 0.3));
}

#[test]
fn rate_limited_link_slows_wall_clock_not_results() {
    let kind = || SchedulerKind::P3 {
        partition_bytes: 1 << 10, // many small partitions: stress the wire
    };
    let fast = run_threaded_training(&ThreadedConfig::small(2, kind()));
    let mut slow_cfg = ThreadedConfig::small(2, kind());
    slow_cfg.link_bps = Some(2e6); // 2 MB/s emulated links
    let slow = run_threaded_training(&slow_cfg);
    assert_eq!(
        fast.final_params, slow.final_params,
        "bandwidth emulation changed the computation"
    );
    assert!(
        slow.wall > fast.wall,
        "throttled run should take longer: {:?} vs {:?}",
        slow.wall,
        fast.wall
    );
}

#[test]
fn invariant_checker_is_wired_into_threaded_runs() {
    let cfg = ThreadedConfig::small(2, SchedulerKind::Fifo);
    assert!(cfg.check_invariants, "checking should be on by default");
    let r = run_threaded_training(&cfg);
    assert!(
        r.events_checked > 0,
        "no typed events reached the invariant checker"
    );
    assert_eq!(r.retries, 0, "retries without any injected fault");
}

#[test]
fn injected_ps_restart_recovers_without_corrupting_training() {
    // A PS crash-restart mid-run wipes in-flight aggregation state; the
    // epoch protocol must re-deliver every lost gradient, and because the
    // replayed bytes are identical, the final model must be bit-identical
    // to an undisturbed run.
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::P3 {
            partition_bytes: 1 << 10, // many partitions: crash lands mid-tensor
        },
    ] {
        let label = kind.label();
        let mut cfg = ThreadedConfig::small(3, kind);
        cfg.global_batch = 48;
        cfg.iterations = 8;
        cfg.ps_restart_at_iter = Some(3);
        let crashed = run_threaded_training(&cfg);
        assert!(
            crashed.retries > 0,
            "{label}: restart at iteration 3 caused no re-pushes"
        );
        assert!(crashed.events_checked > 0, "{label}: checker not wired");
        assert_eq!(
            crashed.final_params,
            reference_params(&cfg),
            "{label}: crash recovery changed the computed model"
        );
    }
}

/// A retry policy tuned for test wall-clock: losses are detected in tens of
/// milliseconds instead of the production 5 s ack timeout.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(2),
        cap: Duration::from_millis(10),
        timeout: Duration::from_millis(40),
    }
}

#[test]
fn message_loss_is_retried_until_params_match() {
    // A lossy wire for the entire run: every dropped push must be detected
    // by the ack timeout and retransmitted until the PS has the full
    // gradient. Because the replayed bytes are identical and aggregation is
    // order-independent within a barrier, the model must come out
    // bit-identical to a loss-free run.
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::P3 {
            partition_bytes: 1 << 9, // many small slices: more doom draws
        },
    ] {
        let label = kind.label();
        let mut cfg = ThreadedConfig::small(2, kind);
        cfg.iterations = 8;
        cfg.retry = fast_retry();
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec::MsgLoss {
            rate: 0.3,
            at: SimTime::ZERO,
            dur: Duration::from_secs(60),
        }]);
        let lossy = run_threaded_training(&cfg);
        assert!(lossy.messages_lost > 0, "{label}: no pushes were dropped");
        assert!(lossy.retries > 0, "{label}: losses never retried");
        assert!(lossy.events_checked > 0, "{label}: checker not wired");
        assert_eq!(
            lossy.final_params,
            reference_params(&cfg),
            "{label}: message loss corrupted the computed model"
        );
    }
}

#[test]
fn timed_shard_crash_recovers_bit_identically() {
    // A wall-clock-triggered PS crash (the plan-driven flavour, as opposed
    // to the iteration-triggered `ps_restart_at_iter`): the link is slowed
    // so the run is long enough for the crash to land mid-training.
    let mut cfg = ThreadedConfig::small(2, SchedulerKind::Fifo);
    cfg.link_bps = Some(5e5); // ~5 ms of wire per iteration
    cfg.retry = fast_retry();
    let restart_after = Duration::from_millis(15);
    cfg.fault_plan = FaultPlan::new(vec![FaultSpec::ShardCrash {
        shard: 0,
        at: SimTime::ZERO + Duration::from_millis(10),
        restart_after,
    }]);
    let crashed = run_threaded_training(&cfg);
    assert!(
        crashed.wall >= std::time::Duration::from_millis(25),
        "crash downtime should show up in wall clock: {:?}",
        crashed.wall
    );
    assert!(crashed.events_checked > 0, "checker not wired");
    assert_eq!(
        crashed.final_params,
        reference_params(&cfg),
        "timed crash recovery changed the computed model"
    );
}

#[test]
fn stalls_and_link_faults_slow_the_run_not_the_result() {
    // The remaining fault kinds in one storm: a worker pause, a degraded
    // window on the other worker's link, and a full outage on the PS link.
    // None of them may change what is computed.
    let mut cfg = ThreadedConfig::small(2, SchedulerKind::Fifo);
    cfg.iterations = 12;
    cfg.link_bps = Some(2e6);
    cfg.retry = fast_retry();
    cfg.fault_plan = FaultPlan::new(vec![
        FaultSpec::WorkerStall {
            worker: 0,
            at: SimTime::ZERO + Duration::from_millis(5),
            dur: Duration::from_millis(40),
        },
        FaultSpec::LinkDegrade {
            node: 2, // worker 1's link
            at: SimTime::ZERO + Duration::from_millis(10),
            factor: 0.3,
            dur: Duration::from_millis(50),
        },
        FaultSpec::LinkDown {
            node: 0, // the PS link freezes every sender
            at: SimTime::ZERO + Duration::from_millis(70),
            dur: Duration::from_millis(20),
        },
    ]);
    let faulted = run_threaded_training(&cfg);
    assert!(
        faulted.wall >= std::time::Duration::from_millis(45),
        "a 40 ms stall must show up in wall clock: {:?}",
        faulted.wall
    );
    assert!(faulted.events_checked > 0, "checker not wired");
    assert_eq!(
        faulted.final_params,
        reference_params(&cfg),
        "stall/link faults changed the computed model"
    );
}

#[test]
fn pushed_bytes_match_model_volume() {
    let mut cfg = ThreadedConfig::small(3, SchedulerKind::Fifo);
    cfg.global_batch = 48; // divisible by 3 workers
    let model = Mlp::new(&cfg.widths, 0);
    let per_iter: u64 = model.tensor_sizes().iter().map(|&n| n as u64 * 4).sum();
    let r = run_threaded_training(&cfg);
    assert_eq!(
        r.bytes_pushed,
        per_iter * cfg.iterations * cfg.workers as u64,
        "gradient bytes on the wire do not match the model"
    );
}
