//! Deterministic regression test for the proptest counterexample recorded in
//! `tests/prop_cross_crate.proptest-regressions`:
//!
//! ```text
//! cc 7e1919dd... # shrinks to kind_idx = 0, gbps = 6.626115377326036, batch_idx = 2, seed = 0
//! ```
//!
//! The property-based suite samples the cell space, so the exact failing cell
//! depends on the runner's seeding. This test pins the historical
//! counterexample directly — Fifo scheduler, 6.626 Gbps, batch 64, seed 0 —
//! and re-checks every assertion from `any_cell_is_well_formed` on it.

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig, RunResult};
use prophet::sim::{Duration, FaultPlan, FaultSpec, SimTime};

#[test]
fn pinned_fifo_cell_is_well_formed() {
    let gbps = 6.626115377326036_f64;
    let batch = 64u32;
    let seed = 0u64;

    let job = TrainingJob::paper_setup("resnet18", batch);
    let ceiling = job.compute_rate_ceiling();
    let n = job.num_gradients();
    let kind = SchedulerKind::paper_lineup(1e9)[0].clone();
    assert!(matches!(kind, SchedulerKind::Fifo));

    let mut cfg = ClusterConfig::paper_cell(2, gbps, job, kind);
    cfg.seed = seed;
    cfg.warmup_iters = 1;
    let r = run_cluster(&cfg, 3);

    assert_eq!(r.iter_times.len(), 3);
    assert!(r.rate > 0.0);
    assert!(
        r.rate <= ceiling * 1.10,
        "rate {} > ceiling {}",
        r.rate,
        ceiling
    );
    for logs in &r.transfer_logs {
        assert_eq!(logs.len(), n);
        for log in logs {
            assert!(
                log.ready <= log.push_start,
                "grad {}: ready {:?} > push_start {:?}",
                log.grad,
                log.ready,
                log.push_start
            );
            assert!(
                log.push_start < log.push_end,
                "grad {}: push_start {:?} >= push_end {:?}",
                log.grad,
                log.push_start,
                log.push_end
            );
            assert!(
                log.push_end <= log.pull_end,
                "grad {}: push_end {:?} > pull_end {:?}",
                log.grad,
                log.push_end,
                log.pull_end
            );
            assert!(
                log.pull_start <= log.pull_end,
                "grad {}: pull_start {:?} > pull_end {:?}",
                log.grad,
                log.pull_start,
                log.pull_end
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-path counterexamples, pinned.
//
// These cells tripped engine bugs while the fault layer was being built; each
// is pinned with the exact plan that exposed it so a regression reproduces
// deterministically instead of depending on the property suite's sampling.
// ---------------------------------------------------------------------------

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + Duration::from_millis(v)
}

fn faulted_cell(kind: SchedulerKind, plan: FaultPlan) -> RunResult {
    let mut cfg = ClusterConfig::paper_cell(
        2,
        6.626115377326036,
        TrainingJob::paper_setup("resnet18", 64),
        kind,
    );
    cfg.seed = 0;
    cfg.warmup_iters = 1;
    cfg.fault_plan = plan;
    run_cluster(&cfg, 3)
}

/// A shard crash landing mid-push must both kill the in-flight flow AND
/// synthesise replays for already-aggregated slices the crash wiped. The
/// original bug: the killed slice and the voided aggregation state each
/// emitted their own `RetryAttempt` for the same gradient, which the
/// invariant checker rejects as non-consecutive retry numbering.
#[test]
fn pinned_mid_push_shard_crash_cell() {
    let plan = FaultPlan::new(vec![FaultSpec::ShardCrash {
        shard: 0,
        at: ms(55),
        restart_after: Duration::from_millis(30),
    }]);
    let kind = SchedulerKind::paper_lineup(1e9)[0].clone();
    let a = faulted_cell(kind.clone(), plan.clone());
    assert_eq!(a.iter_times.len(), 3, "crash run did not complete");
    assert!(
        a.fault_stats.flows_killed > 0,
        "crash at 55 ms should land mid-push: {:?}",
        a.fault_stats
    );
    assert!(
        a.fault_stats.replays > 0,
        "crash should wipe aggregated slices and replay them: {:?}",
        a.fault_stats
    );
    assert!(a.fault_stats.recoveries > 0, "{:?}", a.fault_stats);
    // Transfer logs stay well-formed through the retry/replay path.
    for logs in &a.transfer_logs {
        for log in logs {
            assert!(log.ready <= log.push_start);
            assert!(log.push_start < log.push_end);
            assert!(log.push_end <= log.pull_end);
            assert!(log.pull_start <= log.pull_end);
        }
    }
    let b = faulted_cell(kind, plan);
    assert_eq!(
        a.iter_times, b.iter_times,
        "crash recovery nondeterministic"
    );
    assert_eq!(a.duration, b.duration);
    assert_eq!(a.fault_stats, b.fault_stats);
}

/// A link failure overlapping a shard crash: the same message can be
/// killed by the link going down and then have its lane re-kicked while
/// the shard is still dark. The original bug: the re-kicked lane started a
/// flow towards the downed shard, which then dangled past the end of the
/// run and tripped the checker's open-flow accounting.
#[test]
fn pinned_overlapping_link_down_and_shard_crash() {
    let plan = FaultPlan::new(vec![
        FaultSpec::LinkDown {
            node: 2,
            at: ms(25),
            dur: Duration::from_millis(40),
        },
        FaultSpec::ShardCrash {
            shard: 0,
            at: ms(35),
            restart_after: Duration::from_millis(45),
        },
    ]);
    for kind in SchedulerKind::paper_lineup(1e9) {
        let label = kind.label().to_string();
        let r = faulted_cell(kind, plan.clone());
        assert_eq!(r.iter_times.len(), 3, "{label}: hung under overlap");
        assert!(
            r.fault_stats.retries == 0 || r.fault_stats.recoveries > 0,
            "{label}: dropped gradient — {:?}",
            r.fault_stats
        );
        assert!(
            r.fault_stats.recoveries <= r.fault_stats.retries,
            "{label}: {:?}",
            r.fault_stats
        );
    }
}
