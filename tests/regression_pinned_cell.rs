//! Deterministic regression test for the proptest counterexample recorded in
//! `tests/prop_cross_crate.proptest-regressions`:
//!
//! ```text
//! cc 7e1919dd... # shrinks to kind_idx = 0, gbps = 6.626115377326036, batch_idx = 2, seed = 0
//! ```
//!
//! The property-based suite samples the cell space, so the exact failing cell
//! depends on the runner's seeding. This test pins the historical
//! counterexample directly — Fifo scheduler, 6.626 Gbps, batch 64, seed 0 —
//! and re-checks every assertion from `any_cell_is_well_formed` on it.

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};

#[test]
fn pinned_fifo_cell_is_well_formed() {
    let gbps = 6.626115377326036_f64;
    let batch = 64u32;
    let seed = 0u64;

    let job = TrainingJob::paper_setup("resnet18", batch);
    let ceiling = job.compute_rate_ceiling();
    let n = job.num_gradients();
    let kind = SchedulerKind::paper_lineup(1e9)[0].clone();
    assert!(matches!(kind, SchedulerKind::Fifo));

    let mut cfg = ClusterConfig::paper_cell(2, gbps, job, kind);
    cfg.seed = seed;
    cfg.warmup_iters = 1;
    let r = run_cluster(&cfg, 3);

    assert_eq!(r.iter_times.len(), 3);
    assert!(r.rate > 0.0);
    assert!(
        r.rate <= ceiling * 1.10,
        "rate {} > ceiling {}",
        r.rate,
        ceiling
    );
    for logs in &r.transfer_logs {
        assert_eq!(logs.len(), n);
        for log in logs {
            assert!(
                log.ready <= log.push_start,
                "grad {}: ready {:?} > push_start {:?}",
                log.grad,
                log.ready,
                log.push_start
            );
            assert!(
                log.push_start < log.push_end,
                "grad {}: push_start {:?} >= push_end {:?}",
                log.grad,
                log.push_start,
                log.push_end
            );
            assert!(
                log.push_end <= log.pull_end,
                "grad {}: push_end {:?} > pull_end {:?}",
                log.grad,
                log.push_end,
                log.pull_end
            );
            assert!(
                log.pull_start <= log.pull_end,
                "grad {}: pull_start {:?} > pull_end {:?}",
                log.grad,
                log.pull_start,
                log.pull_end
            );
        }
    }
}
