//! End-to-end golden equality: incremental dirty-component re-allocation
//! vs the full-resolve oracle, through the whole cluster engine.
//!
//! [`ClusterConfig::net_full_resolve`] flips the fluid network into a mode
//! where every re-allocation re-solves every connected component. Both
//! modes share the identical per-component fill path, so a run must be
//! **bit-identical** either way — `FlowEnd` timestamps, iteration times,
//! training rates, fault counters, typed spans, everything. These tests
//! drive that contract across every paper scheduler, with and without
//! faults, under heterogeneous bandwidth and sharded parameter servers.
//! Any divergence is a dirty-tracking bug in the incremental engine, not
//! float noise, so exact equality is the right assertion.

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig, RunResult};
use prophet::sim::{Duration, FaultPlan, FaultSpec, SimTime};

fn cell(kind: SchedulerKind) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cell(2, 10.0, TrainingJob::paper_setup("resnet18", 16), kind);
    c.warmup_iters = 1;
    c
}

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + Duration::from_millis(v)
}

/// Run `cfg` in both allocator modes and assert the results agree bitwise.
fn assert_modes_identical(mut cfg: ClusterConfig, iters: u64, label: &str) {
    cfg.net_full_resolve = false;
    let inc = run_cluster(&cfg, iters);
    cfg.net_full_resolve = true;
    let full = run_cluster(&cfg, iters);
    assert_identical(&inc, &full, label);
}

fn assert_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.duration, b.duration, "{label}: total duration");
    assert_eq!(a.iterations, b.iterations, "{label}: iteration count");
    assert_eq!(a.iter_times, b.iter_times, "{label}: iteration times");
    assert_eq!(a.iter_starts, b.iter_starts, "{label}: iteration starts");
    assert_eq!(
        a.rate.to_bits(),
        b.rate.to_bits(),
        "{label}: steady-state rate"
    );
    assert_eq!(
        a.rate_with_warmup.to_bits(),
        b.rate_with_warmup.to_bits(),
        "{label}: warm-up rate"
    );
    assert_eq!(
        a.avg_gpu_util.to_bits(),
        b.avg_gpu_util.to_bits(),
        "{label}: GPU utilisation"
    );
    assert_eq!(
        a.avg_net_throughput.to_bits(),
        b.avg_net_throughput.to_bits(),
        "{label}: network throughput"
    );
    assert_eq!(a.fault_stats, b.fault_stats, "{label}: fault counters");
    assert_eq!(a.grad_spans, b.grad_spans, "{label}: typed spans");
}

#[test]
fn fault_free_runs_are_bit_identical_across_modes() {
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = format!("{} fault-free", kind.label());
        let mut cfg = cell(kind);
        cfg.typed_trace = true;
        assert_modes_identical(cfg, 3, &label);
    }
}

#[test]
fn faulted_runs_are_bit_identical_across_modes() {
    // The fault storm exercises exactly the paths where incremental
    // re-allocation can drift: kills detach flows mid-component,
    // link-down/degrade reshapes one component's capacities, retries
    // restart flows into freshly merged components.
    let storm = FaultPlan::new(vec![
        FaultSpec::LinkDown {
            node: 2,
            at: ms(30),
            dur: Duration::from_millis(50),
        },
        FaultSpec::LinkDegrade {
            node: 0,
            at: ms(120),
            factor: 0.25,
            dur: Duration::from_millis(150),
        },
        FaultSpec::MsgLoss {
            rate: 0.15,
            at: ms(100),
            dur: Duration::from_millis(120),
        },
        FaultSpec::ShardCrash {
            shard: 0,
            at: ms(290),
            restart_after: Duration::from_millis(40),
        },
    ]);
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = format!("{} under storm", kind.label());
        let mut cfg = cell(kind);
        cfg.fault_plan = storm.clone();
        cfg.typed_trace = true;
        assert_modes_identical(cfg, 3, &label);
    }
}

#[test]
fn heterogeneous_and_dynamic_bandwidth_runs_are_bit_identical() {
    // Capacity churn (one slow worker + a mid-run reconfiguration of every
    // NIC) drives `set_node_spec`, whose incremental contract is "only the
    // touched component is re-solved".
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = format!("{} heterogeneous", kind.label());
        let mut cfg = cell(kind);
        cfg.workers = 3;
        cfg.worker_bps_overrides = vec![(1, 62.5e6)];
        cfg.bandwidth_schedule = vec![
            (Duration::from_millis(150), 6.25e8),
            (Duration::from_millis(400), 1.25e9),
        ];
        assert_modes_identical(cfg, 3, &label);
    }
}

#[test]
fn sharded_ps_runs_are_bit_identical() {
    // BytePS-style co-located shards give the flow graph several
    // simultaneously-live components, the topology where lazy component
    // splitting actually triggers.
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = format!("{} sharded", kind.label());
        let mut cfg = cell(kind);
        cfg.workers = 3;
        cfg.ps_shards = 3;
        assert_modes_identical(cfg, 3, &label);
    }
}
