//! Cross-crate property tests: invariants that only exist when the whole
//! stack runs together.

use prophet::core::{ProphetConfig, SchedulerKind};
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig};
use proptest::prelude::*;

fn kinds() -> Vec<SchedulerKind> {
    SchedulerKind::paper_lineup(1e9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any (strategy, bandwidth, batch, seed) cell: the run completes,
    /// respects the compute ceiling, logs every gradient, and orders every
    /// per-gradient timeline correctly.
    #[test]
    fn any_cell_is_well_formed(
        kind_idx in 0usize..4,
        gbps in 1.0f64..10.0,
        batch_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let batch = [16u32, 32, 64][batch_idx];
        let job = TrainingJob::paper_setup("resnet18", batch);
        let ceiling = job.compute_rate_ceiling();
        let n = job.num_gradients();
        let mut cfg = ClusterConfig::paper_cell(2, gbps, job, kinds()[kind_idx].clone());
        cfg.seed = seed;
        cfg.warmup_iters = 1;
        let r = run_cluster(&cfg, 3);
        prop_assert_eq!(r.iter_times.len(), 3);
        prop_assert!(r.rate > 0.0);
        // Jitter multiplies per-iteration compute by ~N(1, 0.02) with a
        // hard floor, so short measurement windows can land a few percent
        // above the nominal (jitter-free) ceiling.
        prop_assert!(r.rate <= ceiling * 1.10, "rate {} > ceiling {}", r.rate, ceiling);
        for logs in &r.transfer_logs {
            prop_assert_eq!(logs.len(), n);
            for log in logs {
                prop_assert!(log.ready <= log.push_start);
                prop_assert!(log.push_start < log.push_end);
                prop_assert!(log.push_end <= log.pull_end);
                prop_assert!(log.pull_start <= log.pull_end);
            }
        }
    }

    /// More bandwidth never makes training slower (weak monotonicity with
    /// a tolerance for discrete-event noise).
    #[test]
    fn bandwidth_monotonicity(lo_gbps in 1.0f64..4.0, factor in 1.5f64..4.0) {
        let hi_gbps = (lo_gbps * factor).min(10.0);
        let rate = |gbps: f64| {
            let job = TrainingJob::paper_setup("resnet50", 32);
            let kind = SchedulerKind::ProphetOracle(ProphetConfig::paper_default(gbps * 1e9 / 8.0));
            let mut cfg = ClusterConfig::paper_cell(2, gbps, job, kind);
            cfg.warmup_iters = 2;
            run_cluster(&cfg, 6).rate
        };
        let lo = rate(lo_gbps);
        let hi = rate(hi_gbps);
        prop_assert!(hi >= lo * 0.97, "{hi_gbps:.1}G ({hi:.1}) slower than {lo_gbps:.1}G ({lo:.1})");
    }

    /// Adding workers never increases the per-worker rate (BSP scaling
    /// overhead is non-negative) when the PS is shared.
    #[test]
    fn more_workers_never_free(workers in 2usize..6) {
        let rate = |w: usize| {
            let job = TrainingJob::paper_setup("resnet18", 32);
            let mut cfg = ClusterConfig::paper_cell(w, 4.0, job, SchedulerKind::Fifo);
            cfg.warmup_iters = 1;
            run_cluster(&cfg, 3).rate
        };
        let single = rate(1);
        let many = rate(workers);
        prop_assert!(many <= single * 1.02, "{workers} workers: {many:.1} > 1 worker {single:.1}");
    }
}
