//! Cross-stack trace/invariant layer, end to end: every paper-lineup
//! strategy runs under the [`prophet::sim::InvariantChecker`] (explicitly
//! enabled, so release builds exercise it too) and the typed span collector
//! produces a complete, well-ordered per-gradient span stream.

use prophet::core::SchedulerKind;
use prophet::dnn::TrainingJob;
use prophet::ps::sim::{run_cluster, ClusterConfig, SyncMode};
use prophet::sim::{spans_to_csv, SpanKind};

fn cell(kind: SchedulerKind) -> ClusterConfig {
    let mut cfg =
        ClusterConfig::paper_cell(3, 10.0, TrainingJob::paper_setup("resnet18", 16), kind);
    cfg.check_invariants = true;
    cfg.typed_trace = true;
    cfg
}

#[test]
fn invariants_hold_for_every_paper_strategy() {
    // The checker panics on the first violation, so completing the run IS
    // the assertion; the span checks below confirm the stream was actually
    // emitted rather than silently skipped.
    for kind in SchedulerKind::paper_lineup(1.25e9) {
        let label = kind.label();
        let r = run_cluster(&cell(kind), 3);
        assert_eq!(r.iter_times.len(), 3, "{label}");
        assert!(
            !r.grad_spans.is_empty(),
            "{label}: typed_trace produced no spans"
        );
    }
}

#[test]
fn invariants_hold_under_asp() {
    let mut cfg = cell(SchedulerKind::Fifo);
    cfg.sync = SyncMode::Asp;
    let r = run_cluster(&cfg, 3);
    assert_eq!(r.iter_times.len(), 3);
    assert!(!r.grad_spans.is_empty());
}

#[test]
fn invariants_hold_with_sharded_ps_and_hetero_bandwidth() {
    // Sharded PS splits every message into sub-flows and a capped worker
    // stretches them — the regime where flow/lane bookkeeping bugs hide.
    let mut cfg = cell(SchedulerKind::ByteScheduler(Default::default()));
    cfg.ps_shards = 3;
    cfg.worker_bps_overrides.push((1, 62.5e6));
    let r = run_cluster(&cfg, 3);
    assert_eq!(r.iter_times.len(), 3);
}

#[test]
fn span_stream_is_complete_per_worker_gradient_iteration() {
    let cfg = cell(SchedulerKind::Fifo);
    let n = cfg.job.num_gradients();
    let iters = 3;
    let r = run_cluster(&cfg, iters);
    // Push and Pull spans must exist for every (worker, iter, grad); the
    // compute span too, since each forward tensor runs exactly once.
    for kind in [SpanKind::Push, SpanKind::Pull, SpanKind::Compute] {
        let count = r.grad_spans.iter().filter(|s| s.kind == kind).count();
        assert_eq!(
            count,
            cfg.workers * iters as usize * n,
            "missing {kind:?} spans"
        );
    }
    for s in &r.grad_spans {
        assert!(s.end >= s.start, "span {s:?} ends before it starts");
        assert!(s.worker < cfg.workers && s.grad < n && s.iter < iters);
    }
}

#[test]
fn spans_agree_with_transfer_logs() {
    // The typed span stream and the legacy worker-0 transfer logs are
    // independent recorders of the same run; their push windows must match.
    let r = run_cluster(&cell(SchedulerKind::Fifo), 3);
    for (iter, logs) in r.transfer_logs.iter().enumerate() {
        for log in logs {
            let span = r
                .grad_spans
                .iter()
                .find(|s| {
                    s.worker == 0
                        && s.iter == iter as u64
                        && s.grad == log.grad
                        && s.kind == SpanKind::Push
                })
                .unwrap_or_else(|| panic!("no push span for iter {iter} grad {}", log.grad));
            assert_eq!(span.start, log.push_start, "iter {iter} grad {}", log.grad);
            assert_eq!(span.end, log.push_end, "iter {iter} grad {}", log.grad);
        }
    }
}

#[test]
fn span_csv_exports_the_whole_stream() {
    let r = run_cluster(&cell(SchedulerKind::Fifo), 2);
    let csv = spans_to_csv(&r.grad_spans);
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "worker,iter,grad,kind,start_ms,end_ms"
    );
    assert_eq!(lines.count(), r.grad_spans.len());
}

#[test]
fn typed_trace_off_means_no_spans() {
    let mut cfg = cell(SchedulerKind::Fifo);
    cfg.typed_trace = false;
    let r = run_cluster(&cfg, 2);
    assert!(r.grad_spans.is_empty());
}
